//! Minimal offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the engine uses: an unbounded MPMC-ish channel
//! (cloneable sender, single consumer — enough for the fan-in pattern the
//! scheduler uses) and scoped threads whose panics are reported as an `Err`
//! from `thread::scope` instead of unwinding through the caller.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }
}

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::{Arc, Mutex};

    type Panic = Box<dyn Any + Send + 'static>;

    pub type Result<T> = std::result::Result<T, Panic>;

    /// Argument handed to spawned closures. The real crossbeam passes the
    /// scope itself (for nested spawns); the engine ignores the argument, so
    /// a zero-sized placeholder keeps the `|_| ...` call sites compiling.
    pub struct SpawnScope {
        _private: (),
    }

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        // Arc rather than a borrow: spawned workers must own their handle,
        // since locals of `scope` don't satisfy std::thread::scope's `'env`.
        panics: Arc<Mutex<Vec<Panic>>>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker. Panics inside the worker are captured and turned
        /// into an `Err` from [`scope`] after all workers join.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&SpawnScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let panics = Arc::clone(&self.panics);
            self.inner.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| f(&SpawnScope { _private: () })));
                if let Err(payload) = outcome {
                    panics
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(payload);
                }
            });
        }
    }

    /// Run `f` with a scope handle; all spawned workers are joined before
    /// this returns. If any worker panicked, the first payload is returned
    /// as `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panics: Arc<Mutex<Vec<Panic>>> = Arc::new(Mutex::new(Vec::new()));
        let worker_panics = Arc::clone(&panics);
        let out = std::thread::scope(move |s| {
            let wrapper = Scope {
                inner: s,
                panics: worker_panics,
            };
            f(&wrapper)
        });
        let mut collected = panics.lock().unwrap_or_else(|e| e.into_inner());
        if collected.is_empty() {
            Ok(out)
        } else {
            Err(collected.remove(0))
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_collects_results_via_channel() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        super::thread::scope(|scope| {
            for i in 0..4 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
        })
        .unwrap();
        let mut got: Vec<_> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
