//! Derive macros for the vendored serde subset.
//!
//! Parses the item with hand-rolled `proc_macro::TokenTree` walking (no
//! syn/quote in an offline build) and emits source text that targets the
//! vendored serde's value-tree API. Supported shapes: non-generic structs
//! (named, tuple, unit) and enums with unit/tuple/struct variants, plus the
//! field attributes `skip`, `rename`, `default`, `serialize_with`,
//! `deserialize_with` — the surface this workspace actually uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    rename: Option<String>,
    ser_with: Option<String>,
    de_with: Option<String>,
}

#[derive(Clone)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Unit,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    body: Body,
}

// ------------------------------------------------------------------ parsing

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip attributes starting at `i`, folding any `#[serde(...)]` contents
/// into `attrs`. Returns the index after the attributes.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, attrs: &mut FieldAttrs) -> usize {
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            if g.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if inner.first().and_then(ident_of).as_deref() == Some("serde") {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        parse_serde_attr(args.stream(), attrs);
                    }
                }
            }
        }
        i += 2;
    }
    i
}

fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let Some(key) = ident_of(&tokens[i]) else {
            i += 1;
            continue;
        };
        let value = if tokens.get(i + 1).is_some_and(|t| is_punct(t, '=')) {
            let lit = tokens
                .get(i + 2)
                .map(|t| t.to_string().trim_matches('"').to_owned());
            i += 3;
            lit
        } else {
            i += 1;
            None
        };
        match (key.as_str(), value) {
            ("skip", _) | ("skip_serializing", _) | ("skip_deserializing", _) => {
                attrs.skip = true;
            }
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("serialize_with", Some(v)) => attrs.ser_with = Some(v),
            ("deserialize_with", Some(v)) => attrs.de_with = Some(v),
            ("with", Some(v)) => {
                attrs.ser_with = Some(format!("{v}::serialize"));
                attrs.de_with = Some(format!("{v}::deserialize"));
            }
            _ => {} // unknown attrs (e.g. `default`) are tolerated
        }
    }
}

/// Skip `pub` / `pub(...)` starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if tokens.get(i).and_then(ident_of).as_deref() == Some("pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Advance past a type (or any token run) until a top-level comma,
/// tracking `<`/`>` nesting. Returns the index after the comma (or end).
fn skip_past_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if is_punct(&tokens[i], '<') {
            depth += 1;
        } else if is_punct(&tokens[i], '>') {
            depth -= 1;
        } else if is_punct(&tokens[i], ',') && depth <= 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        i = skip_attrs(&tokens, i, &mut attrs);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i])
            .ok_or_else(|| format!("serde derive: expected field name, found `{}`", tokens[i]))?;
        i += 1;
        if !tokens.get(i).is_some_and(|t| is_punct(t, ':')) {
            return Err(format!("serde derive: expected `:` after field `{name}`"));
        }
        i = skip_past_comma(&tokens, i + 1);
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        i = skip_past_comma(&tokens, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        i = skip_attrs(&tokens, i, &mut attrs);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i])
            .ok_or_else(|| format!("serde derive: expected variant name, found `{}`", tokens[i]))?;
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the comma separating variants (also skips discriminants).
        i = skip_past_comma(&tokens, i);
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut ignored = FieldAttrs::default();
    i = skip_attrs(&tokens, i, &mut ignored);
    i = skip_visibility(&tokens, i);
    let kw = tokens
        .get(i)
        .and_then(ident_of)
        .ok_or("serde derive: expected `struct` or `enum`")?;
    i += 1;
    let name = tokens
        .get(i)
        .and_then(ident_of)
        .ok_or("serde derive: expected a type name")?;
    i += 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "serde derive (vendored): generic type `{name}` is not supported"
        ));
    }
    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("serde derive: enum `{name}` has no body")),
        },
        other => {
            return Err(format!(
                "serde derive: cannot derive for `{other}` items (only struct/enum)"
            ))
        }
    };
    Ok(Input { name, body })
}

// ------------------------------------------------------------------ codegen

const SER_ERR: &str = "<__S::Error as serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as serde::de::Error>::custom";

fn field_to_value_expr(field: &Field, access: &str) -> String {
    match &field.attrs.ser_with {
        Some(path) => format!("{path}({access}, serde::ValueSerializer).map_err({SER_ERR})?"),
        None => format!("serde::to_value({access}).map_err({SER_ERR})?"),
    }
}

fn field_from_obj_expr(field: &Field, type_name: &str) -> String {
    if field.attrs.skip {
        return "::core::default::Default::default()".to_owned();
    }
    let key = field.key();
    match &field.attrs.de_with {
        Some(path) => format!(
            "{path}(serde::ValueDeserializer::new(serde::__private::take_field(&mut __obj, \"{key}\"))).map_err({DE_ERR})?"
        ),
        None => format!(
            "serde::__private::from_field(&mut __obj, \"{type_name}\", \"{key}\").map_err({DE_ERR})?"
        ),
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Unit => {
            "serde::Serializer::serialize_value(__serializer, serde::Value::Null)".to_owned()
        }
        Body::NamedStruct(fields) => {
            let mut out = String::from("let mut __obj = serde::Map::new();\n");
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let value = field_to_value_expr(f, &format!("&self.{}", f.name));
                out.push_str(&format!(
                    "__obj.insert(::std::string::String::from(\"{}\"), {value});\n",
                    f.key()
                ));
            }
            out.push_str(
                "serde::Serializer::serialize_value(__serializer, serde::Value::Object(__obj))",
            );
            out
        }
        Body::TupleStruct(1) => "serde::Serialize::serialize(&self.0, __serializer)".to_owned(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::to_value(&self.{i}).map_err({SER_ERR})?"))
                .collect();
            format!(
                "serde::Serializer::serialize_value(__serializer, serde::Value::Array(vec![{}]))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::String(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => serde::__private::tag(\"{vname}\", serde::to_value(__f0).map_err({SER_ERR})?),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::to_value({b}).map_err({SER_ERR})?"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serde::__private::tag(\"{vname}\", serde::Value::Array(vec![{}])),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: __b_{}", f.name, f.name))
                            .collect();
                        let mut body = String::from("let mut __o = serde::Map::new();\n");
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            let value = field_to_value_expr(f, &format!("__b_{}", f.name));
                            body.push_str(&format!(
                                "__o.insert(::std::string::String::from(\"{}\"), {value});\n",
                                f.key()
                            ));
                        }
                        body.push_str(&format!(
                            "serde::__private::tag(\"{vname}\", serde::Value::Object(__o))"
                        ));
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ {body} }},\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!(
                "let __v: serde::Value = match self {{\n{arms}}};\n\
                 serde::Serializer::serialize_value(__serializer, __v)"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn serialize<__S: serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.body {
        Body::Unit => format!(
            "let __value = serde::Deserializer::take_value(__deserializer)?;\n\
             match __value {{\n\
                 serde::Value::Null => ::core::result::Result::Ok({name}),\n\
                 __other => ::core::result::Result::Err({DE_ERR}(\
                     format!(\"{name}: expected null, got {{}}\", __other.kind()))),\n\
             }}"
        ),
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, field_from_obj_expr(f, name)))
                .collect();
            format!(
                "let __value = serde::Deserializer::take_value(__deserializer)?;\n\
                 let mut __obj = serde::__private::expect_object(__value, \"{name}\")\
                     .map_err({DE_ERR})?;\n\
                 ::core::result::Result::Ok({name} {{\n{}\n}})",
                inits.join(",\n")
            )
        }
        Body::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(serde::Deserialize::deserialize(__deserializer)?))"
        ),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|_| {
                    format!(
                        "serde::from_value(__it.next().expect(\"length checked\"))\
                         .map_err({DE_ERR})?"
                    )
                })
                .collect();
            format!(
                "let __value = serde::Deserializer::take_value(__deserializer)?;\n\
                 let __items = serde::__private::expect_array(__value, {n}usize, \"{name}\")\
                     .map_err({DE_ERR})?;\n\
                 let mut __it = __items.into_iter();\n\
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                        // Tolerate `{"Variant": null}` spellings as well.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                         serde::from_value(__payload).map_err({DE_ERR})?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "serde::from_value(__it.next().expect(\"length checked\"))\
                                     .map_err({DE_ERR})?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __items = serde::__private::expect_array(\
                                     __payload, {n}usize, \"{name}::{vname}\").map_err({DE_ERR})?;\n\
                                 let mut __it = __items.into_iter();\n\
                                 ::core::result::Result::Ok({name}::{vname}({}))\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{}: {}",
                                    f.name,
                                    field_from_obj_expr(f, &format!("{name}::{vname}"))
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let mut __obj = serde::__private::expect_object(\
                                     __payload, \"{name}::{vname}\").map_err({DE_ERR})?;\n\
                                 ::core::result::Result::Ok({name}::{vname} {{\n{}\n}})\n\
                             }},\n",
                            inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "let __value = serde::Deserializer::take_value(__deserializer)?;\n\
                 match __value {{\n\
                     serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::core::result::Result::Err({DE_ERR}(\
                             format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     serde::Value::Object(__map) => {{\n\
                         let (__k, __payload) = serde::__private::single_entry(__map)\
                             .map_err({DE_ERR})?;\n\
                         match __k.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::core::result::Result::Err({DE_ERR}(\
                                 format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }},\n\
                     __other => ::core::result::Result::Err({DE_ERR}(\
                         format!(\"{name}: expected string or object, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, unused_variables, clippy::all)]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn finish(result: Result<String, String>) -> TokenStream {
    match result {
        Ok(code) => code
            .parse()
            .unwrap_or_else(|e| panic!("serde derive: generated invalid code: {e}\n{code}")),
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            format!("compile_error!(\"{escaped}\");").parse().unwrap()
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    finish(parse_input(input).map(|i| gen_serialize(&i)))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    finish(parse_input(input).map(|i| gen_deserialize(&i)))
}
