//! Minimal offline stand-in for `proptest` 1.x.
//!
//! Implements the subset the workspace's property suites use: the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, range and tuple and
//! string-class strategies, `prop::collection::vec`, `Just`, `any`, the
//! `proptest!`/`prop_oneof!`/`prop_assert*!`/`prop_assume!` macros, and a
//! deterministic seeded runner. No shrinking: a failing case reports the
//! case number and message so it can be re-run deterministically.

pub mod test_runner {
    /// Deterministic SplitMix64 source feeding all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        pub fn from_seed(seed: u64) -> Self {
            TestRunner {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the run fails.
        Fail(String),
        /// `prop_assume!` filtered the inputs; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    /// Subset of proptest's config: only `cases` matters here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 32,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Drive `body` over `cases` generated inputs; panics on the first
    /// failing case (no shrinking — the message carries the case number).
    pub fn run_test<S, F>(config: &ProptestConfig, strategy: S, mut body: F)
    where
        S: crate::strategy::Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            // Per-case seed: deterministic across runs, varied across cases.
            let mut runner =
                TestRunner::from_seed(0x70AD_0001 ^ u64::from(case).wrapping_mul(0x0100_0000_01B3));
            let value = strategy.new_value(&mut runner);
            match body(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    case += 1; // count rejected draws as spent cases
                    assert!(
                        rejects <= config.max_global_rejects,
                        "too many rejected cases ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case {case}/{} failed: {msg}", config.cases)
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe adapter behind [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_new_value(&self, runner: &mut TestRunner) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, runner: &mut TestRunner) -> S::Value {
            self.new_value(runner)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.0.dyn_new_value(runner)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            let i = runner.below(self.options.len() as u64) as usize;
            self.options[i].new_value(runner)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(runner.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return runner.next_u64() as $t;
                    }
                    lo.wrapping_add(runner.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (runner.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// `&'static str` acts as a character-class pattern `[class]{m,n}` (the
    /// subset of regex syntax the workspace uses); any other string is taken
    /// literally.
    impl Strategy for &'static str {
        type Value = String;

        fn new_value(&self, runner: &mut TestRunner) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + runner.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[runner.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_owned(),
            }
        }
    }

    /// Parse `[class]{m,n}` into (alphabet, m, n). Supports `\n`, `\\`,
    /// `a-z` ranges, a literal trailing `-`, and raw characters (including
    /// a literal newline).
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class = &rest[..close];
        let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match quant.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = quant.trim().parse().ok()?;
                (n, n)
            }
        };
        let mut chars: Vec<char> = Vec::new();
        let raw: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < raw.len() {
            match raw[i] {
                '\\' if i + 1 < raw.len() => {
                    chars.push(match raw[i + 1] {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                    i += 2;
                }
                c if i + 2 < raw.len() && raw[i + 1] == '-' && raw[i + 2] != ']' => {
                    let (a, b) = (c as u32, raw[i + 2] as u32);
                    for cp in a..=b {
                        chars.extend(char::from_u32(cp));
                    }
                    i += 3;
                }
                c => {
                    chars.push(c);
                    i += 1;
                }
            }
        }
        if chars.is_empty() {
            chars.push('a');
        }
        Some((chars, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Types with a canonical strategy, reachable via [`any`](crate::arbitrary::any).
    pub trait Arbitrary: Sized {
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            (runner.unit_f64() * 2.0 - 1.0) * 1e12
        }
    }

    impl Arbitrary for char {
        fn arbitrary(runner: &mut TestRunner) -> char {
            char::from_u32(32 + runner.below(95) as u32).unwrap_or('a')
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + runner.below(span as u64) as usize;
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` works from the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_test(
                &__config,
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_patterns_generate_within_alphabet() {
        let mut runner = TestRunner::from_seed(1);
        for _ in 0..50 {
            let s = Strategy::new_value(&"[a-c0-2 ]{2,5}", &mut runner);
            assert!((2..=5).contains(&s.chars().count()), "len of {s:?}");
            assert!(
                s.chars().all(|c| "abc012 ".contains(c)),
                "alphabet of {s:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples_work(x in 0u64..10, (a, b) in (0i64..5, 0.0f64..1.0), flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!((0..5).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            let _ = flag;
        }

        #[test]
        fn oneof_and_collections_work(xs in prop::collection::vec(prop_oneof![Just(1), Just(2)], 1..4)) {
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
