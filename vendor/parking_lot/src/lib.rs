//! Minimal offline stand-in for `parking_lot`.
//!
//! Backed by `std::sync` primitives; the key API difference preserved here is
//! that `lock()` / `read()` / `write()` do not return poison errors — a
//! poisoned std lock is recovered transparently, matching parking_lot's
//! non-poisoning semantics.

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
