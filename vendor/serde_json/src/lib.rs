//! Minimal offline stand-in for `serde_json` 1.x.
//!
//! Re-exports the vendored serde's [`Value`] model and adds the text layer:
//! a recursive-descent JSON parser for `from_str` and compact/pretty writers
//! for `to_string` / `to_string_pretty`. Integers without a fraction or
//! exponent parse as (Pos/Neg)Int; everything else goes through
//! `str::parse::<f64>`, which is correctly rounded (the behaviour the
//! `float_roundtrip` feature guarantees in real serde_json).

pub use serde::{Map, Number, Value};

/// Error type for parse and convert failures.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::SerdeError> for Error {
    fn from(e: serde::SerdeError) -> Self {
        Error::new(e.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    serde::to_value(value).map_err(Error::from)
}

/// Reconstruct a `T` from a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T> {
    serde::from_value(value).map_err(Error::from)
}

/// Compact JSON text, e.g. `{"a":1}`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value)?;
    let mut out = String::new();
    serde::write_compact(&v, &mut out);
    Ok(out)
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = to_value(value)?;
    let mut out = String::new();
    serde::write_pretty(&v, &mut out, 0);
    Ok(out)
}

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: serde::DeserializeOwned>(text: &str) -> Result<T> {
    let value = parse(text)?;
    from_value(value)
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::new(format!("{msg} at line {line} column {col}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => {
                Err(self.error(&format!("unexpected character `{}`", char::from(other))))
            }
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Array(items));
            }
            return Err(self.error("expected `,` or `]` in array"));
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.pos += 1; // consume `{`
        let mut map = Map::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.error("expected `:` after object key"));
            }
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Object(map));
            }
            return Err(self.error("expected `,` or `}` in object"));
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: expect a `\uXXXX` low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Decode one multi-byte UTF-8 char starting at pos-1.
                    // Validate only that char's bytes — validating the whole
                    // remaining buffer here is quadratic in document size.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.error("invalid utf-8 in string")),
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.error("invalid utf-8 in string"));
                    }
                    let piece = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid utf-8 in string"))?;
                    let c = piece.chars().next().expect("non-empty");
                    self.pos = end;
                    out.push(c);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.eat(b'-');
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if negative {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::from(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from(u)));
            }
            // Integer overflow falls through to f64, like serde_json's
            // default (non-arbitrary-precision) behaviour.
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.error(&format!("invalid number `{text}`")))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.error("number out of range"))
    }
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#" {"a": [1, -2, 3.5, true, null], "s": "x\n\"yé"} "#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert!(arr[4].is_null());
        assert_eq!(obj.get("s").unwrap().as_str(), Some("x\n\"y\u{e9}"));
    }

    #[test]
    fn round_trips_compact_text() {
        let text = r#"{"name":"ada","n":3,"xs":[1.5,-2],"ok":false}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn reports_position_in_errors() {
        let err = parse("{\"a\": tru}").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = parse("[1,]").unwrap_err();
        assert!(err.to_string().contains("column"), "{err}");
    }

    #[test]
    fn integers_stay_integers_floats_round_trip() {
        let v = parse("[9007199254740993, 0.1, 1e300]").unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(9007199254740993));
        assert_eq!(arr[1].as_f64(), Some(0.1));
        assert_eq!(arr[2].as_f64(), Some(1e300));
        assert_eq!(to_string(&v).unwrap(), "[9007199254740993,0.1,1e300]");
    }

    #[test]
    fn pretty_printing_indents_two_spaces() {
        let v = parse(r#"{"a":[1],"b":{}}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}"
        );
    }
}
