//! Minimal offline stand-in for `criterion`.
//!
//! Benchmarks compile and run, printing a simple mean-time-per-iteration
//! line per benchmark instead of criterion's full statistical report. Good
//! enough to spot order-of-magnitude regressions from `cargo bench` output
//! while keeping the build dependency-free.

use std::fmt;
use std::time::{Duration, Instant};

/// Measures one closure; handed to `bench_function` bodies.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, choosing an iteration count so the sample takes a few
    /// milliseconds at least.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up / calibration round.
        let started = Instant::now();
        let mut calibration_iters = 0u64;
        while started.elapsed() < Duration::from_millis(5) && calibration_iters < 1_000 {
            std::hint::black_box(f());
            calibration_iters += 1;
        }
        let per_iter = started
            .elapsed()
            .checked_div(calibration_iters.max(1) as u32);
        let target = Duration::from_millis(25);
        let iters = match per_iter {
            Some(p) if !p.is_zero() => {
                (target.as_nanos() / p.as_nanos().max(1)).clamp(1, 100_000) as u64
            }
            _ => 1_000,
        };
        let started = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = started.elapsed();
        self.iters = iters;
    }
}

/// Identifier combining a function name and a parameter, e.g. `goals/16`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name: strings or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            group: name.to_owned(),
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, id.into_id());
        run_one(&name, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.group, id.id);
        run_one(&name, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters > 0 {
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
        eprintln!("  {name}: {per_iter} ns/iter ({} iters)", bencher.iters);
    } else {
        eprintln!("  {name}: no measurement taken");
    }
}

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
