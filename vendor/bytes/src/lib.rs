//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable, sliceable view over shared immutable
//! storage; [`BytesMut`] is a growable write buffer that freezes into
//! [`Bytes`]. Only the little-endian accessors the row codec uses are
//! provided.

use std::fmt;
use std::ops::RangeBounds;
use std::sync::Arc;

/// Read cursor over a contiguous byte region.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

/// Write cursor appending to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Shared immutable byte storage with O(1) clone and slice.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Sub-view of this view; `range` is relative to `self`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "...")?;
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl Bytes {
    /// Split off the first `len` bytes as an owned view, advancing `self`.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let out = self.slice(..len);
        self.start += len;
        out
    }
}

/// Growable write buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut(len={})", self.data.len())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(300);
        buf.put_u32_le(70_000);
        buf.put_i64_le(-5);
        buf.put_f64_le(1.5);
        buf.put_slice(b"hi");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 300);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 1.5);
        let tail = b.copy_to_bytes(2);
        assert_eq!(tail.to_vec(), b"hi");
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_is_relative() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        assert_eq!(mid.slice(..2).to_vec(), vec![2, 3]);
    }
}
