//! Minimal offline stand-in for `serde` 1.x.
//!
//! Architecture: instead of serde's visitor-based streaming model, this
//! stack funnels everything through an in-memory JSON [`Value`] tree.
//! [`Serializer`] receives a finished tree; [`Deserializer`] hands one out.
//! That is dramatically less code, supports the same derive surface the
//! workspace uses (`skip`, `serialize_with`, `deserialize_with`), and keeps
//! byte-for-byte stable output because struct fields serialize in
//! declaration order through the insertion-ordered [`Map`].

pub mod de;
pub mod ser;
mod value;

pub use de::{from_value, Deserialize, DeserializeOwned, Deserializer, ValueDeserializer};
pub use ser::{to_value, Serialize, Serializer, ValueSerializer};
pub use value::{write_compact, write_pretty, Map, Number, Value};

// Derive macros share names with the traits (separate namespaces), exactly
// like real serde with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// The error type used by [`ValueSerializer`] / [`ValueDeserializer`] and
/// by `serde_json`.
#[derive(Debug, Clone)]
pub struct SerdeError {
    message: String,
}

impl SerdeError {
    pub fn new(message: impl Into<String>) -> Self {
        SerdeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SerdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for SerdeError {}

impl ser::Error for SerdeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        SerdeError::new(msg.to_string())
    }
}

impl de::Error for SerdeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        SerdeError::new(msg.to_string())
    }
}

/// Runtime support for the derive macros. Not a stable API.
#[doc(hidden)]
pub mod __private {
    use crate::value::{Map, Value};
    use crate::SerdeError;

    /// Pull `key` out of a struct object; missing keys read as `Null` so
    /// `Option` fields tolerate omission (matching real serde).
    pub fn take_field(obj: &mut Map<String, Value>, key: &str) -> Value {
        obj.remove(key).unwrap_or(Value::Null)
    }

    /// Deserialize one struct field, prefixing errors with the field name.
    pub fn from_field<T: crate::DeserializeOwned>(
        obj: &mut Map<String, Value>,
        type_name: &str,
        key: &str,
    ) -> Result<T, SerdeError> {
        crate::from_value(take_field(obj, key))
            .map_err(|e| SerdeError::new(format!("{type_name}.{key}: {e}")))
    }

    /// Externally-tagged enum payload: `{"Variant": value}`.
    pub fn tag(name: &str, value: Value) -> Value {
        let mut obj = Map::with_capacity(1);
        obj.insert(name.to_owned(), value);
        Value::Object(obj)
    }

    /// The single `(variant, payload)` entry of an externally-tagged enum.
    pub fn single_entry(obj: Map<String, Value>) -> Result<(String, Value), SerdeError> {
        let mut iter = obj.into_iter();
        match (iter.next(), iter.next()) {
            (Some(entry), None) => Ok(entry),
            _ => Err(SerdeError::new(
                "expected an object with exactly one key for an enum variant",
            )),
        }
    }

    pub fn expect_object(value: Value, type_name: &str) -> Result<Map<String, Value>, SerdeError> {
        match value {
            Value::Object(map) => Ok(map),
            other => Err(SerdeError::new(format!(
                "{type_name}: expected object, got {}",
                other.kind()
            ))),
        }
    }

    pub fn expect_array(
        value: Value,
        len: usize,
        type_name: &str,
    ) -> Result<Vec<Value>, SerdeError> {
        match value {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(SerdeError::new(format!(
                "{type_name}: expected array of length {len}, got {}",
                items.len()
            ))),
            other => Err(SerdeError::new(format!(
                "{type_name}: expected array, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate as serde; // derive-generated code references `serde::...`
    use crate::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Plain {
        name: String,
        count: u64,
        ratio: f64,
        flag: Option<bool>,
        items: Vec<i64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Wrapped(i64),
        Pair(i64, String),
        Named { x: f64, label: String },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct WithAttrs {
        kept: u32,
        #[serde(skip)]
        cache: Vec<String>,
        #[serde(serialize_with = "ser_double", deserialize_with = "de_halve")]
        doubled: u64,
    }

    fn ser_double<S: serde::Serializer>(v: &u64, s: S) -> Result<S::Ok, S::Error> {
        serde::Serialize::serialize(&(v * 2), s)
    }

    fn de_halve<'de, D: serde::Deserializer<'de>>(d: D) -> Result<u64, D::Error> {
        let doubled: u64 = serde::Deserialize::deserialize(d)?;
        Ok(doubled / 2)
    }

    #[test]
    fn struct_round_trip_preserves_field_order() {
        let p = Plain {
            name: "ada".into(),
            count: 3,
            ratio: 0.5,
            flag: None,
            items: vec![-1, 2],
        };
        let v = crate::to_value(&p).unwrap();
        let mut text = String::new();
        crate::write_compact(&v, &mut text);
        assert_eq!(
            text,
            r#"{"name":"ada","count":3,"ratio":0.5,"flag":null,"items":[-1,2]}"#
        );
        let back: Plain = crate::from_value(v).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn enum_representations_are_externally_tagged() {
        for (shape, expected) in [
            (Shape::Unit, r#""Unit""#),
            (Shape::Wrapped(7), r#"{"Wrapped":7}"#),
            (Shape::Pair(1, "a".into()), r#"{"Pair":[1,"a"]}"#),
            (
                Shape::Named {
                    x: 1.5,
                    label: "b".into(),
                },
                r#"{"Named":{"x":1.5,"label":"b"}}"#,
            ),
        ] {
            let v = crate::to_value(&shape).unwrap();
            let mut text = String::new();
            crate::write_compact(&v, &mut text);
            assert_eq!(text, expected);
            let back: Shape = crate::from_value(v).unwrap();
            assert_eq!(shape, back);
        }
    }

    #[test]
    fn attrs_skip_and_with_apply() {
        let w = WithAttrs {
            kept: 1,
            cache: vec!["x".into()],
            doubled: 21,
        };
        let v = crate::to_value(&w).unwrap();
        let mut text = String::new();
        crate::write_compact(&v, &mut text);
        assert_eq!(text, r#"{"kept":1,"doubled":42}"#);
        let back: WithAttrs = crate::from_value(v).unwrap();
        assert_eq!(back.kept, 1);
        assert!(back.cache.is_empty(), "skipped fields default");
        assert_eq!(back.doubled, 21);
    }
}
