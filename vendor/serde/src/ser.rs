//! Serialization half: everything funnels into [`crate::Value`].

use std::fmt::Display;

use crate::value::{Map, Number, Value};

/// Error constraint for [`Serializer::Error`].
pub trait Error: Sized + std::fmt::Debug + Display {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A sink for one [`Value`]. Much narrower than real serde's 30-method
/// trait: the data model is always the JSON value tree, so a serializer
/// only decides what to do with the finished tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }

    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized,
    {
        let v = crate::to_value(value).map_err(Error::custom)?;
        self.serialize_value(v)
    }
}

/// Types that can render themselves into the JSON data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The identity serializer: hands back the built [`Value`].
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = crate::SerdeError;

    fn serialize_value(self, value: Value) -> Result<Value, crate::SerdeError> {
        Ok(value)
    }
}

/// Serialize anything into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, crate::SerdeError> {
    value.serialize(ValueSerializer)
}

// ---------------------------------------------------------------- primitives

macro_rules! serialize_into_value {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::from(*self))
            }
        }
    )*};
}

serialize_into_value!(bool, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::from(f64::from(*self)))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_string()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::String(self.clone()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Null)
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl Serialize for Number {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Number(*self))
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn collect_seq<'a, T, S, I>(items: I, serializer: S) -> Result<S::Ok, S::Error>
where
    T: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = &'a T>,
{
    let mut out = Vec::new();
    for item in items {
        out.push(crate::to_value(item).map_err(Error::custom)?);
    }
    serializer.serialize_value(Value::Array(out))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(self.iter(), serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(self.iter(), serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(crate::to_value(&self.$idx).map_err(Error::custom)?),+
                ];
                serializer.serialize_value(Value::Array(items))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// JSON object keys must be strings; stringify string and integer keys the
/// way serde_json does.
fn key_to_string<K: Serialize>(key: &K) -> Result<String, crate::SerdeError> {
    match crate::to_value(key)? {
        Value::String(s) => Ok(s),
        Value::Number(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(crate::SerdeError::new(format!(
            "map key must be a string, got {}",
            other.kind()
        ))),
    }
}

fn collect_map<'a, K, V, S, I>(entries: I, serializer: S) -> Result<S::Ok, S::Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Map<String, Value> = Map::new();
    for (k, v) in entries {
        let key = key_to_string(k).map_err(Error::custom)?;
        let value = crate::to_value(v).map_err(Error::custom)?;
        out.insert(key, value);
    }
    serializer.serialize_value(Value::Object(out))
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_map(self.iter(), serializer)
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for std::collections::HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_map(self.iter(), serializer)
    }
}

impl<K: Serialize + PartialEq, V: Serialize> Serialize for Map<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_map(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(self.iter(), serializer)
    }
}

impl<T: Serialize, H> Serialize for std::collections::HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(self.iter(), serializer)
    }
}

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut obj = Map::new();
        obj.insert("secs".to_owned(), Value::from(self.as_secs()));
        obj.insert("nanos".to_owned(), Value::from(self.subsec_nanos()));
        serializer.serialize_value(Value::Object(obj))
    }
}
