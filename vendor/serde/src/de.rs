//! Deserialization half: everything reads back out of a [`crate::Value`].

use std::fmt::Display;

use crate::value::{Map, Number, Value};

/// Error constraint for [`Deserializer::Error`].
pub trait Error: Sized + std::fmt::Debug + Display {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of one [`Value`]. The lifetime parameter mirrors real serde's
/// API so `D: serde::Deserializer<'de>` bounds compile unchanged; this
/// stack always produces owned values.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types reconstructible from the JSON data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Marker for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Deserializer over an in-memory [`Value`].
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = crate::SerdeError;

    fn take_value(self) -> Result<Value, crate::SerdeError> {
        Ok(self.value)
    }
}

/// Reconstruct any `T` from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, crate::SerdeError> {
    T::deserialize(ValueDeserializer::new(value))
}

fn type_error<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, got {}", got.kind()))
}

// ---------------------------------------------------------------- primitives

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_error("boolean", &other)),
        }
    }
}

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let n = value
                    .as_i64()
                    .ok_or_else(|| type_error::<D::Error>("integer", &value))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

deserialize_signed!(i8, i16, i32, i64, isize);

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let n = value
                    .as_u64()
                    .ok_or_else(|| type_error::<D::Error>("unsigned integer", &value))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

deserialize_unsigned!(u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        value
            .as_f64()
            .ok_or_else(|| type_error::<D::Error>("number", &value))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::String(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(()),
            other => Err(type_error("null", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for Number {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Number(n) => Ok(n),
            other => Err(type_error("number", &other)),
        }
    }
}

// ------------------------------------------------------------- containers

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            present => from_value(present).map(Some).map_err(Error::custom),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::rc::Rc::new)
    }
}

fn take_array<E: Error>(value: Value) -> Result<Vec<Value>, E> {
    match value {
        Value::Array(items) => Ok(items),
        other => Err(type_error("array", &other)),
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        take_array::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(|item| from_value(item).map_err(Error::custom))
            .collect()
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: DeserializeOwned),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<Des: Deserializer<'de>>(deserializer: Des) -> Result<Self, Des::Error> {
                let items = take_array::<Des::Error>(deserializer.take_value()?)?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected an array of length {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                let mut items = items.into_iter();
                Ok(($(
                    from_value::<$name>(items.next().expect("length checked"))
                        .map_err(Error::custom)?,
                )+))
            }
        }
    )*};
}

deserialize_tuple! {
    (1; A)
    (2; A, B)
    (3; A, B, C)
    (4; A, B, C, D)
    (5; A, B, C, D, E)
    (6; A, B, C, D, E, F)
}

fn take_object<E: Error>(value: Value) -> Result<Map<String, Value>, E> {
    match value {
        Value::Object(map) => Ok(map),
        other => Err(type_error("object", &other)),
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        take_object::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(|(k, v)| {
                let key = from_value::<K>(Value::String(k)).map_err(Error::custom)?;
                let value = from_value::<V>(v).map_err(Error::custom)?;
                Ok((key, value))
            })
            .collect()
    }
}

impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: DeserializeOwned + std::hash::Hash + Eq,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        take_object::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(|(k, v)| {
                let key = from_value::<K>(Value::String(k)).map_err(Error::custom)?;
                let value = from_value::<V>(v).map_err(Error::custom)?;
                Ok((key, value))
            })
            .collect()
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        take_array::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(|item| from_value(item).map_err(Error::custom))
            .collect()
    }
}

impl<'de, T: DeserializeOwned + std::hash::Hash + Eq> Deserialize<'de>
    for std::collections::HashSet<T>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        take_array::<D::Error>(deserializer.take_value()?)?
            .into_iter()
            .map(|item| from_value(item).map_err(Error::custom))
            .collect()
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut obj = take_object::<D::Error>(deserializer.take_value()?)?;
        let secs: u64 = obj
            .remove("secs")
            .map(from_value)
            .transpose()
            .map_err(Error::custom)?
            .ok_or_else(|| Error::custom("missing field `secs`"))?;
        let nanos: u32 = obj
            .remove("nanos")
            .map(from_value)
            .transpose()
            .map_err(Error::custom)?
            .ok_or_else(|| Error::custom("missing field `nanos`"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
