//! The JSON data model every serializer/deserializer in this stack speaks.

use std::borrow::Borrow;
use std::fmt;

/// Insertion-ordered map. Struct serialization inserts fields in
/// declaration order, so emitted JSON keeps that order (like serde_json's
/// streaming serializer does for structs).
#[derive(Clone, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K, V> Map<K, V> {
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Map {
            entries: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<K: PartialEq, V> Map<K, V> {
    /// Insert, replacing in place if the key exists (position preserved).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.get(key).is_some()
    }

    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        let idx = self.entries.iter().position(|(k, _)| k.borrow() == key)?;
        Some(self.entries.remove(idx).1)
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a, K, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        fn split<K, V>(entry: &(K, V)) -> (&K, &V) {
            (&entry.0, &entry.1)
        }
        self.entries
            .iter()
            .map(split as fn(&'a (K, V)) -> (&'a K, &'a V))
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K: PartialEq, V: PartialEq> PartialEq for Map<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for Map<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

/// A JSON number: unsigned / signed integer or double.
#[derive(Clone, Copy, PartialEq)]
pub struct Number {
    n: N,
}

impl Number {
    /// `None` for NaN or infinities, which JSON cannot represent.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number { n: N::Float(f) })
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(u) => i64::try_from(u).ok(),
            N::NegInt(i) => Some(i),
            N::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(u) => Some(u),
            N::NegInt(i) => u64::try_from(i).ok(),
            N::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.n {
            N::PosInt(u) => u as f64,
            N::NegInt(i) => i as f64,
            N::Float(f) => f,
        })
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }
}

impl From<u64> for Number {
    fn from(u: u64) -> Self {
        Number { n: N::PosInt(u) }
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Self {
        if i >= 0 {
            Number {
                n: N::PosInt(i as u64),
            }
        } else {
            Number { n: N::NegInt(i) }
        }
    }
}

macro_rules! number_from_small {
    ($($unsigned:ty),*; $($signed:ty),*) => {
        $(impl From<$unsigned> for Number {
            fn from(v: $unsigned) -> Self {
                Number::from(v as u64)
            }
        })*
        $(impl From<$signed> for Number {
            fn from(v: $signed) -> Self {
                Number::from(v as i64)
            }
        })*
    };
}

number_from_small!(u8, u16, u32, usize; i8, i16, i32, isize);

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(u) => write!(f, "{u}"),
            N::NegInt(i) => write!(f, "{i}"),
            // `{:?}` on f64 is Rust's shortest round-trip formatting and is
            // valid JSON for finite values (e.g. "1.0", "2.5e-3").
            N::Float(x) => write!(f, "{x:?}"),
        }
    }
}

impl fmt::Debug for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Number({self})")
    }
}

/// A parsed/serialized JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    /// Human-readable kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

macro_rules! value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

value_from_number!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Number::from_f64(v)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

pub(crate) fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact single-line JSON, serde_json `to_string` style.
pub fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Two-space-indented JSON, serde_json `to_string_pretty` style.
pub fn write_pretty(value: &Value, out: &mut String, depth: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m: Map<String, i32> = Map::new();
        m.insert("b".into(), 1);
        m.insert("a".into(), 2);
        m.insert("b".into(), 3);
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(m.get("b"), Some(&3));
    }

    #[test]
    fn display_is_compact_json() {
        let mut obj = Map::new();
        obj.insert("x".to_owned(), Value::from(1i64));
        obj.insert("s".to_owned(), Value::from("a\"b\n"));
        obj.insert(
            "a".to_owned(),
            Value::Array(vec![Value::Null, Value::Bool(true), Value::from(2.5f64)]),
        );
        assert_eq!(
            Value::Object(obj).to_string(),
            r#"{"x":1,"s":"a\"b\n","a":[null,true,2.5]}"#
        );
    }

    #[test]
    fn number_float_display_round_trips() {
        for x in [1.0f64, 0.1, 1e300, -2.5e-7, 123456.789] {
            let s = Number::from_f64(x).unwrap().to_string();
            assert_eq!(s.parse::<f64>().unwrap(), x, "via {s}");
        }
    }
}
