//! Minimal offline stand-in for `rand` 0.8.
//!
//! A single SplitMix64 generator backs both `StdRng` and `SmallRng`; the
//! statistical quality is ample for synthetic data generation and seeded
//! simulation, which is all the workspace uses randomness for. The API shape
//! (traits `Rng`/`RngCore`/`SeedableRng`, `distributions` module) follows
//! rand 0.8 so call sites compile unchanged.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// SplitMix64: tiny, fast, passes BigCrush on 64-bit outputs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed ^ 0x5DEE_CE66_D1CE_4E5B)
        }
    }

    /// Same generator; rand's `SmallRng` is just a cheaper `StdRng` here.
    pub type SmallRng = StdRng;
}

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }

    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distr.sample(self)
    }

    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore> Rng for R {}

fn u64_to_open_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample uniformly. A single generic `SampleRange`
/// impl over this trait (mirroring real rand's `T: SampleUniform` bound)
/// lets integer-literal inference flow from the call site, e.g.
/// `let x: i64 = rng.gen_range(0..10);`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                }
                let u = u64_to_open_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        T::sample_in(lo, hi, true, rng)
    }
}

pub mod distributions {
    use super::{u64_to_open_f64, RngCore, SampleRange};
    use std::marker::PhantomData;

    /// Types that produce values of `T` given a generator.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution for a type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            u64_to_open_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            u64_to_open_f64(rng.next_u64()) as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Uniform over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T>
    where
        std::ops::Range<T>: SampleRange<T>,
    {
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl<T: Copy> Distribution<T> for Uniform<T>
    where
        std::ops::Range<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (self.low..self.high).sample_single(rng)
        }
    }

    /// Uniform over `[A-Za-z0-9]`, yielding `u8` code points.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Alphanumeric;

    const ALPHANUMERIC: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

    impl Distribution<u8> for Alphanumeric {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            ALPHANUMERIC[(rng.next_u64() % ALPHANUMERIC.len() as u64) as usize]
        }
    }

    /// Iterator adapter returned by [`Rng::sample_iter`](crate::Rng::sample_iter).
    pub struct DistIter<D, R, T> {
        distr: D,
        rng: R,
        _marker: PhantomData<T>,
    }

    impl<D, R, T> DistIter<D, R, T> {
        pub(crate) fn new(distr: D, rng: R) -> Self {
            DistIter {
                distr,
                rng,
                _marker: PhantomData,
            }
        }
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Alphanumeric, Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(1..=8usize);
            assert!((1..=8).contains(&u));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn alphanumeric_strings() {
        let mut rng = StdRng::seed_from_u64(3);
        let s: String = (&mut rng)
            .sample_iter(&Alphanumeric)
            .take(24)
            .map(char::from)
            .collect();
        assert_eq!(s.len(), 24);
        assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        let d = Uniform::new(3usize, 10usize);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((3..10).contains(&v));
        }
    }
}
