//! A complete Labs training session: the paper's headline demo.
//!
//! A trainee on the free tier works the e-commerce revenue challenge by
//! trial and error: tries the straightforward design, then a cheaper one,
//! then a streaming one; compares the runs; reads the consequence matrix
//! and the Pareto front; and gets graded on each attempt.
//!
//! Run with: `cargo run --bin labs_training`

use toreador_examples::banner;
use toreador_labs::prelude::*;

fn main() {
    let mut session = LabSession::new("trainee-01", Quota::free_tier(), 42);
    let ch = challenge("ecomm-revenue").expect("built-in challenge");

    banner(&format!("challenge: {}", ch.title));
    println!("{}\n", ch.brief);
    for (i, point) in ch.choice_points.iter().enumerate() {
        println!("choice {i} [{}]: {}", point.id, point.prompt);
        for o in &point.options {
            println!("    {:<8} {}", o.id, o.label);
        }
    }

    // Trial 1: the straightforward design.
    let full_batch = vec!["full".to_string(), "batch".to_string()];
    session
        .attempt("ecomm-revenue", &full_batch, None)
        .expect("run 1");
    // Trial 2: cheaper — sample the clickstream.
    let sample_batch = vec!["sample".to_string(), "batch".to_string()];
    session
        .attempt("ecomm-revenue", &sample_batch, None)
        .expect("run 2");
    // Trial 3: fresher — hourly micro-batches.
    let full_stream = vec!["full".to_string(), "stream".to_string()];
    session
        .attempt("ecomm-revenue", &full_stream, None)
        .expect("run 3");

    banner("investigating the consequences: run 1 vs run 2");
    print!("{}", session.compare(1, 2).expect("comparable").render());

    banner("consequence matrix over all attempts");
    let matrix = session.consequences("ecomm-revenue").expect("matrix");
    print!("{}", matrix.render());
    let front = matrix.pareto_front();
    println!(
        "Pareto-efficient designs: {:?}",
        front.iter().map(|&i| matrix.rows[i].0).collect::<Vec<_>>()
    );

    banner("assessment");
    for record in session.history().to_vec() {
        let score = session.score(record.run_id).expect("scored");
        println!(
            "run {} {:?}: {:>5.1}/100",
            record.run_id, record.choices, score.total
        );
        for (component, awarded, maximum) in &score.breakdown {
            if *maximum > 0.0 {
                println!("    {component:<22} {awarded:>6.1} / {maximum:.0}");
            } else if awarded.abs() > 0.0 {
                println!("    {component:<22} {awarded:>6.1}");
            }
        }
    }
    let (best, best_score) = session.best_run("ecomm-revenue").expect("has runs");
    println!(
        "\nbest attempt: run {best} at {best_score:.1}/100 \
         ({} of {} free-tier runs used, {:.1} cost units spent)",
        session.runs_used(),
        session.quota().max_runs,
        session.cost_used(),
    );
}
