//! Healthcare campaign: the regulatory barrier, mechanised.
//!
//! Three versions of the same cost analysis: a naive one the compiler
//! refuses (quasi-identifiers exposed raw), a k-anonymous release, and a
//! differentially private release. Shows compile-time refusal, post-hoc
//! verification, the audit trail, and the privacy/utility trade-off.
//!
//! Run with: `cargo run --bin healthcare_privacy`

use toreador_core::prelude::*;
use toreador_data::generate::health_records;
use toreador_examples::{banner, print_indicators};

fn main() {
    let bdaas = Bdaas::new();
    // The lab custodian releases pseudonymised records (no patient_id).
    let data = health_records(3_000, 13)
        .without_column("patient_id")
        .unwrap();

    // --- 1. The naive campaign: rejected before any data moves.
    let naive = bdaas
        .parse(
            "campaign naive on health\npolicy healthcare\ngoal reporting using viz.report.table\n",
        )
        .expect("parses");
    banner("naive campaign (raw record release)");
    match bdaas.compile(&naive, data.schema(), data.num_rows()) {
        Err(e) => println!("refused at compile time, as the policy demands:\n  {e}"),
        Ok(_) => unreachable!("the policy must refuse this"),
    }

    // --- 2. k-anonymous record release.
    let kanon = bdaas
        .parse(
            r#"
campaign anonymised on health
policy healthcare
seed 13
goal anonymization using privacy.kanon k=5 quasi=age,zip,sex
goal anonymization using privacy.ldiv l=2 quasi=age,zip,sex sensitive=diagnosis
goal reporting using viz.report.summary
objective privacy_risk <= 0.2
objective coverage >= 0.5
"#,
        )
        .expect("parses");
    let compiled = bdaas
        .compile(&kanon, data.schema(), data.num_rows())
        .expect("compiles");
    let anon = bdaas
        .run(&compiled, data.clone(), &Default::default())
        .expect("runs");
    banner("k-anonymous release");
    print_indicators(&anon.indicators);
    println!(
        "post-hoc compliance: {}",
        if anon.post_verdict.as_ref().unwrap().compliant {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // --- 3. Differentially private aggregate release.
    let dp = bdaas
        .parse(
            r#"
campaign dp_release on health
policy healthcare
seed 13
goal private_aggregation epsilon=1.0 column=cost group_by=diagnosis
objective privacy_risk <= 0.2
"#,
        )
        .expect("parses");
    let compiled = bdaas
        .compile(&dp, data.schema(), data.num_rows())
        .expect("compiles");
    let dp_out = bdaas
        .run(&compiled, data, &Default::default())
        .expect("runs");
    banner("differentially private release (ε = 1.0)");
    println!("{}", dp_out.output.show(10));
    print_indicators(&dp_out.indicators);

    // --- The audit trail: custody evidence for both runs.
    banner("audit trail of the DP release");
    for entry in dp_out.audit.entries() {
        println!("  #{:<3} {:?}", entry.sequence, entry.event);
    }

    banner("the trade-off");
    println!(
        "k-anonymity keeps record-level data (coverage {:.2}) at risk 1/k = {:.2}; \
         DP releases only {} noisy aggregates at ε-scaled risk {:.2}.",
        anon.indicator(Indicator::Coverage).unwrap_or(0.0),
        anon.indicator(Indicator::PrivacyRisk).unwrap_or(1.0),
        dp_out.output.num_rows(),
        dp_out.indicator(Indicator::PrivacyRisk).unwrap_or(1.0),
    );
}
