//! Shared helpers for the runnable examples.

/// Print a section banner so example output reads as a walkthrough.
pub fn banner(title: &str) {
    println!();
    println!(
        "== {title} {}",
        "=".repeat(68usize.saturating_sub(title.len()))
    );
}

/// Render an indicator map in a stable order.
pub fn print_indicators(indicators: &std::collections::BTreeMap<String, f64>) {
    for (name, value) in indicators {
        println!("  {name:<18} {value:>12.3}");
    }
}
