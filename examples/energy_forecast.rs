//! Smart-energy campaign: batch vs streaming, forecasting vs anomalies.
//!
//! Runs the telemetry vertical both ways the TOREADOR methodology allows —
//! one batch campaign that repairs sensor dropouts and fits a load model,
//! and one streaming campaign that aggregates consumption per region in
//! hourly micro-batches — and prints the latency/throughput trade-off.
//!
//! Run with: `cargo run --bin energy_forecast`

use toreador_core::prelude::*;
use toreador_data::generate::telemetry;
use toreador_examples::{banner, print_indicators};

fn main() {
    let bdaas = Bdaas::new();
    let data = telemetry(8_000, 40, 11);

    // --- batch: impute, forecast, flag anomalies.
    let batch_spec = bdaas
        .parse(
            r#"
campaign load_model on telemetry
prefer quality
seed 11
goal imputation using prep.impute.median columns=voltage
goal regression target=kwh features=temp_c,voltage expect accuracy >= 0.1
goal anomaly_detection using analytics.anomaly.rolling column=kwh window=48 threshold=4.0
"#,
        )
        .expect("parses");
    let compiled = bdaas
        .compile(&batch_spec, data.schema(), data.num_rows())
        .expect("compiles");
    let batch = bdaas
        .run(&compiled, data.clone(), &Default::default())
        .expect("runs");
    banner("batch campaign: load model + anomaly sweep");
    print_indicators(&batch.indicators);
    for (service, text) in &batch.reports {
        println!("[{service}] {text}");
    }

    // --- stream: per-region consumption in hourly windows.
    let stream_spec = bdaas
        .parse(
            r#"
campaign region_load on telemetry
mode stream window=3600000
seed 11
goal aggregation group_by=region agg=sum:kwh:total_kwh,count:reading_id:readings
"#,
        )
        .expect("parses");
    let compiled = bdaas
        .compile(&stream_spec, data.schema(), data.num_rows())
        .expect("compiles");
    let stream = bdaas
        .run(&compiled, data, &Default::default())
        .expect("runs");
    banner("streaming campaign: hourly per-region consumption");
    print_indicators(&stream.indicators);
    println!(
        "\n{} window results (first 12 shown):\n{}",
        stream.output.num_rows(),
        stream.output.show(12)
    );

    banner("the trade-off");
    println!(
        "batch runtime {:.1} ms vs stream mean batch latency {:.1} ms — \
         streaming pays per-window overhead to get results before the log ends.",
        batch.indicator(Indicator::RuntimeMs).unwrap_or(0.0),
        stream.indicator(Indicator::BatchLatencyMs).unwrap_or(0.0),
    );
}
