//! Quickstart: the BDAaaS function in five steps.
//!
//! Declares a campaign in the business-level DSL, compiles it into a
//! service composition bound to a platform, runs it, and prints the
//! measured indicators — the complete "goals in, ready-to-run pipeline
//! out" loop from §2 of the paper.
//!
//! Run with: `cargo run --bin quickstart`

use toreador_core::prelude::*;
use toreador_data::generate::clickstream;
use toreador_examples::{banner, print_indicators};

fn main() {
    // 1. A dataset. The Labs generate a synthetic e-commerce clickstream;
    //    in production this would be the customer's data.
    let data = clickstream(5_000, 42);
    println!("dataset: {} rows of clickstream", data.num_rows());

    // 2. The declarative model, written from the business perspective:
    //    what to compute, under which objectives — not how.
    let bdaas = Bdaas::new();
    let spec = bdaas
        .parse(
            r#"
# Which countries generate the purchase revenue?
campaign revenue_by_country on clicks
prefer cost
seed 42
goal filtering predicate="action == 'purchase'"
goal aggregation group_by=country agg=sum:price:revenue,count:event_id:purchases
goal ranking by=revenue n=5
goal reporting using viz.report.table limit=10
objective runtime_ms <= 60000
objective cost <= 500
"#,
        )
        .expect("the campaign DSL parses");

    // 3. Compile: consistency check -> service composition -> platform
    //    binding -> compliance check.
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .expect("the campaign compiles");
    banner("procedural model (service composition)");
    print!("{}", compiled.procedural.composition);
    banner("deployment model");
    println!(
        "platform {} | {} workers | {} partitions | estimated cost {:.1} units",
        compiled.deployment.platform.name,
        compiled.deployment.engine_config.threads,
        compiled.deployment.engine_config.partitions,
        compiled.deployment.estimated_cost,
    );

    // 4. Run the ready-to-execute pipeline.
    let outcome = bdaas
        .run(&compiled, data, &Default::default())
        .expect("the campaign runs");

    // 5. Inspect: indicators, objectives, and the pipeline's own report.
    banner("measured indicators");
    print_indicators(&outcome.indicators);
    banner("objectives");
    for o in &outcome.objectives {
        println!(
            "  {:<28} measured {:>10}  satisfied: {}",
            o.objective.to_string(),
            o.measured
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            o.satisfied
                .map(|s| s.to_string())
                .unwrap_or_else(|| "unmeasured".into()),
        );
    }
    banner("pipeline report");
    for (service, text) in &outcome.reports {
        println!("[{service}]");
        println!("{text}");
    }
    assert!(
        outcome.all_objectives_met(),
        "quickstart objectives should hold"
    );
}
