//! E-commerce campaign: exploring alternative designs.
//!
//! The marketplace scenario from the Labs, driven through the raw API: a
//! funnel analysis campaign is compiled and run, then the alternative
//! enumerator proposes one-change design variants, each is executed, and
//! the consequences are compared — the paper's "identify alternative
//! options, and investigate the consequences of their choices".
//!
//! Run with: `cargo run --bin ecommerce_campaign`

use toreador_core::prelude::*;
use toreador_data::generate::clickstream;
use toreador_examples::banner;

fn main() {
    let bdaas = Bdaas::new();
    let data = clickstream(6_000, 7);

    let spec = bdaas
        .parse(
            r#"
campaign funnel on clicks
prefer quality
seed 7
goal filtering predicate="action == 'cart' or action == 'purchase'"
goal aggregation group_by=category,action agg=count:event_id:events,sum:price:value
objective runtime_ms <= 60000
"#,
        )
        .expect("parses");

    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .expect("compiles");
    let baseline = bdaas
        .run(&compiled, data.clone(), &Default::default())
        .expect("runs");
    banner("baseline: funnel value by category and action");
    println!(
        "{}",
        baseline
            .output
            .sort_by(&["category", "action"], false)
            .unwrap()
            .show(16)
    );
    println!(
        "baseline cost {:.1} units, {} engine stages, {} shuffle bytes",
        baseline.indicator(Indicator::Cost).unwrap_or(0.0),
        baseline
            .engine_metrics
            .iter()
            .map(|m| m.stage_count())
            .sum::<usize>(),
        baseline
            .engine_metrics
            .iter()
            .map(|m| m.total_shuffle_bytes())
            .sum::<u64>(),
    );

    // Enumerate the design neighbours and try each one.
    let alternatives =
        enumerate(&spec, bdaas.registry(), data.schema().contains("ts")).expect("enumerates");
    banner(&format!("{} alternative designs", alternatives.len()));
    for alt in &alternatives {
        let result = bdaas
            .compile(&alt.spec, data.schema(), data.num_rows())
            .and_then(|c| bdaas.run(&c, data.clone(), &Default::default()));
        match result {
            Ok(outcome) => {
                println!(
                    "  {:<46} cost {:>8.1}  rows out {:>6}",
                    alt.description,
                    outcome.indicator(Indicator::Cost).unwrap_or(0.0),
                    outcome.output.num_rows(),
                );
            }
            Err(e) => println!("  {:<46} rejected: {e}", alt.description),
        }
    }
    println!(
        "\nEach line is one design decision changed; the consequence shows up \
         in the indicators. The Labs wrap exactly this loop with challenges \
         and scoring (see the labs_training example)."
    );
}
