//! Property-based tests spanning the whole stack: random campaigns through
//! the real compiler and engine.

use proptest::prelude::*;

use toreador_core::prelude::*;
use toreador_data::generate::clickstream;

/// Generate a random-but-valid campaign DSL over the clickstream schema.
fn arb_campaign() -> impl Strategy<Value = String> {
    let predicate = prop_oneof![
        Just("price > 10"),
        Just("action == 'purchase'"),
        Just("country != 'IT' and price is not null"),
        Just("product_id % 2 == 0"),
    ];
    let group = prop_oneof![Just("country"), Just("category"), Just("action")];
    let agg = prop_oneof![
        Just("count:event_id:n"),
        Just("sum:price:total"),
        Just("mean:price:avg,count:event_id:n"),
    ];
    let prefer = prop_oneof![Just("quality"), Just("cost"), Just("balanced")];
    (predicate, group, agg, prefer, 0u64..100, any::<bool>()).prop_map(
        |(p, g, a, pref, seed, sample)| {
            let mut dsl = format!("campaign generated on clicks\nprefer {pref}\nseed {seed}\n");
            if sample {
                dsl.push_str("goal sampling fraction=0.5\n");
            }
            dsl.push_str(&format!("goal filtering predicate=\"{p}\"\n"));
            dsl.push_str(&format!("goal aggregation group_by={g} agg={a}\n"));
            dsl
        },
    )
}

/// Typed random expression trees over `random_table`'s 5-column schema
/// (c0 Int, c1 Float, c2 Str, c3 Bool, c4 Timestamp), used to pit the
/// vectorized engine against the row-at-a-time oracle.
mod arb_exprs {
    use proptest::prelude::*;
    use toreador_data::value::{DataType, Value};
    use toreador_dataflow::expr::{col, lit, Expr, Func};

    fn leaf(ty: DataType) -> BoxedStrategy<Expr> {
        match ty {
            DataType::Int => prop_oneof![
                Just(col("c0")),
                (-5i64..5).prop_map(|i| lit(Value::Int(i))),
                Just(lit(Value::Int(i64::MAX))),
                Just(lit(Value::Int(i64::MIN))),
            ]
            .boxed(),
            DataType::Float => prop_oneof![
                Just(col("c1")),
                (-4i32..4).prop_map(|i| lit(Value::Float(f64::from(i) / 2.0))),
                Just(lit(Value::Float(f64::NAN))),
                Just(lit(Value::Float(-0.0))),
                Just(lit(Value::Float(f64::INFINITY))),
            ]
            .boxed(),
            DataType::Str => prop_oneof![
                Just(col("c2")),
                Just(lit("")),
                Just(lit("42")),
                Just(lit("-7.5")),
                Just(lit("true")),
                Just(lit("héllo")),
            ]
            .boxed(),
            DataType::Bool => prop_oneof![
                Just(col("c3")),
                Just(lit(Value::Bool(true))),
                Just(lit(Value::Bool(false))),
            ]
            .boxed(),
            DataType::Timestamp => prop_oneof![
                Just(col("c4")),
                Just(lit(Value::Timestamp(0))),
                (-2i64..100).prop_map(|h| lit(Value::Timestamp(h * 3_600_000))),
            ]
            .boxed(),
        }
    }

    fn cmp(a: Expr, b: Expr, op: usize) -> Expr {
        match op % 6 {
            0 => a.eq(b),
            1 => a.not_eq(b),
            2 => a.lt(b),
            3 => a.lt_eq(b),
            4 => a.gt(b),
            _ => a.gt_eq(b),
        }
    }

    /// A random expression whose static type is `ty` (modulo inference
    /// rejecting some mixed conditionals — the caller checks both engines
    /// reject identically in that case).
    fn typed(ty: DataType, depth: u32) -> BoxedStrategy<Expr> {
        if depth == 0 {
            return leaf(ty);
        }
        let d = depth - 1;
        use DataType::*;
        match ty {
            Int => prop_oneof![
                leaf(Int),
                (typed(Int, d), typed(Int, d), 0..4usize).prop_map(|(a, b, op)| match op {
                    0 => a.add(b),
                    1 => a.sub(b),
                    2 => a.mul(b),
                    _ => a.modulo(b),
                }),
                typed(Int, d).prop_map(Expr::neg),
                typed(Int, d).prop_map(|a| Expr::call(Func::Abs, vec![a])),
                typed(Str, d).prop_map(|a| Expr::call(Func::Length, vec![a])),
                typed(Timestamp, d).prop_map(|a| Expr::call(Func::HourOfDay, vec![a])),
                typed(Timestamp, d).prop_map(|a| Expr::call(Func::DayIndex, vec![a])),
                typed(Float, d).prop_map(|a| a.cast(Int)),
                typed(Str, d).prop_map(|a| a.cast(Int)), // usually fails to parse
                (typed(Bool, d), typed(Int, d), typed(Int, d))
                    .prop_map(|(c, t, e)| Expr::if_then(c, t, e)),
                (typed(Int, d), typed(Int, d)).prop_map(|(a, b)| Expr::coalesce(vec![a, b])),
            ]
            .boxed(),
            Float => prop_oneof![
                leaf(Float),
                (typed(Float, d), typed(Float, d), 0..5usize).prop_map(|(a, b, op)| match op {
                    0 => a.add(b),
                    1 => a.sub(b),
                    2 => a.mul(b),
                    3 => a.div(b),
                    _ => a.modulo(b),
                }),
                (typed(Int, d), typed(Float, d)).prop_map(|(a, b)| a.add(b)),
                (typed(Int, d), typed(Int, d)).prop_map(|(a, b)| a.div(b)),
                typed(Float, d).prop_map(|a| Expr::call(Func::Sqrt, vec![a])),
                typed(Float, d).prop_map(|a| Expr::call(Func::Ln, vec![a])),
                typed(Float, d).prop_map(|a| Expr::call(Func::Floor, vec![a])),
                typed(Float, d).prop_map(|a| Expr::call(Func::Ceil, vec![a])),
                typed(Int, d).prop_map(|a| a.cast(Float)),
                typed(Str, d).prop_map(|a| a.cast(Float)), // usually fails to parse
                // Mixed-type branches: the vectorized engine's dynamic
                // row-fallback path.
                (typed(Bool, d), typed(Int, d), typed(Float, d))
                    .prop_map(|(c, t, e)| Expr::if_then(c, t, e)),
                (typed(Float, d), typed(Int, d)).prop_map(|(a, b)| Expr::coalesce(vec![a, b])),
            ]
            .boxed(),
            Bool => prop_oneof![
                leaf(Bool),
                (typed(Int, d), typed(Int, d), 0..6usize).prop_map(|(a, b, o)| cmp(a, b, o)),
                (typed(Float, d), typed(Float, d), 0..6usize).prop_map(|(a, b, o)| cmp(a, b, o)),
                (typed(Int, d), typed(Float, d), 0..6usize).prop_map(|(a, b, o)| cmp(a, b, o)),
                (typed(Str, d), typed(Str, d), 0..6usize).prop_map(|(a, b, o)| cmp(a, b, o)),
                (typed(Timestamp, d), typed(Timestamp, d), 0..6usize)
                    .prop_map(|(a, b, o)| cmp(a, b, o)),
                (typed(Bool, d), typed(Bool, d)).prop_map(|(a, b)| a.and(b)),
                (typed(Bool, d), typed(Bool, d)).prop_map(|(a, b)| a.or(b)),
                typed(Bool, d).prop_map(Expr::not),
                typed(Float, d).prop_map(Expr::is_null),
                typed(Str, d).prop_map(Expr::is_null),
                typed(Int, d).prop_map(Expr::is_not_null),
                typed(Timestamp, d).prop_map(Expr::is_not_null),
                typed(Int, d).prop_map(|a| a.cast(Bool)),
                (typed(Bool, d), typed(Bool, d), typed(Bool, d))
                    .prop_map(|(c, t, e)| Expr::if_then(c, t, e)),
            ]
            .boxed(),
            Str => prop_oneof![
                leaf(Str),
                typed(Str, d).prop_map(|a| Expr::call(Func::Lower, vec![a])),
                typed(Str, d).prop_map(|a| Expr::call(Func::Upper, vec![a])),
                typed(Int, d).prop_map(|a| a.cast(Str)),
                typed(Float, d).prop_map(|a| a.cast(Str)),
                typed(Bool, d).prop_map(|a| a.cast(Str)),
                typed(Timestamp, d).prop_map(|a| a.cast(Str)),
                (typed(Str, d), typed(Str, d)).prop_map(|(a, b)| Expr::coalesce(vec![a, b])),
                (typed(Bool, d), typed(Str, d), typed(Str, d))
                    .prop_map(|(c, t, e)| Expr::if_then(c, t, e)),
            ]
            .boxed(),
            Timestamp => prop_oneof![
                leaf(Timestamp),
                typed(Int, d).prop_map(|a| a.cast(Timestamp)),
                (typed(Timestamp, d), typed(Timestamp, d))
                    .prop_map(|(a, b)| Expr::coalesce(vec![a, b])),
                (typed(Bool, d), typed(Timestamp, d), typed(Timestamp, d))
                    .prop_map(|(c, t, e)| Expr::if_then(c, t, e)),
            ]
            .boxed(),
        }
    }

    /// A random expression of any result type, depth ≤ 3.
    pub fn any_expr() -> BoxedStrategy<Expr> {
        use DataType::*;
        prop_oneof![
            typed(Int, 3),
            typed(Float, 3),
            typed(Bool, 3),
            typed(Str, 3),
            typed(Timestamp, 3),
        ]
        .boxed()
    }
}

/// Observable equality of two columns: same type, length, validity, and
/// valid slots equal down to float bit-sign (`{:?}` distinguishes `-0.0`
/// and `NaN`). Dead slots hold unspecified defaults and are ignored —
/// which derived `PartialEq` on `Column` would not do.
fn columns_identical(a: &toreador_data::column::Column, b: &toreador_data::column::Column) -> bool {
    a.data_type() == b.data_type()
        && a.len() == b.len()
        && (0..a.len()).all(|i| format!("{:?}", a.value(i)) == format!("{:?}", b.value(i)))
}

fn tables_identical(a: &toreador_data::table::Table, b: &toreador_data::table::Table) -> bool {
    a.schema() == b.schema()
        && a.num_rows() == b.num_rows()
        && a.columns()
            .iter()
            .zip(b.columns())
            .all(|(x, y)| columns_identical(x, y))
}

// Differential properties of the vectorized expression engine: 256 cases
// by default (the acceptance bar), `PROPTEST_CASES` overrides.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256),
    ))]

    #[test]
    fn vectorized_engine_matches_row_oracle(
        expr in arb_exprs::any_expr(),
        rows in 1usize..120,
        seed in 0u64..1000,
    ) {
        use toreador_data::generate::random_table;
        use toreador_data::value::DataType;
        use toreador_dataflow::prelude::BoundExpr;

        let t = random_table(rows, 5, seed);
        let by_row = expr.eval_table(&t);
        match BoundExpr::bind(&expr, t.schema()) {
            Err(bind_err) => {
                // Binding must reject exactly what inference rejects, with
                // the same message.
                let infer_err = expr.infer_type(t.schema());
                prop_assert!(infer_err.is_err(), "bind rejected, inference accepted");
                prop_assert_eq!(
                    bind_err.to_string(),
                    infer_err.unwrap_err().to_string()
                );
                prop_assert!(by_row.is_err());
            }
            Ok(bound) => {
                let by_batch = bound.eval_column(&t);
                match (by_row, by_batch) {
                    (Ok(a), Ok(b)) => prop_assert!(
                        columns_identical(&a, &b),
                        "engines disagree on {expr:?}:\n row: {a:?}\n vec: {b:?}"
                    ),
                    (Err(_), Err(_)) => {} // both reject (e.g. a failed cast)
                    (a, b) => prop_assert!(
                        false,
                        "only one engine errored on {expr:?}: row={a:?} vec={b:?}"
                    ),
                }
                if bound.output_type() == DataType::Bool {
                    if let (Ok(mask), Ok(sel)) = (expr.eval_mask(&t), bound.eval_selection(&t)) {
                        let from_mask: Vec<u32> = mask
                            .iter()
                            .enumerate()
                            .filter_map(|(i, m)| m.then_some(i as u32))
                            .collect();
                        prop_assert_eq!(sel, from_mask);
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_chain_execution_is_mode_invariant(
        rows in 20usize..250,
        seed in 0u64..200,
        fraction in 0.0f64..1.0,
        sample_first in any::<bool>(),
    ) {
        use toreador_data::generate::random_table;
        use toreador_data::value::DataType;
        use toreador_dataflow::prelude::*;

        let run = |vectorized: bool, fuse_narrow: bool| {
            let mut engine = Engine::new(
                EngineConfig::default()
                    .with_threads(2)
                    .with_partitions(3)
                    .with_vectorized(vectorized)
                    .with_fuse_narrow(fuse_narrow),
            );
            engine.register("t", random_table(rows, 5, seed)).unwrap();
            let mut flow = engine.flow("t").unwrap();
            if sample_first {
                flow = flow.sample(fraction, seed).unwrap();
            }
            flow = flow
                .filter(col("c0").gt(lit(0i64)).or(col("c3")))
                .unwrap()
                .project(vec![
                    ("k", col("c0").add(col("c1").cast(DataType::Int))),
                    ("len", Expr::call(Func::Length, vec![col("c2")])),
                    ("ratio", col("c1").div(col("c0"))),
                ])
                .unwrap();
            if !sample_first {
                flow = flow.sample(fraction, seed).unwrap();
            }
            engine.run(&flow).unwrap().table
        };
        let fused = run(true, true);
        let unfused = run(true, false);
        let row_oracle = run(false, false);
        prop_assert!(tables_identical(&fused, &unfused), "fused != unfused");
        prop_assert!(tables_identical(&fused, &row_oracle), "vectorized != row oracle");
    }

    #[test]
    fn columnar_shuffle_routing_matches_row_routing(
        rows in 1usize..200,
        cols in 1usize..6,
        seed in 0u64..500,
        targets in 1usize..9,
    ) {
        use toreador_data::generate::random_table;
        use toreador_dataflow::shuffle::{route, route_rows};

        let t = random_table(rows, cols, seed);
        let key_idx: Vec<usize> = (0..cols).step_by(2).collect();
        let routes = route_rows(&t, &key_idx, targets).unwrap();
        for (i, row) in t.iter_rows().enumerate() {
            prop_assert_eq!(routes[i] as usize, route(&row, &key_idx, targets), "row {}", i);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_valid_campaigns_compile_and_run(dsl in arb_campaign(), rows in 50usize..500) {
        let bdaas = Bdaas::new();
        let data = clickstream(rows, 1);
        let spec = bdaas.parse(&dsl).unwrap();
        let compiled = bdaas.compile(&spec, data.schema(), rows).unwrap();
        let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
        // Invariants any run must satisfy.
        prop_assert!(outcome.indicator(Indicator::RuntimeMs).unwrap() >= 0.0);
        prop_assert!(outcome.indicator(Indicator::Cost).unwrap() >= 0.0);
        let coverage = outcome.indicator(Indicator::Coverage).unwrap();
        prop_assert!((0.0..=1.0).contains(&coverage));
        // Aggregation output can never exceed the input size.
        prop_assert!(outcome.output.num_rows() <= rows);
    }

    #[test]
    fn compilation_is_deterministic(dsl in arb_campaign()) {
        let bdaas = Bdaas::new();
        let data = clickstream(100, 2);
        let spec = bdaas.parse(&dsl).unwrap();
        let a = bdaas.compile(&spec, data.schema(), 100).unwrap();
        let b = bdaas.compile(&spec, data.schema(), 100).unwrap();
        prop_assert_eq!(a.procedural.composition, b.procedural.composition);
        prop_assert_eq!(a.deployment.platform.name, b.deployment.platform.name);
        prop_assert!((a.deployment.estimated_cost - b.deployment.estimated_cost).abs() < 1e-12);
    }

    #[test]
    fn run_outputs_are_seed_deterministic(dsl in arb_campaign()) {
        let bdaas = Bdaas::new();
        let spec = bdaas.parse(&dsl).unwrap();
        let run = || {
            let data = clickstream(200, 3);
            let compiled = bdaas.compile(&spec, data.schema(), 200).unwrap();
            bdaas.run(&compiled, data, &Default::default()).unwrap().output
        };
        let a = run();
        let b = run();
        prop_assert_eq!(
            a.sort_by(&a.schema().names(), false).unwrap(),
            b.sort_by(&b.schema().names(), false).unwrap()
        );
    }

    #[test]
    fn parse_never_panics_on_arbitrary_text(text in "[a-z =\"\'\\n]{0,120}") {
        let bdaas = Bdaas::new();
        let _ = bdaas.parse(&text); // must return, not panic
    }

    #[test]
    fn expr_parser_never_panics(text in "[a-z0-9 ><=+*()'\"%-]{0,60}") {
        let _ = toreador_core::dsl::parse_expr(&text);
    }

    #[test]
    fn journal_derived_metrics_match_legacy_collector(
        predicate in prop_oneof![
            Just("price > 10"),
            Just("action == 'purchase'"),
            Just("product_id % 2 == 0"),
        ],
        group in prop_oneof![Just("country"), Just("category"), Just("action")],
        sorted in any::<bool>(),
        rows in 50usize..400,
        threads in 1usize..5,
        faulty in any::<bool>(),
        seed in 0u64..50,
    ) {
        use std::collections::HashMap;
        use std::time::Duration;
        use toreador_data::partition::PartitionedTable;
        use toreador_dataflow::fault::FaultPlan;
        use toreador_dataflow::metrics::MetricsCollector;
        use toreador_dataflow::physical::{execute, ExecConfig, ExecContext};
        use toreador_dataflow::prelude::*;
        use toreador_dataflow::scheduler::SchedulerConfig;
        use toreador_core::dsl::parse_expr;

        // An arbitrary plan over the clickstream schema...
        let table = clickstream(rows, seed);
        let mut flow = Dataflow::scan("clicks", table.schema().clone())
            .filter(parse_expr(predicate).unwrap())
            .unwrap()
            .aggregate(&[group], vec![AggExpr::new(AggFunc::Count, "event_id", "n")])
            .unwrap();
        if sorted {
            flow = flow.sort(&["n"], true).unwrap();
        }
        // ...executed directly so both finish paths of the collector are
        // reachable, optionally under injected faults.
        let faults = if faulty {
            FaultPlan::with_rate(0.3, seed, 20)
        } else {
            FaultPlan::none()
        };
        let config = ExecConfig {
            scheduler: SchedulerConfig::new(threads).with_faults(faults),
            partitions: 4,
            partial_aggregation: seed % 2 == 0,
            vectorized: seed % 3 != 0,
            fuse_narrow: seed % 5 != 0,
            pipelined: seed % 7 != 0,
            morsel_rows: 256,
            control: None,
            memory_budget_bytes: None,
            spill_dir: None,
        };
        let mut datasets = HashMap::new();
        datasets.insert("clicks".to_owned(), PartitionedTable::split(table, 4).unwrap());
        let metrics = MetricsCollector::new();
        let ctx = ExecContext::new(&datasets, config, &metrics);
        let out = execute(&ctx, flow.plan()).unwrap();
        let partitions = out.num_partitions() as u64;
        let result_rows = out.collect().unwrap().num_rows() as u64;

        let elapsed = Duration::from_micros(4_321);
        let derived = metrics.finish(elapsed, result_rows, partitions);
        let legacy = metrics.finish_legacy(elapsed, result_rows, partitions);
        prop_assert_eq!(&derived, &legacy, "journal derivation must be lossless");
        prop_assert_eq!(
            serde_json::to_string(&derived).unwrap(),
            serde_json::to_string(&legacy).unwrap()
        );
    }

    #[test]
    fn labs_attempts_stay_within_quota(runs in 1u64..6) {
        use toreador_labs::prelude::*;
        let mut session = LabSession::new(
            "p",
            Quota { max_runs: runs, max_rows_per_run: 300, max_total_cost: f64::INFINITY },
            5,
        );
        let c = challenge("ecomm-revenue").unwrap();
        let vectors = c.all_choice_vectors();
        for v in vectors.iter().cycle().take(8) {
            let _ = session.attempt("ecomm-revenue", v, None);
        }
        prop_assert!(session.runs_used() <= runs);
        prop_assert_eq!(session.history().len() as u64, session.runs_used());
    }
}
