//! Property-based tests spanning the whole stack: random campaigns through
//! the real compiler and engine.

use proptest::prelude::*;

use toreador_core::prelude::*;
use toreador_data::generate::clickstream;

/// Generate a random-but-valid campaign DSL over the clickstream schema.
fn arb_campaign() -> impl Strategy<Value = String> {
    let predicate = prop_oneof![
        Just("price > 10"),
        Just("action == 'purchase'"),
        Just("country != 'IT' and price is not null"),
        Just("product_id % 2 == 0"),
    ];
    let group = prop_oneof![Just("country"), Just("category"), Just("action")];
    let agg = prop_oneof![
        Just("count:event_id:n"),
        Just("sum:price:total"),
        Just("mean:price:avg,count:event_id:n"),
    ];
    let prefer = prop_oneof![Just("quality"), Just("cost"), Just("balanced")];
    (predicate, group, agg, prefer, 0u64..100, any::<bool>()).prop_map(
        |(p, g, a, pref, seed, sample)| {
            let mut dsl = format!("campaign generated on clicks\nprefer {pref}\nseed {seed}\n");
            if sample {
                dsl.push_str("goal sampling fraction=0.5\n");
            }
            dsl.push_str(&format!("goal filtering predicate=\"{p}\"\n"));
            dsl.push_str(&format!("goal aggregation group_by={g} agg={a}\n"));
            dsl
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_valid_campaigns_compile_and_run(dsl in arb_campaign(), rows in 50usize..500) {
        let bdaas = Bdaas::new();
        let data = clickstream(rows, 1);
        let spec = bdaas.parse(&dsl).unwrap();
        let compiled = bdaas.compile(&spec, data.schema(), rows).unwrap();
        let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
        // Invariants any run must satisfy.
        prop_assert!(outcome.indicator(Indicator::RuntimeMs).unwrap() >= 0.0);
        prop_assert!(outcome.indicator(Indicator::Cost).unwrap() >= 0.0);
        let coverage = outcome.indicator(Indicator::Coverage).unwrap();
        prop_assert!((0.0..=1.0).contains(&coverage));
        // Aggregation output can never exceed the input size.
        prop_assert!(outcome.output.num_rows() <= rows);
    }

    #[test]
    fn compilation_is_deterministic(dsl in arb_campaign()) {
        let bdaas = Bdaas::new();
        let data = clickstream(100, 2);
        let spec = bdaas.parse(&dsl).unwrap();
        let a = bdaas.compile(&spec, data.schema(), 100).unwrap();
        let b = bdaas.compile(&spec, data.schema(), 100).unwrap();
        prop_assert_eq!(a.procedural.composition, b.procedural.composition);
        prop_assert_eq!(a.deployment.platform.name, b.deployment.platform.name);
        prop_assert!((a.deployment.estimated_cost - b.deployment.estimated_cost).abs() < 1e-12);
    }

    #[test]
    fn run_outputs_are_seed_deterministic(dsl in arb_campaign()) {
        let bdaas = Bdaas::new();
        let spec = bdaas.parse(&dsl).unwrap();
        let run = || {
            let data = clickstream(200, 3);
            let compiled = bdaas.compile(&spec, data.schema(), 200).unwrap();
            bdaas.run(&compiled, data, &Default::default()).unwrap().output
        };
        let a = run();
        let b = run();
        prop_assert_eq!(
            a.sort_by(&a.schema().names(), false).unwrap(),
            b.sort_by(&b.schema().names(), false).unwrap()
        );
    }

    #[test]
    fn parse_never_panics_on_arbitrary_text(text in "[a-z =\"\'\\n]{0,120}") {
        let bdaas = Bdaas::new();
        let _ = bdaas.parse(&text); // must return, not panic
    }

    #[test]
    fn expr_parser_never_panics(text in "[a-z0-9 ><=+*()'\"%-]{0,60}") {
        let _ = toreador_core::dsl::parse_expr(&text);
    }

    #[test]
    fn journal_derived_metrics_match_legacy_collector(
        predicate in prop_oneof![
            Just("price > 10"),
            Just("action == 'purchase'"),
            Just("product_id % 2 == 0"),
        ],
        group in prop_oneof![Just("country"), Just("category"), Just("action")],
        sorted in any::<bool>(),
        rows in 50usize..400,
        threads in 1usize..5,
        faulty in any::<bool>(),
        seed in 0u64..50,
    ) {
        use std::collections::HashMap;
        use std::time::Duration;
        use toreador_data::partition::PartitionedTable;
        use toreador_dataflow::fault::FaultPlan;
        use toreador_dataflow::metrics::MetricsCollector;
        use toreador_dataflow::physical::{execute, ExecConfig, ExecContext};
        use toreador_dataflow::prelude::*;
        use toreador_dataflow::scheduler::SchedulerConfig;
        use toreador_core::dsl::parse_expr;

        // An arbitrary plan over the clickstream schema...
        let table = clickstream(rows, seed);
        let mut flow = Dataflow::scan("clicks", table.schema().clone())
            .filter(parse_expr(predicate).unwrap())
            .unwrap()
            .aggregate(&[group], vec![AggExpr::new(AggFunc::Count, "event_id", "n")])
            .unwrap();
        if sorted {
            flow = flow.sort(&["n"], true).unwrap();
        }
        // ...executed directly so both finish paths of the collector are
        // reachable, optionally under injected faults.
        let faults = if faulty {
            FaultPlan::with_rate(0.3, seed, 20)
        } else {
            FaultPlan::none()
        };
        let config = ExecConfig {
            scheduler: SchedulerConfig::new(threads).with_faults(faults),
            partitions: 4,
            partial_aggregation: seed % 2 == 0,
        };
        let mut datasets = HashMap::new();
        datasets.insert("clicks".to_owned(), PartitionedTable::split(table, 4).unwrap());
        let metrics = MetricsCollector::new();
        let ctx = ExecContext::new(&datasets, config, &metrics);
        let out = execute(&ctx, flow.plan()).unwrap();
        let partitions = out.num_partitions() as u64;
        let result_rows = out.collect().unwrap().num_rows() as u64;

        let elapsed = Duration::from_micros(4_321);
        let derived = metrics.finish(elapsed, result_rows, partitions);
        let legacy = metrics.finish_legacy(elapsed, result_rows, partitions);
        prop_assert_eq!(&derived, &legacy, "journal derivation must be lossless");
        prop_assert_eq!(
            serde_json::to_string(&derived).unwrap(),
            serde_json::to_string(&legacy).unwrap()
        );
    }

    #[test]
    fn labs_attempts_stay_within_quota(runs in 1u64..6) {
        use toreador_labs::prelude::*;
        let mut session = LabSession::new(
            "p",
            Quota { max_runs: runs, max_rows_per_run: 300, max_total_cost: f64::INFINITY },
            5,
        );
        let c = challenge("ecomm-revenue").unwrap();
        let vectors = c.all_choice_vectors();
        for v in vectors.iter().cycle().take(8) {
            let _ = session.attempt("ecomm-revenue", v, None);
        }
        prop_assert!(session.runs_used() <= runs);
        prop_assert_eq!(session.history().len() as u64, session.runs_used());
    }
}
