//! Integration tests for the regulatory barrier: compile-time refusal,
//! post-hoc verification, budget accounting, and audit custody — across
//! the privacy, core and labs crates together.

use toreador_core::prelude::*;
use toreador_data::generate::health_records;
use toreador_privacy::policy::{healthcare_default, DataClass, Policy, Requirement};

fn pseudonymised(rows: usize, seed: u64) -> toreador_data::table::Table {
    health_records(rows, seed)
        .without_column("patient_id")
        .unwrap()
}

#[test]
fn identifier_exposure_rejected_even_with_anonymisation() {
    // The dataset still carries patient_id: no amount of k-anonymity over
    // the quasi-identifiers launders a direct identifier.
    let bdaas = Bdaas::new();
    let data = health_records(300, 1);
    let spec = bdaas
        .parse(
            r#"
campaign leaky on health
policy healthcare
goal anonymization using privacy.kanon k=5 quasi=age,zip,sex
goal anonymization using privacy.ldiv l=2 quasi=age,zip,sex sensitive=diagnosis
"#,
        )
        .unwrap();
    let err = bdaas.compile(&spec, data.schema(), 300).unwrap_err();
    assert!(matches!(err, CoreError::NonCompliant(_)));
    assert!(err.to_string().contains("patient_id"), "{err}");
}

#[test]
fn insufficient_k_rejected_at_compile_time() {
    let bdaas = Bdaas::new();
    let data = pseudonymised(300, 2);
    let spec = bdaas
        .parse(
            r#"
campaign weak on health
policy healthcare
goal anonymization using privacy.kanon k=3 quasi=age,zip,sex
goal anonymization using privacy.ldiv l=2 quasi=age,zip,sex sensitive=diagnosis
"#,
        )
        .unwrap();
    let err = bdaas.compile(&spec, data.schema(), 300).unwrap_err();
    assert!(err.to_string().contains("k>=5"), "{err}");
}

#[test]
fn epsilon_above_policy_ceiling_rejected() {
    let bdaas = {
        let mut b = Bdaas::new();
        b.add_policy(
            "strict-dp",
            healthcare_default().require(Requirement::MaxDpEpsilon(0.5)),
        );
        b
    };
    let data = pseudonymised(300, 3);
    let spec = bdaas
        .parse(
            "campaign over on health\npolicy strict-dp\ngoal private_aggregation epsilon=2.0 column=cost\n",
        )
        .unwrap();
    let err = bdaas.compile(&spec, data.schema(), 300).unwrap_err();
    // Caught by the consistency checker (ε contradiction) before compliance.
    assert!(
        matches!(err, CoreError::Inconsistent(_) | CoreError::NonCompliant(_)),
        "{err}"
    );
}

#[test]
fn enforced_output_passes_independent_verification() {
    // The outcome's own verdict must agree with a from-scratch check using
    // the privacy crate directly — no self-grading.
    let bdaas = Bdaas::new();
    let data = pseudonymised(1_200, 4);
    let spec = bdaas
        .parse(
            r#"
campaign safe on health
policy healthcare
seed 4
goal anonymization using privacy.kanon k=5 quasi=age,zip,sex
goal anonymization using privacy.ldiv l=2 quasi=age,zip,sex sensitive=diagnosis
"#,
        )
        .unwrap();
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .unwrap();
    let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
    assert!(outcome.post_verdict.as_ref().unwrap().compliant);
    let qi = vec!["age".to_string(), "zip".to_string(), "sex".to_string()];
    assert!(toreador_privacy::kanon::is_k_anonymous(&outcome.output, &qi, 5).unwrap());
    assert!(toreador_privacy::ldiv::is_l_diverse(&outcome.output, &qi, "diagnosis", 2).unwrap());
}

#[test]
fn audit_log_reconstructs_the_run() {
    let bdaas = Bdaas::new();
    let data = pseudonymised(600, 5);
    let spec = bdaas
        .parse(
            r#"
campaign audited on health
policy healthcare
seed 5
goal private_aggregation epsilon=0.8 column=cost group_by=sex
"#,
        )
        .unwrap();
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .unwrap();
    let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
    let audit = &outcome.audit;
    // Access recorded, budget spend recorded, check recorded — in order.
    assert!(audit.len() >= 3);
    assert!(!audit.any_failures());
    assert!((audit.total_epsilon_spent() - 0.8).abs() < 1e-9);
    let events = audit.for_pipeline("audited");
    assert_eq!(
        events.len(),
        audit.len(),
        "all events belong to this pipeline"
    );
}

#[test]
fn custom_policy_composes_with_custom_columns() {
    // A telco-flavoured policy over the clickstream: user_id is the
    // identifier, country a quasi-identifier.
    let policy = Policy::new("telco")
        .classify("user_id", DataClass::Identifier)
        .classify("country", DataClass::QuasiIdentifier)
        .require(Requirement::NoDirectIdentifiers)
        .require(Requirement::MinKAnonymity(10));
    let mut bdaas = Bdaas::new();
    bdaas.add_policy("telco", policy);
    let data = toreador_data::generate::clickstream(1_000, 6);
    // Raw release: refused.
    let spec = bdaas
        .parse("campaign raw on clicks\npolicy telco\ngoal reporting using viz.report.table\n")
        .unwrap();
    assert!(bdaas.compile(&spec, data.schema(), 1_000).is_err());
    // Aggregate-only release (drops identifiers and QIs): allowed.
    let spec = bdaas
        .parse(
            "campaign agg on clicks\npolicy telco\ngoal aggregation group_by=category agg=sum:price:v\n",
        )
        .unwrap();
    let compiled = bdaas.compile(&spec, data.schema(), 1_000).unwrap();
    let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
    assert!(outcome.post_verdict.as_ref().unwrap().compliant);
}

#[test]
fn dp_noise_decreases_with_epsilon_on_the_same_release() {
    // Consequence check across the whole stack: the ε knob visibly moves
    // the released numbers' error.
    let truth: f64 = pseudonymised(2_000, 7)
        .column("cost")
        .unwrap()
        .sum_f64()
        .unwrap();
    let release = |eps: f64, seed: u64| -> f64 {
        let bdaas = Bdaas::new();
        let data = pseudonymised(2_000, 7);
        let spec = bdaas
            .parse(&format!(
                "campaign r on health\npolicy healthcare\nseed {seed}\ngoal private_aggregation epsilon={eps} column=cost clamp=10000\n"
            ))
            .unwrap();
        let compiled = bdaas.compile(&spec, data.schema(), 2_000).unwrap();
        let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
        outcome
            .output
            .value(0, "noisy_sum")
            .unwrap()
            .as_float()
            .unwrap()
    };
    let mut err_low = 0.0;
    let mut err_high = 0.0;
    for seed in 0..12 {
        err_low += (release(0.05, seed) - truth).abs();
        err_high += (release(5.0, seed) - truth).abs();
    }
    assert!(
        err_low > 5.0 * err_high,
        "ε=0.05 error {err_low} should dwarf ε=5 error {err_high}"
    );
}
