//! The chaos invariant, proven end to end: for every chaos schedule this
//! suite exercises — crash/delay/panic mixes, rate-based and targeted, on
//! a 16-thread pool — a run either completes with results identical to the
//! fault-free run, or fails cleanly with a classified error. It never
//! hangs past its deadline and never lets a panic escape `run_stage`. And
//! whatever happens, the flight-recorder journal stays well-formed: every
//! `TaskStarted` pairs with exactly one `TaskFinished`, including the
//! timed-out, panicked, and losing speculative attempts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use toreador_data::generate::{fraud_stream, random_table};
use toreador_data::table::Table;
use toreador_dataflow::error::{FlowError, Result as FlowResult};
use toreador_dataflow::fault::{ChaosPlan, FaultKind, TargetedFault};
use toreador_dataflow::metrics::MetricsCollector;
use toreador_dataflow::resilience::{
    classify, ErrorClass, ResilienceConfig, RetryPolicy, RunControl, SpeculationPolicy,
    TaskDeadline,
};
use toreador_dataflow::scheduler::{run_stage, run_stage_controlled, SchedulerConfig};
use toreador_dataflow::session::EngineConfig;
use toreador_dataflow::streaming::{
    run_continuous_with, ArrivalSource, BatchOutput, StateColumns, StreamConfig,
};
use toreador_dataflow::trace::{RunTrace, TraceEventKind};

const THREADS: usize = 16;
const TASKS: usize = 32;
const STAGE: usize = 2;

/// The deterministic workload every test runs: task i builds a small
/// random-but-seeded table, so the fault-free output is a fixed point.
fn tasks() -> Vec<impl Fn() -> FlowResult<Table> + Send + Sync> {
    (0..TASKS)
        .map(|i| move || -> FlowResult<Table> { Ok(random_table(10 + i, 3, i as u64)) })
        .collect()
}

fn fault_free_outputs() -> Vec<Table> {
    let metrics = MetricsCollector::new();
    run_stage(&SchedulerConfig::new(THREADS), &metrics, STAGE, tasks()).unwrap()
}

/// Every started span must finish exactly once — timed-out, panicked, and
/// losing speculative attempts included.
fn assert_journal_well_formed(trace: &RunTrace) {
    let mut started = Vec::new();
    let mut finished = Vec::new();
    for e in &trace.events {
        match e.kind {
            TraceEventKind::TaskStarted {
                stage,
                partition,
                attempt,
            } => started.push((stage, partition, attempt)),
            TraceEventKind::TaskFinished {
                stage,
                partition,
                attempt,
                ..
            } => finished.push((stage, partition, attempt)),
            _ => {}
        }
    }
    started.sort_unstable();
    finished.sort_unstable();
    assert_eq!(
        started, finished,
        "every TaskStarted must pair with exactly one TaskFinished"
    );
    for (i, e) in trace.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "journal sequence numbers must be dense");
    }
}

/// Run the workload under `resilience` and check the invariant: identical
/// to fault-free, or a clean classified error — and a well-formed journal
/// either way. Returns whether the run succeeded.
fn assert_chaos_invariant(resilience: ResilienceConfig, baseline: &[Table]) -> bool {
    let config = SchedulerConfig::new(THREADS).with_resilience(resilience);
    let metrics = MetricsCollector::new();
    let result = run_stage(&config, &metrics, STAGE, tasks());
    let trace = metrics.trace().snapshot();
    assert_journal_well_formed(&trace);
    match result {
        Ok(out) => {
            assert_eq!(out.len(), baseline.len());
            for (i, (got, want)) in out.iter().zip(baseline).enumerate() {
                assert_eq!(got, want, "chaos changed the output of task {i}");
            }
            true
        }
        Err(e) => {
            // Clean classified failure: one of the retryable task errors
            // escalated past its budget, or the stage was cancelled by a
            // permanent error. Anything else breaks the contract.
            assert!(
                matches!(
                    e,
                    FlowError::TaskFailed { .. }
                        | FlowError::TaskTimedOut { .. }
                        | FlowError::TaskPanicked { .. }
                        | FlowError::Cancelled(_)
                ),
                "unclassified chaos failure: {e}"
            );
            false
        }
    }
}

/// A named chaos mix, parameterised by seed.
type ChaosMix = (&'static str, Box<dyn Fn(u64) -> ChaosPlan>);

#[test]
fn rate_based_chaos_matrix_holds_the_invariant() {
    let baseline = fault_free_outputs();
    let mixes: Vec<ChaosMix> = vec![
        ("crashes", Box::new(|s| ChaosPlan::crashes(0.3, s))),
        ("panics", Box::new(|s| ChaosPlan::panics(0.2, s))),
        ("delays", Box::new(|s| ChaosPlan::delays(0.3, 400, s))),
        (
            "hostile",
            Box::new(|s| {
                ChaosPlan::crashes(0.2, s)
                    .with_panic_rate(0.1)
                    .with_delays(0.15, 300)
            }),
        ),
    ];
    let mut completions = 0usize;
    let mut runs = 0usize;
    for (name, mix) in &mixes {
        for seed in 0..6u64 {
            let resilience = ResilienceConfig::none()
                .with_retry(RetryPolicy::exponential(8, 100, 2_000).with_jitter(0.5, seed))
                .with_chaos(mix(seed));
            runs += 1;
            if assert_chaos_invariant(resilience, &baseline) {
                completions += 1;
            } else {
                println!("mix {name} seed {seed} failed cleanly");
            }
        }
    }
    // With 8 attempts against ≤30% fault rates nearly everything recovers;
    // demand that the matrix is not vacuous in either direction.
    assert!(
        completions >= runs / 2,
        "only {completions}/{runs} chaotic runs recovered"
    );
}

#[test]
fn targeted_faults_recover_exactly_once_each() {
    let baseline = fault_free_outputs();
    for kind in [
        FaultKind::Crash,
        FaultKind::Panic,
        FaultKind::Delay { micros: 500 },
    ] {
        let chaos = ChaosPlan::none()
            .with_targeted(TargetedFault {
                stage: STAGE,
                partition: 3,
                attempt: 0,
                kind,
            })
            .with_targeted(TargetedFault {
                stage: STAGE,
                partition: 7,
                attempt: 0,
                kind: FaultKind::Crash,
            });
        let config = SchedulerConfig::new(THREADS).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(3))
                .with_chaos(chaos),
        );
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, STAGE, tasks()).unwrap();
        assert_eq!(out, baseline, "targeted {kind:?} must be absorbed");
        let trace = metrics.trace().snapshot();
        assert_journal_well_formed(&trace);
        let injected = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::FaultInjected { .. }))
            .count();
        assert_eq!(injected, 2, "exactly the two scheduled faults fire");
        // Delay faults stall but do not fail; crash/panic force retries.
        let expected_retries = match kind {
            FaultKind::Delay { .. } => 1,
            _ => 2,
        };
        assert_eq!(trace.resilience_totals().retries, expected_retries);
    }
}

#[test]
fn certain_panic_fails_cleanly_and_never_escapes_run_stage() {
    // Every attempt panics and there are no retries: the stage must fail
    // with a classified TaskPanicked — the panic itself stays inside.
    let config = SchedulerConfig::new(THREADS)
        .with_resilience(ResilienceConfig::none().with_chaos(ChaosPlan::panics(1.0, 9)));
    let metrics = MetricsCollector::new();
    let err = run_stage(&config, &metrics, STAGE, tasks()).unwrap_err();
    assert!(
        matches!(err, FlowError::TaskPanicked { .. }),
        "expected a classified panic, got: {err}"
    );
    assert_eq!(classify(&err), ErrorClass::Transient);
    let trace = metrics.trace().snapshot();
    assert_journal_well_formed(&trace);
    assert!(trace.resilience_totals().panics > 0);
    // The doomed stage cancelled the run.
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::RunCancelled { .. })));
}

#[test]
fn deadlines_bound_hung_stages_instead_of_hanging_the_caller() {
    // Task 5 hangs far beyond the deadline on every attempt; with no retry
    // budget the stage must fail with TaskTimedOut, promptly.
    let config = SchedulerConfig::new(THREADS)
        .with_resilience(ResilienceConfig::none().with_deadline(TaskDeadline::from_millis(40)));
    let metrics = MetricsCollector::new();
    let hung: Vec<_> = (0..TASKS)
        .map(|i| {
            move || -> FlowResult<Table> {
                if i == 5 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                Ok(random_table(10 + i, 3, i as u64))
            }
        })
        .collect();
    let started = Instant::now();
    let err = run_stage(&config, &metrics, STAGE, hung).unwrap_err();
    // Generous bound: orders of magnitude under the 400 ms hang repeated
    // per attempt, proving the watchdog (not the body) ended the wait...
    // except the scoped pool must still join the hung thread once.
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "deadline failed to bound the stage: took {:?}",
        started.elapsed()
    );
    assert!(
        matches!(err, FlowError::TaskTimedOut { .. }),
        "expected a classified timeout, got: {err}"
    );
    assert_eq!(classify(&err), ErrorClass::Transient);
    let trace = metrics.trace().snapshot();
    assert_journal_well_formed(&trace);
    assert!(trace.resilience_totals().timeouts > 0);
}

#[test]
fn speculation_under_chaos_keeps_the_journal_paired() {
    // One deterministic straggler plus speculation: the backup attempt
    // races the straggler, someone loses, and the loser's span must still
    // close. A sprinkle of crash chaos keeps the retry path busy too.
    let config = SchedulerConfig::new(THREADS).with_resilience(
        ResilienceConfig::none()
            .with_retry(RetryPolicy::immediate(4))
            .with_speculation(SpeculationPolicy::new(3.0).with_min_samples(8))
            .with_chaos(ChaosPlan::crashes(0.1, 4).with_targeted(TargetedFault {
                stage: STAGE,
                partition: 11,
                attempt: 0,
                kind: FaultKind::Delay { micros: 60_000 },
            })),
    );
    let metrics = MetricsCollector::new();
    let out = run_stage(&config, &metrics, STAGE, tasks()).unwrap();
    assert_eq!(
        out,
        fault_free_outputs(),
        "speculation must not change results"
    );
    let trace = metrics.trace().snapshot();
    assert_journal_well_formed(&trace);
    let totals = trace.resilience_totals();
    assert!(
        totals.speculative_launched > 0,
        "the 60 ms straggler must trip speculation: {totals:?}"
    );
    // Wins are races that settled; there are never more than launches, and
    // each won race records its losers (one Lost per live losing attempt).
    assert!(totals.speculative_won <= totals.speculative_launched);
    let lost: usize = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::SpeculativeLost { .. }))
        .count();
    assert!(
        totals.speculative_won == 0 || lost > 0,
        "a settled race must record its losing attempt(s): {totals:?}"
    );
}

/// Current thread count of this process, from the kernel's view — the
/// ground truth for "the pool joined everything".
#[cfg(target_os = "linux")]
fn live_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn external_cancellation_mid_wave_pairs_journal_and_leaks_no_threads() {
    // A shuffle wave of slow tasks is cancelled from outside (the shape of
    // an operator interrupt or an engine tearing down sibling stages)
    // while half the wave is still unclaimed. Cooperative cancellation
    // must: fail the wave with the canceller's reason, keep every started
    // span paired in the journal, stop claiming the remaining tasks, and
    // join every worker thread.
    #[cfg(target_os = "linux")]
    let threads_before = live_threads();

    let control = Arc::new(RunControl::new());
    let metrics = MetricsCollector::new();
    let slow: Vec<_> = (0..TASKS)
        .map(|i| {
            move || -> FlowResult<Table> {
                std::thread::sleep(Duration::from_millis(40));
                Ok(random_table(10 + i, 3, i as u64))
            }
        })
        .collect();
    let canceller = {
        let control = Arc::clone(&control);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            control.cancel("operator interrupt");
        })
    };
    let started_at = Instant::now();
    let err = run_stage_controlled(
        &SchedulerConfig::new(THREADS),
        &metrics,
        &control,
        STAGE,
        slow,
    )
    .unwrap_err();
    canceller.join().unwrap();

    // Classified failure carrying the external reason, promptly — the
    // 16 unclaimed 40 ms task bodies never ran.
    assert!(matches!(err, FlowError::Cancelled(_)), "{err}");
    assert!(err.to_string().contains("operator interrupt"), "{err}");
    assert_eq!(classify(&err), ErrorClass::Permanent);
    assert!(
        started_at.elapsed() < Duration::from_secs(2),
        "cancellation failed to bound the wave: took {:?}",
        started_at.elapsed()
    );

    let trace = metrics.trace().snapshot();
    assert_journal_well_formed(&trace);
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::RunCancelled { .. })));
    let started = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TaskStarted { .. }))
        .count();
    assert!(
        started < TASKS,
        "cancellation must leave unclaimed tasks unstarted (started {started}/{TASKS})"
    );
    // A cancelled run refuses to start its next wave outright.
    let refused = run_stage_controlled(
        &SchedulerConfig::new(THREADS),
        &metrics,
        &control,
        STAGE + 1,
        tasks(),
    )
    .unwrap_err();
    assert!(matches!(refused, FlowError::Cancelled(_)), "{refused}");

    // The scoped pool joined its workers: no thread leaked past return.
    // Sibling tests on the parallel harness jitter the process count by a
    // few, so settle briefly and flag only a pool-sized residue — a leaked
    // pool pins all THREADS workers forever, harness noise is transient.
    #[cfg(target_os = "linux")]
    {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut after = live_threads();
        while after > threads_before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            after = live_threads();
        }
        assert!(
            after < threads_before + THREADS,
            "worker threads leaked: {threads_before} before, {after} after"
        );
    }
}

#[test]
fn cancellation_mid_morsel_wave_stops_cleanly_without_leaking_threads() {
    // The morsel-pipelined analogue of the wave-cancellation test above: a
    // fused filter->project chain decomposed into hundreds of 8-row morsel
    // units, every unit's attempt delayed 3ms by chaos so the wave is
    // guaranteed to be mid-flight when an external canceller fires.
    // Cooperative cancellation must fail the run with the canceller's
    // reason, keep task spans AND morsel events paired, leave most units
    // undispatched, and join every pooled worker.
    use std::collections::HashMap;
    use toreador_data::partition::PartitionedTable;
    use toreador_dataflow::expr::{col, lit};
    use toreador_dataflow::logical::Dataflow;
    use toreador_dataflow::physical::{execute, ExecConfig, ExecContext};

    #[cfg(target_os = "linux")]
    let threads_before = live_threads();

    let table = random_table(4_000, 3, 3);
    let flow = Dataflow::scan("t", table.schema().clone())
        .filter(col("c2").is_not_null())
        .unwrap()
        .project(vec![
            ("c0", col("c0")),
            ("c1", col("c1").mul(lit(2.0))),
            ("c2", col("c2")),
        ])
        .unwrap();
    let config = ExecConfig {
        scheduler: SchedulerConfig::new(8)
            .with_resilience(ResilienceConfig::none().with_chaos(ChaosPlan::delays(1.0, 3_000, 5))),
        partitions: 4,
        partial_aggregation: true,
        vectorized: true,
        fuse_narrow: true,
        pipelined: true,
        morsel_rows: 8,
        control: None,
        memory_budget_bytes: None,
        spill_dir: None,
    };
    let mut datasets = HashMap::new();
    datasets.insert("t".to_owned(), PartitionedTable::split(table, 4).unwrap());
    let metrics = MetricsCollector::new();
    let ctx = ExecContext::new(&datasets, config, &metrics);

    let started_at = Instant::now();
    let err = std::thread::scope(|s| {
        let control = ctx.control();
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            control.cancel("operator interrupt");
        });
        execute(&ctx, flow.plan()).unwrap_err()
    });

    assert!(matches!(err, FlowError::Cancelled(_)), "{err}");
    assert!(err.to_string().contains("operator interrupt"), "{err}");
    assert_eq!(classify(&err), ErrorClass::Permanent);
    assert!(
        started_at.elapsed() < Duration::from_secs(2),
        "cancellation failed to bound the morsel wave: took {:?}",
        started_at.elapsed()
    );

    let trace = metrics.trace().snapshot();
    assert_journal_well_formed(&trace);
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::RunCancelled { .. })));
    // Every dispatched morsel completed — in-flight morsels always pair,
    // even on a cancelled wave.
    let mut open: HashMap<(usize, usize, usize), i64> = HashMap::new();
    let mut dispatched = 0usize;
    for e in &trace.events {
        match e.kind {
            TraceEventKind::MorselDispatched {
                stage,
                partition,
                morsel,
                ..
            } => {
                dispatched += 1;
                *open.entry((stage, partition, morsel)).or_insert(0) += 1;
            }
            TraceEventKind::MorselCompleted {
                stage,
                partition,
                morsel,
            } => *open.entry((stage, partition, morsel)).or_insert(0) -= 1,
            _ => {}
        }
    }
    assert!(open.values().all(|b| *b == 0), "unpaired morsel events");
    // 4,000 rows at 8 rows/morsel is 500 units; the 15ms cancel hit the
    // wave mid-flight, so some units ran but the bulk of the 3ms-delayed
    // units were never claimed.
    assert!(
        dispatched > 0,
        "the cancel must land mid-wave, not before it started"
    );
    assert!(
        dispatched < 500,
        "cancellation must leave undispatched morsels (dispatched {dispatched}/500)"
    );

    #[cfg(target_os = "linux")]
    {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut after = live_threads();
        while after > threads_before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            after = live_threads();
        }
        assert!(
            after < threads_before + 8,
            "morsel workers leaked: {threads_before} before, {after} after"
        );
    }
}

/// The out-of-core kill/resume invariant: a budgeted, checkpointed run
/// killed at a wave boundary — while its shuffles are actively spilling
/// through a one-frame pool — resumes to the byte-identical unbudgeted
/// answer, and no page file survives the run. Spill files are published
/// with temp-write + fsync + rename + dir-fsync, so a death at any instant
/// leaves either a complete `.pages` run or a `.tmp` orphan; a fresh
/// manager sweeps both on construction. We prove the sweep by planting
/// both kinds of stale artifact (a dead process's leftovers) in the resume
/// run's spill directory before reviving it.
#[test]
fn kill_mid_spill_resumes_clean_with_no_orphaned_page_files() {
    use toreador_dataflow::checkpoint::CheckpointSpec;
    use toreador_dataflow::fault::KillMode;
    use toreador_dataflow::logical::{AggExpr, AggFunc};
    use toreador_dataflow::session::Engine;

    let root = std::env::temp_dir().join(format!("toreador-spill-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let table = random_table(3_000, 3, 9);
    let flow_of = |e: &Engine| {
        e.flow("t")
            .unwrap()
            .aggregate(
                &["c2"],
                vec![
                    AggExpr::new(AggFunc::Sum, "c1", "s"),
                    AggExpr::new(AggFunc::Count, "c0", "n"),
                ],
            )
            .unwrap()
            .sort(&["c2"], false)
            .unwrap()
    };
    // The oracle: unbudgeted, unkilled, in-memory.
    let mut calm = Engine::new(EngineConfig::default().with_threads(4).with_partitions(4));
    calm.register("t", table.clone()).unwrap();
    let baseline = calm.run(&flow_of(&calm)).unwrap();
    assert!(baseline.trace.spill_totals().is_zero());

    // Budget zero: every wide operator spills constantly. Die at the first
    // wave boundary, mid-campaign, after spill files have been written.
    let budgeted_config = || {
        EngineConfig::default()
            .with_threads(4)
            .with_partitions(4)
            .with_memory_budget(0)
            .with_checkpoint(CheckpointSpec::new(root.clone(), "unused"))
    };
    let mut doomed = Engine::new(
        budgeted_config().with_resilience(
            ResilienceConfig::none()
                .with_chaos(ChaosPlan::none().with_boundary_kill(0, KillMode::Halt)),
        ),
    );
    doomed.register("t", table.clone()).unwrap();
    let err = doomed
        .run_checkpointed(&flow_of(&doomed), "spilled")
        .unwrap_err();
    assert!(
        matches!(err, FlowError::KilledAtBoundary { wave: 0, .. }),
        "expected the boundary kill, got {err}"
    );

    // A real process death runs no destructors: plant the artifacts one
    // would leave — a published-but-unmerged run and an unpublished temp.
    let spill_dir = root.join("spilled").join("spill");
    std::fs::create_dir_all(&spill_dir).unwrap();
    std::fs::write(spill_dir.join("run-000042.pages"), b"stale half-merged run").unwrap();
    std::fs::write(spill_dir.join("run-000043.pages.tmp"), b"unpublished temp").unwrap();

    // A fresh budgeted engine (fresh-process stand-in) resumes the run.
    let mut revived = Engine::new(budgeted_config());
    revived.register("t", table).unwrap();
    let resumed = revived.resume(&flow_of(&revived), "spilled").unwrap();
    assert_eq!(
        resumed.table, baseline.table,
        "kill mid-spill + resume must reproduce the in-memory answer"
    );
    let totals = resumed.trace.spill_totals();
    assert!(
        totals.spills > 0,
        "the resumed waves must still spill under budget zero: {totals:?}"
    );
    assert!(totals.peak_pool_bytes <= 32 << 10, "{totals:?}");

    // No spill artifact outlives the run: the stale plants were swept at
    // manager construction and the whole scratch dir is gone at drop.
    assert!(
        !spill_dir.exists(),
        "spill scratch must not outlive the run"
    );
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let name = entry.file_name();
                let name = name.to_string_lossy().into_owned();
                assert!(
                    !name.ends_with(".pages") && !name.ends_with(".tmp"),
                    "orphaned spill artifact survived: {}",
                    path.display()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Run the continuous stream over the fraud event table under `resilience`
/// and return the canonical final state. The per-batch processor is a
/// passthrough (the state delta sums `amount` per `channel` straight off
/// the batch), so every injected fault exercises the stream loop's own
/// fault domain — dequeue retries, backoff, and the ack path.
fn stream_state_under(table: &Table, resilience: ResilienceConfig) -> FlowResult<String> {
    let config = StreamConfig::default()
        .with_engine(
            EngineConfig::default()
                .with_threads(2)
                .with_resilience(resilience),
        )
        .with_ts_column("ts")
        .with_allowed_lateness(500)
        .with_buffer(4)
        .with_pipeline_id("chaos-stream");
    let cols = StateColumns {
        key: "channel".to_owned(),
        count: None,
        sum: Some("amount".to_owned()),
    };
    let mut source = ArrivalSource::windows(table, "ts", 2_000)?;
    let run = run_continuous_with(&mut source, &config, Some(&cols), &mut |_, batch| {
        Ok(BatchOutput {
            table: batch.clone(),
            metrics: None,
            trace: None,
        })
    })?;
    Ok(run.canonical_state())
}

/// How many property cases to run. The vendored proptest does not read
/// `PROPTEST_CASES`, so the chaos suite honours it here — CI pins it.
fn proptest_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases()))]

    /// The invariant under arbitrary rate mixes and seeds: complete
    /// identically or fail cleanly, journal always well-formed.
    #[test]
    fn arbitrary_chaos_plans_hold_the_invariant(
        crash in 0.0f64..0.5,
        panic in 0.0f64..0.3,
        delay in 0.0f64..0.4,
        delay_us in 50u64..800,
        attempts in 1u32..10,
        seed in 0u64..1_000,
    ) {
        let baseline = fault_free_outputs();
        let chaos = ChaosPlan::crashes(crash, seed)
            .with_panic_rate(panic)
            .with_delays(delay, delay_us);
        let resilience = ResilienceConfig::none()
            .with_retry(RetryPolicy::exponential(attempts, 50, 1_000).with_jitter(0.5, seed))
            .with_chaos(chaos);
        // assert_chaos_invariant panics on any violation; either outcome
        // (recovered or clean failure) satisfies the property.
        let _ = assert_chaos_invariant(resilience, &baseline);
    }

    /// The same invariant for the continuous streaming loop: under an
    /// arbitrary seeded chaos mix the stream either completes with a final
    /// state identical to the fault-free run, or fails cleanly with a
    /// classified transient error. Never a hang, never a wrong state.
    #[test]
    fn streaming_chaos_completes_identically_or_fails_classified(
        crash in 0.0f64..0.4,
        panic in 0.0f64..0.2,
        delay in 0.0f64..0.3,
        attempts in 1u32..6,
        seed in 0u64..500,
    ) {
        let (table, _) = fraud_stream(800, 21, 0.05, 200);
        let baseline = stream_state_under(&table, ResilienceConfig::none()).unwrap();
        let chaos = ChaosPlan::crashes(crash, seed)
            .with_panic_rate(panic)
            .with_delays(delay, 100);
        let resilience = ResilienceConfig::none()
            .with_retry(RetryPolicy::exponential(attempts, 50, 500).with_jitter(0.5, seed))
            .with_chaos(chaos);
        match stream_state_under(&table, resilience) {
            Ok(state) => prop_assert_eq!(state, baseline, "chaos changed the stream state"),
            Err(e) => {
                prop_assert!(
                    matches!(classify(&e), ErrorClass::Transient),
                    "unclassified stream chaos failure: {}", e
                );
                prop_assert!(
                    matches!(e, FlowError::TaskFailed { .. } | FlowError::TaskPanicked { .. }),
                    "stream chaos failure has the wrong shape: {}", e
                );
            }
        }
    }
}
