//! Shared fixtures for the cross-crate integration tests.

use toreador_core::compile::{Bdaas, CampaignOutcome};
use toreador_data::table::Table;

/// Parse, compile and run a DSL campaign against `data` in one step.
pub fn run_campaign(dsl: &str, data: Table) -> Result<CampaignOutcome, String> {
    let bdaas = Bdaas::new();
    let spec = bdaas.parse(dsl).map_err(|e| e.to_string())?;
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .map_err(|e| e.to_string())?;
    bdaas
        .run(&compiled, data, &Default::default())
        .map_err(|e| e.to_string())
}

/// Sum an Int/Float column as f64 (test convenience).
pub fn column_sum(table: &Table, name: &str) -> f64 {
    table.column(name).unwrap().sum_f64().unwrap()
}
