//! E10 smoke — the claims behind `benches/e10_vectorized.rs`, sized for
//! CI. The benchmark measures speed; this suite pins the invariants the
//! speed claim rests on: all three engine modes produce identical output
//! on the bench's exact narrow chain, the flight recorder journals batch
//! counts only for the vectorized modes, and the kernel-level path keeps
//! exactly the rows the row oracle keeps.

use toreador_data::generate::clickstream;
use toreador_data::table::Table;
use toreador_dataflow::expr::{col, lit, Expr, Func};
use toreador_dataflow::session::{Engine, EngineConfig, RunResult};
use toreador_dataflow::vexpr::BoundExpr;

const ROWS: usize = 20_000;

fn predicate() -> Expr {
    col("price")
        .gt(lit(50.0))
        .and(col("action").not_eq(lit("view")))
}

fn projections() -> Vec<(&'static str, Expr)> {
    vec![
        ("revenue", col("price").mul(lit(0.85))),
        ("account", col("user_id").add(col("product_id"))),
        ("tag_len", Expr::call(Func::Length, vec![col("category")])),
    ]
}

fn run_mode(data: &Table, vectorized: bool, fused: bool) -> RunResult {
    let mut engine = Engine::new(
        EngineConfig::default()
            .with_threads(2)
            .with_partitions(3)
            .with_vectorized(vectorized)
            .with_fuse_narrow(fused),
    );
    engine.register("clicks", data.clone()).unwrap();
    let flow = engine
        .flow("clicks")
        .unwrap()
        .filter(predicate())
        .unwrap()
        .project(projections())
        .unwrap();
    engine.run(&flow).unwrap()
}

/// Value-wise equality: `Column`'s derived `PartialEq` also compares dead
/// validity slots, whose placeholder contents legitimately differ between
/// the row and batch engines.
fn assert_tables_equal(a: &Table, b: &Table) {
    assert_eq!(a.schema(), b.schema());
    assert_eq!(a.num_rows(), b.num_rows());
    for c in 0..a.num_columns() {
        let (ca, cb) = (a.column_at(c).unwrap(), b.column_at(c).unwrap());
        for i in 0..a.num_rows() {
            assert_eq!(
                format!("{:?}", ca.value(i)),
                format!("{:?}", cb.value(i)),
                "column {c} row {i}"
            );
        }
    }
}

#[test]
fn three_engine_modes_agree_on_the_bench_chain() {
    let data = clickstream(ROWS, 42);
    let row = run_mode(&data, false, false);
    let vectorized = run_mode(&data, true, false);
    let fused = run_mode(&data, true, true);
    assert!(row.table.num_rows() > 0, "predicate keeps some rows");
    assert_tables_equal(&row.table, &vectorized.table);
    assert_tables_equal(&row.table, &fused.table);
}

#[test]
fn batch_counts_journal_only_under_vectorized_modes() {
    let data = clickstream(ROWS, 42);
    let row = run_mode(&data, false, false);
    let vectorized = run_mode(&data, true, false);
    let fused = run_mode(&data, true, true);

    // Row mode journals the operators with zero batches — that keeps an
    // engine-mode ablation diffable operator-by-operator in labs::compare.
    let row_batches = row.trace.operator_batches();
    assert!(!row_batches.is_empty());
    assert!(row_batches.values().all(|&(n, f)| n == 0 && !f));
    let unfused = vectorized.trace.operator_batches();
    assert!(unfused.values().all(|&(n, f)| n > 0 && !f));
    let fused_batches = fused.trace.operator_batches();
    assert!(fused_batches.values().any(|&(_, f)| f), "chain fuses");
}

#[test]
fn kernel_path_keeps_exactly_the_oracle_rows() {
    let data = clickstream(ROWS, 7);
    let pred = predicate();
    let mask = pred.eval_mask_checked(&data).unwrap();
    let oracle = data.filter(&mask).unwrap();

    let bound = BoundExpr::bind(&pred, data.schema()).unwrap();
    let sel = bound.eval_selection(&data).unwrap();
    let kept = data.take_sel(&sel).unwrap();
    assert_tables_equal(&oracle, &kept);

    for (_, e) in projections() {
        let row_col = e.eval_table(&oracle).unwrap();
        let vec_col = BoundExpr::bind(&e, kept.schema())
            .unwrap()
            .eval_column(&kept)
            .unwrap();
        for i in 0..kept.num_rows() {
            assert_eq!(
                format!("{:?}", row_col.value(i)),
                format!("{:?}", vec_col.value(i))
            );
        }
    }
}
