//! End-to-end durability: the full Labs loop (attempt -> persist -> exit ->
//! reopen -> compare) through the WAL-backed campaign store, including a
//! simulated crash that tears the log mid-record and a compaction pass
//! under rotation pressure.

use std::fs;
use std::path::{Path, PathBuf};

use toreador_labs::prelude::*;
use toreador_store::StoreConfig;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("toreador-e2e-store-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn attempt(session: &mut LabSession, choices: &[&str], rows: usize) -> u64 {
    let choices: ChoiceVector = choices.iter().map(|s| s.to_string()).collect();
    session
        .attempt("ecomm-revenue", &choices, Some(rows))
        .unwrap()
        .run_id
}

#[test]
fn labs_loop_survives_process_exit_with_traces_and_scores() {
    let dir = tmp_dir("loop");
    {
        let store = SessionStore::open(&dir).unwrap();
        let mut s = LabSession::open(store, "ada", Quota::free_tier(), 11).unwrap();
        attempt(&mut s, &["full", "batch"], 600);
        attempt(&mut s, &["sample", "batch"], 600);
        // Dropped without any explicit save — the WAL already has it all.
    }
    {
        let store = SessionStore::open(&dir).unwrap();
        assert_eq!(store.trainees().count(), 1);
        assert!(store.score("ada", 1).unwrap() > 0.0);
        assert!(store.score("ada", 2).unwrap() > 0.0);
        // The records came back with their flight-recorder traces...
        let r1 = store.run("ada", 1).unwrap();
        assert_eq!(r1.schema_version, RUN_RECORD_SCHEMA_VERSION);
        assert!(!r1.traces.is_empty(), "traces persisted");
        assert!(!r1.operator_elapsed_us().is_empty());
        // ...so a fresh process can still diff runs operator by operator.
        let diff = RunComparison::diff(r1, store.run("ada", 2).unwrap()).unwrap();
        assert_eq!(diff.choice_diffs.len(), 1);
        assert!(!diff.operator_deltas.is_empty(), "per-operator deltas");
        // Dropped here: the directory lock admits one open store at a time.
    }
    // And the session itself resumes: quota metering continues from disk.
    let mut s = LabSession::open(
        SessionStore::open(&dir).unwrap(),
        "ada",
        Quota::free_tier(),
        99,
    )
    .unwrap();
    assert_eq!(s.runs_used(), 2);
    assert_eq!(attempt(&mut s, &["full", "stream"], 400), 3);
    fs::remove_dir_all(&dir).unwrap();
}

/// Tear bytes off the final WAL record, as a crash mid-write would, and
/// check the store comes back with exactly the durable prefix.
#[test]
fn torn_tail_after_crash_loses_at_most_the_in_flight_record() {
    let dir = tmp_dir("crash");
    {
        let store = SessionStore::open(&dir).unwrap();
        let mut s = LabSession::open(store, "bob", Quota::free_tier(), 5).unwrap();
        attempt(&mut s, &["full", "batch"], 500);
        attempt(&mut s, &["sample", "batch"], 500);
    }
    // Tear into the last record of the last segment.
    let seg = last_segment(&dir);
    let len = fs::metadata(&seg).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    let store = SessionStore::open(&dir).unwrap();
    assert!(store.recovered_torn_bytes() > 0, "the tear was noticed");
    // The torn record was the trailing meta update; both runs, both scores
    // and the session itself are intact.
    assert!(store.run("bob", 1).is_some());
    assert!(store.run("bob", 2).is_some());
    assert!(store.score("bob", 2).is_some());
    let mut s = LabSession::open(store, "bob", Quota::free_tier(), 5).unwrap();
    assert_eq!(s.runs_used(), 2);
    assert_eq!(attempt(&mut s, &["full", "batch"], 300), 3);
    fs::remove_dir_all(&dir).unwrap();
}

/// Small segments + aggressive snapshots: rotation and compaction happen
/// under a real Labs workload and nothing is lost across reopen.
#[test]
fn compaction_under_rotation_pressure_keeps_every_run() {
    let dir = tmp_dir("compact");
    let cfg = StoreConfig {
        segment_bytes: 32 * 1024,
        snapshot_every: 4,
    };
    {
        let store = SessionStore::open_with(&dir, cfg).unwrap();
        let mut s = LabSession::open(store, "eve", Quota::unlimited(), 3).unwrap();
        for i in 0..6 {
            let choice = if i % 2 == 0 { "full" } else { "sample" };
            attempt(&mut s, &[choice, "batch"], 400);
        }
        let stats = s.store().unwrap().stats();
        assert!(stats.snapshot_lsn > 0, "compaction ran: {stats:?}");
    }
    let store = SessionStore::open_with(&dir, cfg).unwrap();
    let state = store.trainee("eve").unwrap();
    assert_eq!(state.runs.len(), 6);
    for (id, run) in &state.runs {
        assert_eq!(*id, run.run_id);
        assert!(!run.traces.is_empty(), "run {id} kept its traces");
        assert!(store.score("eve", *id).is_some());
    }
    fs::remove_dir_all(&dir).unwrap();
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}
