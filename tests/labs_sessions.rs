//! Integration tests for the Labs training loop: challenges across all
//! verticals, run comparison fidelity, scoring discrimination, and quota
//! behaviour under sustained use.

use toreador_labs::prelude::*;

#[test]
fn every_builtin_challenge_runs_with_its_reference_choices() {
    for c in challenges() {
        let mut session = LabSession::new("ref", Quota::unlimited(), 5);
        let record = session
            .attempt(c.id, &c.reference_vector(), Some(700))
            .unwrap_or_else(|e| panic!("challenge {} reference run failed: {e}", c.id));
        assert!(!record.plan_services.is_empty(), "{}", c.id);
        assert!(record.indicators.contains_key("runtime_ms"), "{}", c.id);
    }
}

#[test]
fn reference_choices_score_at_least_as_well_as_any_alternative() {
    // The sanctioned success story should win (or tie) within each
    // challenge's design space — the scoring signal trainees learn from.
    for c in challenges() {
        let mut session = LabSession::new("sweep", Quota::unlimited(), 11);
        let mut scores = Vec::new();
        for vector in c.all_choice_vectors() {
            let run_id = match session.attempt(c.id, &vector, Some(600)) {
                Ok(record) => record.run_id,
                Err(_) => continue, // some off-reference vectors may be refused (fine)
            };
            let score = session.score(run_id).unwrap();
            scores.push((vector.clone(), score.total));
        }
        let reference = c.reference_vector();
        let ref_score = scores
            .iter()
            .find(|(v, _)| *v == reference)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| panic!("{}: reference vector did not run", c.id));
        let best = scores
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            ref_score >= best - 1e-9,
            "{}: reference scores {ref_score}, best alternative {best} ({scores:?})",
            c.id
        );
    }
}

#[test]
fn comparison_pinpoints_single_changed_choice() {
    let mut session = LabSession::new("t", Quota::unlimited(), 9);
    let c = challenge("energy-anomaly").unwrap();
    session
        .attempt(c.id, &vec!["global".into(), "balanced".into()], Some(2_000))
        .unwrap();
    session
        .attempt(
            c.id,
            &vec!["rolling".into(), "balanced".into()],
            Some(2_000),
        )
        .unwrap();
    let diff = session.compare(1, 2).unwrap();
    assert_eq!(diff.choice_diffs.len(), 1);
    assert_eq!(diff.choice_diffs[0].0, 0, "first choice point changed");
    // The plan actually swapped detectors.
    assert!(diff.services_only_a.iter().any(|s| s.contains("zscore")));
    assert!(diff.services_only_b.iter().any(|s| s.contains("rolling")));
}

#[test]
fn detector_choice_has_observable_consequences() {
    // On the diurnal telemetry the planted spikes inflate the global
    // standard deviation, blinding the global z-score detector; the rolling
    // detector compares against the recent window and finds far more of
    // them — the lesson of the challenge.
    let mut session = LabSession::new("t", Quota::unlimited(), 13);
    let c = challenge("energy-anomaly").unwrap();
    let a = session
        .attempt(c.id, &vec!["global".into(), "paranoid".into()], Some(4_000))
        .unwrap();
    let global_report = a
        .reports
        .iter()
        .find(|(s, _)| s.contains("anomaly"))
        .map(|(_, t)| t.clone())
        .unwrap();
    let b = session
        .attempt(
            c.id,
            &vec!["rolling".into(), "paranoid".into()],
            Some(4_000),
        )
        .unwrap();
    let rolling_report = b
        .reports
        .iter()
        .find(|(s, _)| s.contains("anomaly"))
        .map(|(_, t)| t.clone())
        .unwrap();
    let count = |report: &str| -> usize {
        report
            .split_whitespace()
            .next()
            .and_then(|w| w.parse().ok())
            .unwrap_or(0)
    };
    let g = count(&global_report);
    let r = count(&rolling_report);
    assert!(
        r > g,
        "rolling detector ({r}) should catch spikes the variance-blinded global one ({g}) misses"
    );
}

#[test]
fn privacy_strength_choice_moves_risk_and_coverage() {
    let mut session = LabSession::new("t", Quota::unlimited(), 17);
    let c = challenge("health-compliance").unwrap();
    session
        .attempt(
            c.id,
            &vec!["anonymise".into(), "standard".into()],
            Some(1_500),
        )
        .unwrap();
    session
        .attempt(
            c.id,
            &vec!["anonymise".into(), "strict".into()],
            Some(1_500),
        )
        .unwrap();
    let standard = session.run(1).unwrap();
    let strict = session.run(2).unwrap();
    let risk = |r: &RunRecord| r.indicators["privacy_risk"];
    assert!(
        risk(strict) < risk(standard),
        "k=25 risk {} must be below k=5 risk {}",
        risk(strict),
        risk(standard)
    );
    // Both remain compliant.
    assert_eq!(standard.compliant, Some(true));
    assert_eq!(strict.compliant, Some(true));
}

#[test]
fn consequence_matrix_exposes_tradeoffs_per_challenge() {
    // For the compliance challenge, no single design dominates on all
    // data-derived indicators — the "no free lunch" the Labs teach.
    let mut session = LabSession::new("t", Quota::unlimited(), 19);
    let c = challenge("health-compliance").unwrap();
    for vector in c.all_choice_vectors() {
        let _ = session.attempt(c.id, &vector, Some(1_000));
    }
    let matrix = session.consequences(c.id).unwrap();
    assert!(matrix.rows.len() >= 3);
    let front = matrix.pareto_front();
    assert!(
        front.len() >= 2,
        "at least two non-dominated designs expected, front: {front:?}\n{}",
        matrix.render()
    );
}

#[test]
fn free_tier_gates_a_long_session() {
    let mut session = LabSession::new(
        "busy",
        Quota {
            max_runs: 4,
            max_rows_per_run: 400,
            max_total_cost: f64::INFINITY,
        },
        3,
    );
    let c = challenge("ecomm-revenue").unwrap();
    let vectors = c.all_choice_vectors();
    let mut refused = 0;
    for (i, v) in vectors.iter().cycle().take(6).enumerate() {
        match session.attempt(c.id, v, None) {
            Ok(r) => assert_eq!(r.rows_in, 400, "row cap on attempt {i}"),
            Err(LabsError::QuotaExceeded(_)) => refused += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(session.runs_used(), 4);
    assert_eq!(refused, 2);
}

#[test]
fn scores_discriminate_good_from_bad_designs() {
    // Across the whole library: the mean score of reference designs beats
    // the mean score of maximally-off-reference designs.
    let mut ref_scores = Vec::new();
    let mut off_scores = Vec::new();
    for c in challenges() {
        let mut session = LabSession::new("x", Quota::unlimited(), 23);
        if let Ok(r) = session.attempt(c.id, &c.reference_vector(), Some(500)) {
            let id = r.run_id;
            ref_scores.push(session.score(id).unwrap().total);
        }
        // The "anti-reference": flip every choice to a non-reference option.
        let anti: ChoiceVector = c
            .choice_points
            .iter()
            .zip(&c.reference_choices)
            .map(|(p, r)| {
                p.options
                    .iter()
                    .find(|o| o.id != *r)
                    .map(|o| o.id.to_string())
                    .unwrap_or_else(|| r.to_string())
            })
            .collect();
        if let Ok(r) = session.attempt(c.id, &anti, Some(500)) {
            let id = r.run_id;
            off_scores.push(session.score(id).unwrap().total);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&ref_scores) > mean(&off_scores),
        "reference mean {} vs anti-reference mean {}",
        mean(&ref_scores),
        mean(&off_scores)
    );
}
