//! End-to-end integration: DSL text → compiled pipeline → verified results,
//! across all three verticals, cross-checked against hand-computed ground
//! truth on the same generated data.

use toreador_core::prelude::*;
use toreador_data::generate::{clickstream, health_records, telemetry};
use toreador_data::value::Value;
use toreador_tests::{column_sum, run_campaign};

#[test]
fn revenue_campaign_matches_hand_computed_totals() {
    let data = clickstream(3_000, 99);
    // Ground truth: sum of purchase prices, computed directly.
    let mut expected = 0.0;
    let mut purchases = 0i64;
    for row in data.iter_rows() {
        if row[6] == Value::Str("purchase".into()) {
            expected += row[7].as_float().unwrap();
            purchases += 1;
        }
    }
    let outcome = run_campaign(
        r#"
campaign revenue on clicks
seed 1
goal filtering predicate="action == 'purchase'"
goal aggregation group_by=country agg=sum:price:revenue,count:event_id:n
"#,
        data,
    )
    .unwrap();
    let total_revenue = column_sum(&outcome.output, "revenue");
    let total_n: f64 = column_sum(&outcome.output, "n");
    assert!(
        (total_revenue - expected).abs() < 1e-6,
        "{total_revenue} vs {expected}"
    );
    assert_eq!(total_n as i64, purchases);
}

#[test]
fn streaming_and_batch_aggregations_agree_on_totals() {
    let data = telemetry(4_000, 20, 5);
    let batch = run_campaign(
        "campaign b on t\nseed 2\ngoal aggregation group_by=region agg=sum:kwh:total\n",
        data.clone(),
    )
    .unwrap();
    let stream = run_campaign(
        "campaign s on t\nmode stream window=7200000\nseed 2\ngoal aggregation group_by=region agg=sum:kwh:total\n",
        data,
    )
    .unwrap();
    // Stream emits per-window rows; grouping them back by region must give
    // the batch totals.
    let mut stream_totals = std::collections::HashMap::new();
    for row in stream.output.iter_rows() {
        *stream_totals.entry(row[0].to_string()).or_insert(0.0) += row[1].as_float().unwrap();
    }
    for row in batch.output.iter_rows() {
        let region = row[0].to_string();
        let total = row[1].as_float().unwrap();
        let streamed = stream_totals.get(&region).copied().unwrap_or(0.0);
        assert!(
            (total - streamed).abs() < 1e-6,
            "region {region}: batch {total} vs stream {streamed}"
        );
    }
    assert!(stream.indicator(Indicator::BatchLatencyMs).is_some());
    assert!(batch.indicator(Indicator::BatchLatencyMs).is_none());
}

#[test]
fn full_health_pipeline_prep_model_privacy() {
    // One campaign exercising four areas: preparation (impute), analytics
    // (classification), privacy (k-anon) and visualization (report).
    let data = health_records(1_500, 21)
        .without_column("patient_id")
        .unwrap();
    let outcome = run_campaign(
        r#"
campaign full on health
seed 21
goal classification using analytics.tree target=sex features=age,visits,cost expect accuracy >= 0.3
goal anonymization using privacy.kanon k=5 quasi=age,zip,sex
goal reporting using viz.report.summary
"#,
        data,
    )
    .unwrap();
    assert!(outcome.indicator(Indicator::Accuracy).unwrap() >= 0.3);
    assert!(toreador_privacy::kanon::is_k_anonymous(
        &outcome.output,
        &["age".into(), "zip".into(), "sex".into()],
        5
    )
    .unwrap());
    assert_eq!(
        outcome.reports.len(),
        3,
        "model + anonymisation + summary reports"
    );
    assert!(outcome.all_objectives_met());
}

#[test]
fn join_campaign_enriches_with_auxiliary_data() {
    use std::collections::HashMap;
    let bdaas = Bdaas::new();
    let scen = toreador_labs::scenario::scenario("ecommerce-clicks").unwrap();
    let data = scen.generate(1_000, 3);
    let aux: HashMap<String, toreador_data::table::Table> = scen.auxiliary();
    let spec = bdaas
        .parse(
            r#"
campaign vat on clicks
seed 3
goal filtering predicate="action == 'purchase'"
goal joining with=vat_rates keys=country
"#,
        )
        .unwrap();
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .unwrap();
    let outcome = bdaas.run(&compiled, data, &aux).unwrap();
    assert!(outcome.output.schema().contains("vat_rate"));
    assert!(outcome.output.num_rows() > 0);
    // Every purchase joined (all countries are in the VAT table).
    for row in outcome.output.iter_rows() {
        assert!(!row.last().unwrap().is_null());
    }
}

#[test]
fn csv_ingest_to_campaign_round_trip() {
    // Data arriving as CSV text flows through the same machinery.
    let original = clickstream(400, 55);
    let text = toreador_data::csv::write_csv(&original);
    let parsed = toreador_data::csv::read_csv_with_schema(&text, original.schema()).unwrap();
    assert_eq!(parsed.num_rows(), original.num_rows());
    let outcome = run_campaign(
        "campaign c on clicks\nseed 4\ngoal aggregation group_by=action agg=count:event_id:n\n",
        parsed,
    )
    .unwrap();
    let total: f64 = column_sum(&outcome.output, "n");
    assert_eq!(total as usize, 400);
}

#[test]
fn campaign_specs_round_trip_through_json() {
    // Run records and specs are the platform's exchange artefacts; they
    // must survive serialisation.
    let bdaas = Bdaas::new();
    let spec = bdaas
        .parse(
            "campaign x on clicks\nprefer quality\nmode stream window=1000\ngoal filtering predicate=\"price > 1\"\nobjective cost <= 10\n",
        )
        .unwrap();
    let json = serde_json::to_string(&spec).unwrap();
    let back: CampaignSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}

#[test]
fn fault_tolerant_campaign_completes_with_retries() {
    let data = clickstream(2_000, 77);
    let outcome = run_campaign(
        r#"
campaign resilient on clicks
retries 5
seed 77
goal aggregation group_by=category agg=sum:price:value
"#,
        data,
    )
    .unwrap();
    // The deployment injected a background fault rate; totals still exact.
    let total = column_sum(&outcome.output, "value");
    let expected: f64 = clickstream(2_000, 77)
        .column("price")
        .unwrap()
        .sum_f64()
        .unwrap();
    assert!((total - expected).abs() < 1e-6);
    let retries: u64 = outcome.engine_metrics.iter().map(|m| m.task_retries).sum();
    let _ = retries; // retries may be 0 at 2% rate on few tasks; just verify it ran.
}
