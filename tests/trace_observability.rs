//! Flight-recorder observability: integration tests for the trace journal.
//!
//! The journal is the single source of truth for run metrics, so these
//! tests pin down its guarantees end to end: spans pair up, retry events
//! agree with the metrics, operator row counts agree with results, the
//! journal survives heavy concurrency without losing or duplicating
//! events, and the derived metrics are byte-identical to the legacy
//! collector's.

use std::collections::HashSet;
use std::time::Duration;

use toreador_data::generate::clickstream;
use toreador_data::table::Table;
use toreador_dataflow::error::Result as FlowResult;
use toreador_dataflow::fault::FaultPlan;
use toreador_dataflow::metrics::MetricsCollector;
use toreador_dataflow::prelude::*;
use toreador_dataflow::scheduler::{run_stage, SchedulerConfig};
use toreador_dataflow::trace::TraceEventKind;

/// The e-commerce revenue pipeline the Labs' first challenge runs.
fn ecommerce_run(faults: FaultPlan) -> RunResult {
    let mut engine = Engine::new(EngineConfig::default().with_threads(4).with_faults(faults));
    engine.register("clicks", clickstream(2_000, 11)).unwrap();
    let flow = engine
        .flow("clicks")
        .unwrap()
        .filter(col("action").eq(lit("purchase")))
        .unwrap()
        .aggregate(
            &["country"],
            vec![AggExpr::new(AggFunc::Sum, "price", "revenue")],
        )
        .unwrap()
        .sort(&["revenue"], true)
        .unwrap();
    engine.run(&flow).unwrap()
}

/// A (stage, partition, attempt) task-span key.
type SpanKey = (usize, usize, u32);

/// Collect (stage, partition, attempt) keys of started / finished spans.
fn span_keys(trace: &RunTrace) -> (Vec<SpanKey>, Vec<SpanKey>) {
    let mut started = Vec::new();
    let mut finished = Vec::new();
    for e in &trace.events {
        match e.kind {
            TraceEventKind::TaskStarted {
                stage,
                partition,
                attempt,
            } => started.push((stage, partition, attempt)),
            TraceEventKind::TaskFinished {
                stage,
                partition,
                attempt,
                ..
            } => finished.push((stage, partition, attempt)),
            _ => {}
        }
    }
    (started, finished)
}

#[test]
fn every_started_task_has_a_matching_end_event() {
    let r = ecommerce_run(FaultPlan::none());
    let (mut started, mut finished) = span_keys(&r.trace);
    assert!(!started.is_empty(), "the pipeline must run tasks");
    started.sort_unstable();
    finished.sort_unstable();
    assert_eq!(started, finished, "starts and finishes must pair up");
    // And the matcher agrees: one span per start.
    assert_eq!(r.trace.task_spans().len(), started.len());
}

#[test]
fn retry_events_equal_metrics_task_retries() {
    let r = ecommerce_run(FaultPlan::with_rate(0.4, 13, 15));
    let retries = r
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TaskRetried { .. }))
        .count() as u64;
    assert!(retries > 0, "a 40% fault rate must force retries");
    assert_eq!(retries, r.metrics.task_retries);
    // Every retry follows an injected fault.
    let faults = r
        .trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::FaultInjected { .. }))
        .count() as u64;
    assert!(faults >= retries);
}

#[test]
fn final_operator_rows_match_result_rows() {
    let r = ecommerce_run(FaultPlan::none());
    // The outermost operator (sort) records last; its output is the result.
    let last = r.metrics.nodes.last().expect("operators recorded");
    assert!(last.operator.starts_with("Sort"), "{:?}", last.operator);
    assert_eq!(last.rows_out, r.table.num_rows() as u64);
    // The journal tells the same story as the metrics, node for node.
    let from_trace: Vec<_> = r
        .trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::OperatorFinished {
                operator, rows_out, ..
            } => Some((operator.clone(), *rows_out)),
            _ => None,
        })
        .collect();
    let from_metrics: Vec<_> = r
        .metrics
        .nodes
        .iter()
        .map(|n| (n.operator.clone(), n.rows_out))
        .collect();
    assert_eq!(from_trace, from_metrics);
}

#[test]
fn shuffle_waves_are_recorded_with_real_byte_counts() {
    let r = ecommerce_run(FaultPlan::none());
    let wave_bytes: u64 = r
        .trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::ShuffleWave { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert!(wave_bytes > 0, "aggregate + sort must shuffle");
    assert_eq!(wave_bytes, r.metrics.total_shuffle_bytes());
}

#[test]
fn summary_reports_critical_path_and_skew_for_the_pipeline() {
    let r = ecommerce_run(FaultPlan::none());
    let summary = r.trace.summarize();
    assert!(!summary.stages.is_empty());
    assert_eq!(
        summary.critical_path_us,
        summary
            .stages
            .iter()
            .map(|s| s.slowest_task_us)
            .sum::<u64>()
    );
    for stage in summary.stages.iter().filter(|s| s.tasks > 0) {
        assert!(stage.skew_ratio >= 1.0, "skew is slowest/mean");
    }
    let rendered = summary.render();
    assert!(rendered.contains("critical path"));
    assert!(rendered.contains("skew"));
}

#[test]
fn stressed_journal_loses_nothing_and_duplicates_nothing() {
    // 16 workers, 64 tasks, 50% injected fault rate: heavy concurrent
    // recording from every worker thread.
    let config = SchedulerConfig::new(16).with_faults(FaultPlan::with_rate(0.5, 21, 30));
    let metrics = MetricsCollector::new();
    let tasks: Vec<_> = (0..64)
        .map(|i| {
            move || -> FlowResult<Table> {
                Ok(toreador_data::generate::random_table(20 + i, 2, i as u64))
            }
        })
        .collect();
    let out = run_stage(&config, &metrics, 5, tasks).unwrap();
    assert_eq!(out.len(), 64);

    let trace = metrics.trace().snapshot();
    // Sequence numbers are dense: nothing was lost.
    for (i, e) in trace.events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "dense sequence numbers");
    }
    // No (stage, partition, attempt) span starts or finishes twice.
    let (started, finished) = span_keys(&trace);
    let unique_started: HashSet<_> = started.iter().collect();
    let unique_finished: HashSet<_> = finished.iter().collect();
    assert_eq!(unique_started.len(), started.len(), "duplicate start span");
    assert_eq!(
        unique_finished.len(),
        finished.len(),
        "duplicate finish span"
    );
    // Every start has exactly one finish.
    let mut s = started.clone();
    let mut f = finished.clone();
    s.sort_unstable();
    f.sort_unstable();
    assert_eq!(s, f);
    // At 50% fault rate some attempts must have failed and retried.
    let m = metrics.finish_legacy(Duration::ZERO, 0, 0);
    assert!(m.task_retries > 0);
    assert_eq!(started.len() as u64, m.tasks_run);
}

#[test]
fn derived_metrics_are_byte_identical_to_legacy() {
    let config = SchedulerConfig::new(8).with_faults(FaultPlan::with_rate(0.3, 9, 20));
    let metrics = MetricsCollector::new();
    metrics.record_node("Scan clicks", 0, 512, Duration::from_micros(81), 0);
    let tasks: Vec<_> = (0..24)
        .map(|i| {
            move || -> FlowResult<Table> { Ok(toreador_data::generate::random_table(5, 1, i)) }
        })
        .collect();
    run_stage(&config, &metrics, 1, tasks).unwrap();
    metrics.record_node("Aggregate", 1, 16, Duration::from_micros(233), 4_096);

    let elapsed = Duration::from_micros(9_999);
    let derived = metrics.finish(elapsed, 16, 4);
    let legacy = metrics.finish_legacy(elapsed, 16, 4);
    assert_eq!(derived, legacy);
    assert_eq!(
        serde_json::to_string(&derived).unwrap(),
        serde_json::to_string(&legacy).unwrap(),
        "journal-derived metrics must serialise byte-identically"
    );
}

#[test]
fn labs_provenance_carries_traces_and_compares_operators() {
    use toreador_core::compile::Bdaas;
    use toreador_labs::catalog::challenges;
    use toreador_labs::compare::RunComparison;
    use toreador_labs::run::execute_attempt;

    let bdaas = Bdaas::new();
    let all = challenges();
    let c = &all[0];
    let vectors = c.all_choice_vectors();
    assert!(vectors.len() >= 2, "need two distinct choice vectors");
    let a = execute_attempt(&bdaas, c, &vectors[0], 1, Some(600), 7).unwrap();
    let b = execute_attempt(&bdaas, c, &vectors[1], 2, Some(600), 7).unwrap();
    assert!(!a.traces.is_empty());
    assert!(!b.traces.is_empty());
    let d = RunComparison::diff(&a, &b).unwrap();
    assert!(
        !d.operator_deltas.is_empty(),
        "journal-backed records must yield operator deltas"
    );
    // Serialised provenance survives a round trip with traces attached.
    let json = serde_json::to_string(&a).unwrap();
    let back: toreador_labs::run::RunRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(a, back);
}
