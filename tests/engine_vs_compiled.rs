//! The compiled-pipeline-vs-hand-written-baseline comparison behind
//! experiment E5: the model-driven layer must produce the same answers as
//! directly programming the dataflow engine (and the engine the same
//! answers as naive single-threaded Rust).

use toreador_core::prelude::*;
use toreador_data::generate::clickstream;
use toreador_data::value::Value;
use toreador_dataflow::prelude::*;

/// Hand-written against the engine: the expert data engineer's version.
fn hand_written(data: toreador_data::table::Table) -> toreador_data::table::Table {
    let mut engine = Engine::new(EngineConfig::default().with_threads(2));
    engine.register("clicks", data).unwrap();
    let flow = engine
        .flow("clicks")
        .unwrap()
        .filter(col("action").eq(lit("purchase")))
        .unwrap()
        .aggregate(
            &["category"],
            vec![
                AggExpr::new(AggFunc::Sum, "price", "revenue"),
                AggExpr::new(AggFunc::Count, "event_id", "n"),
            ],
        )
        .unwrap()
        .sort(&["category"], false)
        .unwrap();
    engine.run(&flow).unwrap().table
}

/// Naive single-threaded Rust: the unimpeachable reference.
fn naive(data: &toreador_data::table::Table) -> Vec<(String, f64, i64)> {
    let mut by_cat: std::collections::BTreeMap<String, (f64, i64)> = Default::default();
    for row in data.iter_rows() {
        if row[6] == Value::Str("purchase".into()) {
            let e = by_cat.entry(row[5].to_string()).or_insert((0.0, 0));
            e.0 += row[7].as_float().unwrap();
            e.1 += 1;
        }
    }
    by_cat.into_iter().map(|(k, (s, n))| (k, s, n)).collect()
}

#[test]
fn compiled_equals_handwritten_equals_naive() {
    let data = clickstream(4_000, 31);

    let reference = naive(&data);
    let engine_out = hand_written(data.clone());

    let bdaas = Bdaas::new();
    let spec = bdaas
        .parse(
            r#"
campaign revenue on clicks
seed 31
goal filtering predicate="action == 'purchase'"
goal aggregation group_by=category agg=sum:price:revenue,count:event_id:n
"#,
        )
        .unwrap();
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .unwrap();
    let compiled_out = bdaas
        .run(&compiled, data, &Default::default())
        .unwrap()
        .output
        .sort_by(&["category"], false)
        .unwrap();

    assert_eq!(engine_out.num_rows(), reference.len());
    assert_eq!(compiled_out.num_rows(), reference.len());
    for (i, (cat, revenue, n)) in reference.iter().enumerate() {
        for out in [&engine_out, &compiled_out] {
            assert_eq!(out.value(i, "category").unwrap().to_string(), *cat);
            assert!((out.value(i, "revenue").unwrap().as_float().unwrap() - revenue).abs() < 1e-6);
            assert_eq!(out.value(i, "n").unwrap().as_int().unwrap(), *n);
        }
    }
}

#[test]
fn optimizer_ablation_changes_plan_not_results() {
    let data = clickstream(2_000, 32);
    let build = |optimize: bool| {
        let mut engine = Engine::new(EngineConfig::default().with_threads(2).with_optimizer(
            if optimize {
                OptimizerConfig::default()
            } else {
                OptimizerConfig::disabled()
            },
        ));
        engine.register("clicks", data.clone()).unwrap();
        let flow = engine
            .flow("clicks")
            .unwrap()
            .project(vec![
                ("cat", col("category")),
                ("p", col("price")),
                ("act", col("action")),
            ])
            .unwrap()
            .filter(col("act").eq(lit("cart")))
            .unwrap()
            .filter(col("p").gt(lit(20.0)))
            .unwrap()
            .sort(&["p"], true)
            .unwrap();
        engine.run(&flow).unwrap()
    };
    let opt = build(true);
    let raw = build(false);
    assert_eq!(opt.table, raw.table);
    assert_ne!(
        opt.executed_plan, raw.executed_plan,
        "optimiser rewrote the plan"
    );
}

#[test]
fn partial_aggregation_ablation_reduces_shuffle_traffic() {
    // The E5 ablation claim: map-side combine shrinks what crosses the
    // shuffle for low-cardinality groupings.
    let data = clickstream(6_000, 33);
    let run = |partial: bool| {
        let mut engine = Engine::new(
            EngineConfig::default()
                .with_threads(2)
                .with_partial_aggregation(partial),
        );
        engine.register("clicks", data.clone()).unwrap();
        let flow = engine
            .flow("clicks")
            .unwrap()
            .aggregate(
                &["country"],
                vec![AggExpr::new(AggFunc::Sum, "price", "revenue")],
            )
            .unwrap();
        engine.run(&flow).unwrap()
    };
    let with = run(true);
    let without = run(false);
    // Same groups, same sums modulo float summation order.
    let a = with.table.sort_by(&["country"], false).unwrap();
    let b = without.table.sort_by(&["country"], false).unwrap();
    assert_eq!(a.num_rows(), b.num_rows());
    for (ra, rb) in a.iter_rows().zip(b.iter_rows()) {
        assert_eq!(ra[0], rb[0]);
        let (x, y) = (ra[1].as_float().unwrap(), rb[1].as_float().unwrap());
        assert!((x - y).abs() < 1e-6 * x.abs().max(1.0), "{x} vs {y}");
    }
    assert!(
        with.metrics.total_shuffle_bytes() * 10 < without.metrics.total_shuffle_bytes(),
        "partial {} bytes vs raw {} bytes",
        with.metrics.total_shuffle_bytes(),
        without.metrics.total_shuffle_bytes()
    );
}

#[test]
fn thread_scaling_improves_wall_clock_on_cpu_heavy_flow() {
    // Soft smoke test (debug build, laptop timers): more threads must not
    // make the same large job dramatically slower.
    let data = clickstream(20_000, 34);
    let run = |threads: usize| {
        let mut engine = Engine::new(
            EngineConfig::default()
                .with_threads(threads)
                .with_partitions(8),
        );
        engine.register("clicks", data.clone()).unwrap();
        let flow = engine
            .flow("clicks")
            .unwrap()
            .filter(col("price").is_not_null())
            .unwrap()
            .aggregate(
                &["product_id"],
                vec![
                    AggExpr::new(AggFunc::Mean, "price", "avg"),
                    AggExpr::new(AggFunc::Count, "event_id", "n"),
                ],
            )
            .unwrap();
        let started = std::time::Instant::now();
        let r = engine.run(&flow).unwrap();
        (r.table, started.elapsed())
    };
    let (t1, _e1) = run(1);
    let (t4, _e4) = run(4);
    assert_eq!(
        t1.sort_by(&["product_id"], false).unwrap(),
        t4.sort_by(&["product_id"], false).unwrap()
    );
}
