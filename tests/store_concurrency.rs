//! Concurrent access to one WAL-backed session store through the serving
//! hub: many threads, one store, every acknowledged attempt durable.
//!
//! The serving contract under test (DESIGN.md §12): an attempt is only
//! acknowledged after its run, score and updated meta are WAL-committed,
//! so a crash at any later instant loses nothing that was acknowledged —
//! even when a dozen threads were hammering the store at the time.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use toreador_labs::prelude::*;
use toreador_serve::prelude::*;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("toreador-store-conc-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open_req(trainee: &str, max_runs: u64) -> OpenSessionRequest {
    OpenSessionRequest {
        trainee: trainee.to_owned(),
        quota: Some(Quota {
            max_runs,
            max_rows_per_run: 300,
            max_total_cost: 1e9,
        }),
        seed: Some(13),
    }
}

fn attempt_req(trainee: &str, design: &[&str]) -> AttemptRequest {
    AttemptRequest {
        trainee: trainee.to_owned(),
        challenge: "ecomm-revenue".to_owned(),
        choices: design.iter().map(|s| s.to_string()).collect(),
        rows: Some(150),
    }
}

/// Drive `threads` worker threads against one hub: each opens (or
/// resumes) its tenant's session, then fires `attempts` attempts.
/// Returns every acknowledged (trainee, run_id, score).
fn hammer(
    hub: &Arc<SessionHub>,
    tenants: &[&str],
    threads: usize,
    attempts: usize,
) -> Vec<(String, u64, f64)> {
    let acked = Arc::new(Mutex::new(Vec::new()));
    let designs = [["full", "batch"], ["sample", "batch"], ["full", "stream"]];
    let mut workers = Vec::new();
    for t in 0..threads {
        let hub = Arc::clone(hub);
        let acked = Arc::clone(&acked);
        let trainee = tenants[t % tenants.len()].to_owned();
        workers.push(std::thread::spawn(move || {
            // Concurrent opens of the same tenant must be idempotent.
            hub.open_session(&open_req(&trainee, 1_000)).unwrap();
            for a in 0..attempts {
                let req = attempt_req(&trainee, &designs[(t + a) % designs.len()]);
                match hub.attempt(&req) {
                    Ok(reply) => {
                        assert!(reply.score > 0.0, "scored attempt");
                        acked
                            .lock()
                            .unwrap()
                            .push((trainee.clone(), reply.run_id, reply.score));
                    }
                    // Per-tenant in-flight caps may push back under this
                    // much concurrency; that is the only acceptable loss.
                    Err(e) => assert_eq!(e.class, ErrorClass::Busy, "unexpected: {e:?}"),
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    Arc::try_unwrap(acked).unwrap().into_inner().unwrap()
}

/// Every acknowledged attempt from `acked` is present in `store` with its
/// exact score, run ids are unique per tenant, and the store holds
/// nothing beyond what was acknowledged.
fn assert_store_matches(store: &SessionStore, acked: &[(String, u64, f64)]) {
    let mut per_tenant: BTreeMap<&str, Vec<(u64, f64)>> = BTreeMap::new();
    for (trainee, run_id, score) in acked {
        per_tenant
            .entry(trainee.as_str())
            .or_default()
            .push((*run_id, *score));
    }
    for (trainee, mut runs) in per_tenant {
        runs.sort_unstable_by_key(|(id, _)| *id);
        let ids: Vec<u64> = runs.iter().map(|(id, _)| *id).collect();
        let mut unique = ids.clone();
        unique.dedup();
        assert_eq!(ids, unique, "{trainee}: no two acks share a run id");
        let state = store
            .trainee(trainee)
            .unwrap_or_else(|| panic!("{trainee}: acknowledged attempts but no persisted state"));
        assert_eq!(
            state.runs.keys().copied().collect::<Vec<u64>>(),
            ids,
            "{trainee}: the store holds exactly the acknowledged runs"
        );
        for (id, score) in runs {
            assert_eq!(
                state.scores.get(&id).copied(),
                Some(score),
                "{trainee}/{id}: score committed with the run"
            );
        }
    }
}

/// Twelve threads, four tenants, one store: nothing acknowledged is lost,
/// nothing unacknowledged appears, and the quota meters reconcile.
#[test]
fn many_threads_one_store_loses_no_acknowledged_attempt() {
    let dir = tmp_dir("hammer");
    let tenants = ["ada", "bob", "cyd", "dee"];
    let hub = Arc::new(
        SessionHub::open(
            &dir,
            HubConfig {
                tenant_inflight: 4,
                threads_per_attempt: 1,
                ..HubConfig::default()
            },
        )
        .unwrap(),
    );
    let acked = hammer(&hub, &tenants, 12, 3);
    assert!(
        acked.len() >= tenants.len(),
        "the hammer made progress: {} acks",
        acked.len()
    );
    assert_eq!(hub.counters().completed as usize, acked.len());
    drop(hub); // releases the directory lock; state is WAL-only

    let store = SessionStore::open(&dir).unwrap();
    assert_store_matches(&store, &acked);
    // The persisted meters agree with what was committed: resuming each
    // tenant sees exactly its acknowledged runs.
    for trainee in tenants {
        let acks = acked.iter().filter(|(t, _, _)| t == trainee).count();
        assert_eq!(store.trainee(trainee).unwrap().runs.len(), acks);
        assert_eq!(store.next_run_id(trainee), acks as u64 + 1);
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Crash mid-load: the hub is dropped with no checkpoint and the WAL tail
/// is torn mid-record, as a power cut during a write would. Recovery is
/// deterministic — two independent reopens agree — and keeps every
/// acknowledged run and score (the tear can only clip the trailing,
/// unacknowledged bytes).
#[test]
fn torn_tail_under_concurrent_load_recovers_deterministically() {
    let dir = tmp_dir("crash");
    let tenants = ["eve", "fox"];
    let hub = Arc::new(
        SessionHub::open(
            &dir,
            HubConfig {
                tenant_inflight: 4,
                threads_per_attempt: 1,
                ..HubConfig::default()
            },
        )
        .unwrap(),
    );
    let acked = hammer(&hub, &tenants, 6, 2);
    assert!(acked.len() >= 4, "enough committed records to tear behind");
    drop(hub); // simulated crash: no checkpoint, no compaction

    // Tear into the last WAL record. Each acknowledged attempt commits
    // run -> score -> meta in order, so a 3-byte tear clips at most the
    // final meta update — never an acknowledged run or score.
    let seg = last_segment(&dir);
    let len = fs::metadata(&seg).unwrap().len();
    fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let snapshot = |store: &SessionStore| -> BTreeMap<String, Vec<(u64, f64)>> {
        store
            .trainees()
            .map(|(name, state)| {
                (
                    name.clone(),
                    state
                        .runs
                        .keys()
                        .map(|id| (*id, state.scores[id]))
                        .collect(),
                )
            })
            .collect()
    };

    let first = {
        let store = SessionStore::open(&dir).unwrap();
        assert!(store.recovered_torn_bytes() > 0, "the tear was noticed");
        assert_store_matches(&store, &acked);
        snapshot(&store)
    }; // dropped: releases the lock for the second opener
    let store = SessionStore::open(&dir).unwrap();
    assert_eq!(snapshot(&store), first, "recovery is deterministic");

    // The recovered store is live, not just readable: serving resumes on
    // top of it and run ids continue past the recovered history.
    drop(store);
    let hub = SessionHub::open(&dir, HubConfig::default()).unwrap();
    let eve_acks = acked.iter().filter(|(t, _, _)| t == "eve").count() as u64;
    hub.open_session(&open_req("eve", 1_000)).unwrap();
    let reply = hub
        .attempt(&attempt_req("eve", &["full", "batch"]))
        .unwrap();
    assert_eq!(reply.run_id, eve_acks + 1);
    fs::remove_dir_all(&dir).unwrap();
}

fn last_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}
