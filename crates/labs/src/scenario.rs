//! Vertical scenarios: "simplified versions of real-life vertical
//! scenarios and success stories" (§3 of the paper).
//!
//! Each scenario owns a deterministic data generator (the documented
//! substitution for the original customer datasets), a business framing,
//! and any auxiliary lookup tables its challenges join against.

use std::collections::HashMap;

use toreador_data::schema::{Field, Schema};
use toreador_data::table::Table;
use toreador_data::value::{DataType, Value};

use crate::error::{LabsError, Result};

/// The industry vertical a scenario belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vertical {
    Ecommerce,
    Energy,
    Healthcare,
    Fraud,
}

impl Vertical {
    pub fn name(self) -> &'static str {
        match self {
            Vertical::Ecommerce => "e-commerce",
            Vertical::Energy => "smart-energy",
            Vertical::Healthcare => "healthcare",
            Vertical::Fraud => "fraud-detection",
        }
    }
}

/// Out-of-order rate planted in the fraud event stream.
pub const FRAUD_LATE_RATE: f64 = 0.05;
/// No late rows inside the first `FRAUD_GUARD_ROWS` rows, so a stream run
/// whose first micro-batch fits in the guard sees every planted late row
/// behind an established watermark.
pub const FRAUD_GUARD_ROWS: usize = 256;

/// A vertical scenario: framing + data.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub id: &'static str,
    pub vertical: Vertical,
    pub title: &'static str,
    /// The business framing shown to trainees.
    pub brief: &'static str,
    /// Default dataset size for challenge runs.
    pub default_rows: usize,
}

impl Scenario {
    /// Generate the scenario's primary dataset.
    pub fn generate(&self, rows: usize, seed: u64) -> Table {
        match self.vertical {
            Vertical::Ecommerce => toreador_data::generate::clickstream(rows, seed),
            Vertical::Energy => toreador_data::generate::telemetry(rows, rows / 50 + 1, seed),
            Vertical::Healthcare => {
                // The direct identifier stays out of the lab copy: the Labs
                // simulate a data custodian who releases pseudonymised data
                // (the quasi-identifier risk remains, which is the point of
                // the compliance challenges).
                toreador_data::generate::health_records(rows, seed)
                    .without_column("patient_id")
                    .expect("patient_id exists in generated records")
            }
            Vertical::Fraud => {
                toreador_data::generate::fraud_stream(rows, seed, FRAUD_LATE_RATE, FRAUD_GUARD_ROWS)
                    .0
            }
        }
    }

    /// The primary dataset's schema.
    pub fn schema(&self) -> Schema {
        match self.vertical {
            Vertical::Ecommerce => toreador_data::generate::clickstream_schema(),
            Vertical::Energy => toreador_data::generate::telemetry_schema(),
            Vertical::Healthcare => toreador_data::generate::health_schema()
                .project(&["age", "zip", "sex", "diagnosis", "visits", "cost"])
                .expect("pseudonymised projection"),
            Vertical::Fraud => toreador_data::generate::fraud_schema(),
        }
    }

    /// Auxiliary lookup tables for joins (keyed by the name challenges use).
    pub fn auxiliary(&self) -> HashMap<String, Table> {
        let mut aux = HashMap::new();
        if self.vertical == Vertical::Ecommerce {
            let schema = Schema::new(vec![
                Field::required("country", DataType::Str),
                Field::required("vat_rate", DataType::Float),
            ])
            .expect("static schema");
            let rows = [
                ("IT", 0.22),
                ("ES", 0.21),
                ("FR", 0.20),
                ("DE", 0.19),
                ("UK", 0.20),
                ("NL", 0.21),
                ("PL", 0.23),
                ("SE", 0.25),
            ];
            let table = Table::from_rows(
                schema,
                rows.iter()
                    .map(|(c, v)| vec![Value::Str(c.to_string()), Value::Float(*v)]),
            )
            .expect("static rows");
            aux.insert("vat_rates".to_owned(), table);
        }
        aux
    }
}

/// The built-in scenario library.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            id: "ecommerce-clicks",
            vertical: Vertical::Ecommerce,
            title: "European marketplace clickstream",
            brief: "A mid-size marketplace wants to understand where revenue \
                    comes from and whether shoppers follow the view → cart → \
                    purchase funnel. Sessions arrive as a clickstream with \
                    product, category, price and country.",
            default_rows: 5_000,
        },
        Scenario {
            id: "energy-telemetry",
            vertical: Vertical::Energy,
            title: "Smart-meter telemetry",
            brief: "A utility collects 15-minute smart-meter readings. It \
                    wants consumption forecasts per region and early warning \
                    on anomalous loads, while readings keep streaming in.",
            default_rows: 8_000,
        },
        Scenario {
            id: "healthcare-records",
            vertical: Vertical::Healthcare,
            title: "Regional patient registry",
            brief: "A hospital consortium analyses visit costs across its \
                    registry. Records carry age, residence and diagnoses: \
                    any release must satisfy the data-protection policy.",
            default_rows: 3_000,
        },
        Scenario {
            id: "fraud-stream",
            vertical: Vertical::Fraud,
            title: "Card-fraud event stream",
            brief: "A payments processor scores card transactions as they \
                    arrive. Events stream in arrival order but a slice of \
                    them carry event times a minute behind (upstream \
                    buffering), so per-account running totals must handle \
                    out-of-order data and survive process restarts without \
                    double-counting.",
            default_rows: 6_000,
        },
    ]
}

/// Look up a scenario by id.
pub fn scenario(id: &str) -> Result<Scenario> {
    scenarios()
        .into_iter()
        .find(|s| s.id == id)
        .ok_or_else(|| LabsError::Unknown(format!("scenario {id:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_verticals_exist() {
        let all = scenarios();
        assert_eq!(all.len(), 4);
        let verticals: Vec<Vertical> = all.iter().map(|s| s.vertical).collect();
        assert!(verticals.contains(&Vertical::Ecommerce));
        assert!(verticals.contains(&Vertical::Energy));
        assert!(verticals.contains(&Vertical::Healthcare));
        assert!(verticals.contains(&Vertical::Fraud));
    }

    #[test]
    fn lookup_by_id() {
        assert!(scenario("energy-telemetry").is_ok());
        assert!(scenario("nope").is_err());
    }

    #[test]
    fn generated_data_matches_declared_schema() {
        for s in scenarios() {
            let t = s.generate(200, 1);
            assert_eq!(t.schema(), &s.schema(), "scenario {}", s.id);
            assert_eq!(t.num_rows(), 200);
            // Deterministic.
            assert_eq!(t, s.generate(200, 1));
        }
    }

    #[test]
    fn ecommerce_has_vat_auxiliary() {
        let s = scenario("ecommerce-clicks").unwrap();
        let aux = s.auxiliary();
        assert!(aux.contains_key("vat_rates"));
        assert_eq!(aux["vat_rates"].num_rows(), 8);
        assert!(scenario("healthcare-records")
            .unwrap()
            .auxiliary()
            .is_empty());
    }

    #[test]
    fn briefs_are_business_facing() {
        for s in scenarios() {
            assert!(s.brief.len() > 80, "{} brief too thin", s.id);
            assert!(!s.brief.contains("Dataflow"), "briefs avoid engine jargon");
        }
    }
}
