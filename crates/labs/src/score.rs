//! Assessment: scoring a trainee's run.
//!
//! The Labs are a training environment, so runs are graded. The score
//! rewards exactly what the paper says trainees should learn: meeting the
//! declared business objectives, staying compliant, spending resources
//! proportionately, and heeding the consistency warnings the platform
//! raised. A bonus rewards landing on (or near) the sanctioned
//! success-story design.

use toreador_core::declarative::Indicator;

use crate::challenge::Challenge;
use crate::run::RunRecord;

/// Score weights (out of 100 total).
const W_OBJECTIVES: f64 = 45.0;
const W_COMPLIANCE: f64 = 20.0;
const W_EFFICIENCY: f64 = 20.0;
const W_REFERENCE: f64 = 15.0;
const WARNING_PENALTY: f64 = 2.0;

/// A graded run.
#[derive(Debug, Clone, PartialEq)]
pub struct Score {
    pub total: f64,
    /// (component, awarded, maximum).
    pub breakdown: Vec<(String, f64, f64)>,
}

impl Score {
    pub fn component(&self, name: &str) -> Option<f64> {
        self.breakdown
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, _)| *v)
    }
}

/// Grade a run against its challenge.
pub fn assess(challenge: &Challenge, record: &RunRecord) -> Score {
    let mut breakdown = Vec::new();

    // 1. Objectives: fraction satisfied.
    let objectives = record.objective_fraction() * W_OBJECTIVES;
    breakdown.push(("objectives".to_owned(), objectives, W_OBJECTIVES));

    // 2. Compliance: full marks when compliant or when no policy applies;
    //    zero on a failed verdict.
    let compliance = match record.compliant {
        Some(true) | None => W_COMPLIANCE,
        Some(false) => 0.0,
    };
    breakdown.push(("compliance".to_owned(), compliance, W_COMPLIANCE));

    // 3. Efficiency: abstract cost, squashed so that spending ~100 units on
    //    a lab-scale dataset halves the component. Data-derived, so the
    //    grade is reproducible run-to-run.
    let cost = record.indicator(Indicator::Cost).unwrap_or(0.0).max(0.0);
    let efficiency = W_EFFICIENCY * (1.0 / (1.0 + cost / 100.0));
    breakdown.push(("efficiency".to_owned(), efficiency, W_EFFICIENCY));

    // 4. Reference alignment: how many choices match the success story.
    let reference = challenge.reference_vector();
    let matches = record
        .choices
        .iter()
        .zip(&reference)
        .filter(|(a, b)| a == b)
        .count();
    let alignment = if reference.is_empty() {
        W_REFERENCE
    } else {
        W_REFERENCE * matches as f64 / reference.len() as f64
    };
    breakdown.push(("reference-alignment".to_owned(), alignment, W_REFERENCE));

    // 5. Warning penalty.
    let penalty = (record.warnings.len() as f64 * WARNING_PENALTY).min(10.0);
    breakdown.push(("warning-penalty".to_owned(), -penalty, 0.0));

    let total = (objectives + compliance + efficiency + alignment - penalty).clamp(0.0, 100.0);
    Score { total, breakdown }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::challenge;
    use std::collections::BTreeMap;

    fn record(
        choices: &[&str],
        objectives_met: &[bool],
        compliant: Option<bool>,
        cost: f64,
        warnings: usize,
    ) -> RunRecord {
        RunRecord {
            schema_version: crate::run::RUN_RECORD_SCHEMA_VERSION,
            run_id: 1,
            challenge_id: "health-compliance".to_owned(),
            choices: choices.iter().map(|s| s.to_string()).collect(),
            plan_services: vec![],
            platform: "lab-free-tier".to_owned(),
            indicators: BTreeMap::from([("cost".to_owned(), cost)]),
            objectives: objectives_met
                .iter()
                .enumerate()
                .map(|(i, &m)| (format!("o{i}"), Some(m)))
                .collect(),
            compliant,
            warnings: (0..warnings).map(|i| format!("w{i}")).collect(),
            rows_in: 100,
            rows_out: 100,
            shuffle_bytes: 0,
            reports: vec![],
            traces: vec![],
        }
    }

    #[test]
    fn perfect_run_scores_near_the_top() {
        let c = challenge("health-compliance").unwrap();
        let r = record(
            &["anonymise", "standard"],
            &[true, true],
            Some(true),
            10.0,
            0,
        );
        let s = assess(&c, &r);
        assert!(s.total > 90.0, "total {}", s.total);
        assert_eq!(s.component("objectives"), Some(45.0));
        assert_eq!(s.component("compliance"), Some(20.0));
        assert_eq!(s.component("reference-alignment"), Some(15.0));
    }

    #[test]
    fn failed_compliance_costs_twenty_points() {
        let c = challenge("health-compliance").unwrap();
        let ok = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], Some(true), 10.0, 0),
        );
        let bad = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], Some(false), 10.0, 0),
        );
        assert!((ok.total - bad.total - 20.0).abs() < 1e-9);
    }

    #[test]
    fn missed_objectives_reduce_score_proportionally() {
        let c = challenge("health-compliance").unwrap();
        let all = assess(
            &c,
            &record(&["anonymise", "standard"], &[true, true], None, 10.0, 0),
        );
        let half = assess(
            &c,
            &record(&["anonymise", "standard"], &[true, false], None, 10.0, 0),
        );
        let none = assess(
            &c,
            &record(&["anonymise", "standard"], &[false, false], None, 10.0, 0),
        );
        assert!(all.total > half.total && half.total > none.total);
        assert!((all.component("objectives").unwrap() - 45.0).abs() < 1e-9);
        assert!((half.component("objectives").unwrap() - 22.5).abs() < 1e-9);
    }

    #[test]
    fn expensive_runs_lose_efficiency_points() {
        let c = challenge("health-compliance").unwrap();
        let cheap = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], None, 1.0, 0),
        );
        let dear = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], None, 1_000.0, 0),
        );
        assert!(cheap.component("efficiency").unwrap() > dear.component("efficiency").unwrap());
    }

    #[test]
    fn off_reference_choices_lose_alignment_only() {
        let c = challenge("health-compliance").unwrap();
        let on = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], None, 10.0, 0),
        );
        let off = assess(&c, &record(&["dp", "strict"], &[true], None, 10.0, 0));
        assert_eq!(off.component("reference-alignment"), Some(0.0));
        assert!(on.total > off.total);
        // But objectives/compliance/efficiency are unchanged.
        assert_eq!(on.component("objectives"), off.component("objectives"));
    }

    #[test]
    fn warnings_penalise_but_saturate() {
        let c = challenge("health-compliance").unwrap();
        let clean = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], None, 10.0, 0),
        );
        let warned = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], None, 10.0, 2),
        );
        let noisy = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], None, 10.0, 50),
        );
        assert!((clean.total - warned.total - 4.0).abs() < 1e-9);
        assert!(
            clean.total - noisy.total <= 10.0 + 1e-9,
            "penalty caps at 10"
        );
    }

    #[test]
    fn score_is_bounded() {
        let c = challenge("health-compliance").unwrap();
        let worst = assess(
            &c,
            &record(&["dp", "strict"], &[false, false], Some(false), 1e9, 50),
        );
        assert!(worst.total >= 0.0);
        let best = assess(
            &c,
            &record(&["anonymise", "standard"], &[true], Some(true), 0.0, 0),
        );
        assert!(best.total <= 100.0);
    }
}
