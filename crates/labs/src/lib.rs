//! # toreador-labs
//!
//! TOREADOR Labs: a "Big Data Analytics-as-a-Service environment for
//! testing simplified but real-life Big Data analytics vertical scenarios"
//! (the paper's abstract). Trainees take on challenges whose requirements
//! are phrased from a business perspective, pick among explicit alternative
//! options, run the resulting campaigns, and investigate the consequences
//! of their choices by comparing runs — the "trial and error" loop.
//!
//! * [`scenario`] — the three vertical scenarios (e-commerce clickstream,
//!   smart-energy telemetry, healthcare registry) with deterministic data;
//! * [`challenge`] — challenges as base campaigns + open [`challenge::ChoicePoint`]s;
//! * [`catalog`] — the built-in challenge library (two per vertical);
//! * [`run`] — execution with full provenance ([`run::RunRecord`]);
//! * [`compare`] — run diffs, consequence matrices, Pareto fronts;
//! * [`score`] — grading against objectives, compliance, efficiency and the
//!   sanctioned reference design;
//! * [`session`] — free-tier quota enforcement and run history.
//!
//! ## Example
//!
//! ```
//! use toreador_labs::prelude::*;
//!
//! let mut session = LabSession::new("trainee", Quota::free_tier(), 42);
//! let challenge = challenge("ecomm-revenue").unwrap();
//! // First attempt: the straightforward design.
//! session.attempt("ecomm-revenue", &challenge.reference_vector(), Some(1_000)).unwrap();
//! // Second attempt: sample the data instead.
//! session.attempt(
//!     "ecomm-revenue",
//!     &vec!["sample".into(), "batch".into()],
//!     Some(1_000),
//! ).unwrap();
//! // Investigate the consequences.
//! let diff = session.compare(1, 2).unwrap();
//! assert_eq!(diff.choice_diffs.len(), 1);
//! ```

pub mod catalog;
pub mod challenge;
pub mod compare;
pub mod error;
pub mod run;
pub mod scenario;
pub mod score;
pub mod session;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::catalog::{challenge, challenges};
    pub use crate::challenge::{Challenge, ChoiceOption, ChoicePoint, ChoiceVector, SpecEdit};
    pub use crate::compare::{ConsequenceMatrix, IndicatorDelta, RunComparison};
    pub use crate::error::{LabsError, Result as LabsResult};
    pub use crate::run::{
        execute_attempt, execute_prepared, record_outcome, RunRecord, RUN_RECORD_SCHEMA_VERSION,
    };
    pub use crate::scenario::{scenario, scenarios, Scenario, Vertical};
    pub use crate::score::{assess, Score};
    pub use crate::session::{LabSession, Quota, QuotaRemaining, SessionMeta, SessionStore};
}
