//! Lab sessions: "free-limited access to TOREADOR using a
//! Platform-as-a-Service solution" (§3).
//!
//! A [`LabSession`] is one trainee's sandbox. The free tier meters three
//! resources — runs, rows per run, and cumulative abstract cost — and
//! refuses work past the quota, exactly the gating the paper's PaaS
//! offering applied. All run history stays in the session, feeding the
//! comparison and scoring machinery.

use toreador_core::compile::Bdaas;
use toreador_core::declarative::Indicator;

use crate::catalog::challenge;
use crate::challenge::ChoiceVector;
use crate::compare::{ConsequenceMatrix, RunComparison};
use crate::error::{LabsError, Result};
use crate::run::{execute_attempt, RunRecord};
use crate::score::{assess, Score};

/// Free-tier resource limits. Serialises with an infinite cost budget
/// mapped to JSON `null` (JSON has no infinity).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quota {
    pub max_runs: u64,
    pub max_rows_per_run: usize,
    #[serde(serialize_with = "ser_maybe_inf", deserialize_with = "de_maybe_inf")]
    pub max_total_cost: f64,
}

/// What is left of a [`Quota`] after some usage; both components saturate
/// at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaRemaining {
    pub runs: u64,
    pub cost: f64,
}

impl Quota {
    /// The default free tier.
    pub fn free_tier() -> Self {
        Quota {
            max_runs: 20,
            max_rows_per_run: 10_000,
            max_total_cost: 2_000.0,
        }
    }

    /// An effectively unmetered quota (for paid tiers / benchmarks).
    pub fn unlimited() -> Self {
        Quota {
            max_runs: u64::MAX,
            max_rows_per_run: usize::MAX,
            max_total_cost: f64::INFINITY,
        }
    }

    /// Headroom left after `used_runs` runs that spent `used_cost`.
    pub fn remaining(&self, used_runs: u64, used_cost: f64) -> QuotaRemaining {
        QuotaRemaining {
            runs: self.max_runs.saturating_sub(used_runs),
            cost: (self.max_total_cost - used_cost).max(0.0),
        }
    }
}

/// The per-trainee state the durable store keeps alongside run records:
/// quota, cumulative cost and the data seed — everything needed to resume
/// a session in a fresh process.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionMeta {
    pub quota: Quota,
    pub total_cost: f64,
    pub seed: u64,
}

/// The [`toreador_store::LabStore`] instantiation the Labs persist into:
/// session meta plus [`RunRecord`]s, with attempt scores keyed by
/// `(trainee, run_id)`.
pub type SessionStore = toreador_store::LabStore<SessionMeta, RunRecord>;

/// One trainee's session.
pub struct LabSession {
    pub trainee: String,
    quota: Quota,
    bdaas: Bdaas,
    history: Vec<RunRecord>,
    total_cost: f64,
    seed: u64,
    /// When present, every attempt is committed to the WAL-backed store
    /// before it is reported back to the trainee.
    store: Option<SessionStore>,
}

impl LabSession {
    pub fn new(trainee: impl Into<String>, quota: Quota, seed: u64) -> Self {
        LabSession {
            trainee: trainee.into(),
            quota,
            bdaas: Bdaas::new(),
            history: Vec::new(),
            total_cost: 0.0,
            seed,
            store: None,
        }
    }

    /// Open a durable session backed by `store`. A trainee already known
    /// to the store resumes with their persisted quota, cost, seed and
    /// full run history (`quota` and `seed` are ignored); a new trainee
    /// is registered with the given quota and seed.
    pub fn open(
        mut store: SessionStore,
        trainee: impl Into<String>,
        quota: Quota,
        seed: u64,
    ) -> Result<LabSession> {
        let trainee = trainee.into();
        let resumed = store.trainee(&trainee).map(|state| {
            let mut history: Vec<RunRecord> = state.runs.values().cloned().collect();
            for r in &mut history {
                r.migrate();
            }
            (state.meta.clone(), history)
        });
        let (meta, history) = match resumed {
            Some(found) => found,
            None => {
                let meta = SessionMeta {
                    quota,
                    total_cost: 0.0,
                    seed,
                };
                store.put_meta(&trainee, &meta)?;
                (meta, Vec::new())
            }
        };
        Ok(LabSession {
            trainee,
            quota: meta.quota,
            bdaas: Bdaas::new(),
            history,
            total_cost: meta.total_cost,
            seed: meta.seed,
            store: Some(store),
        })
    }

    /// The backing store, when the session is durable.
    pub fn store(&self) -> Option<&SessionStore> {
        self.store.as_ref()
    }

    pub fn quota(&self) -> Quota {
        self.quota
    }

    pub fn runs_used(&self) -> u64 {
        self.history.len() as u64
    }

    pub fn cost_used(&self) -> f64 {
        self.total_cost
    }

    pub fn history(&self) -> &[RunRecord] {
        &self.history
    }

    /// Attempt a challenge with the given choices. `rows` defaults to the
    /// scenario's default size, capped by the quota.
    pub fn attempt(
        &mut self,
        challenge_id: &str,
        choices: &ChoiceVector,
        rows: Option<usize>,
    ) -> Result<&RunRecord> {
        let left = self.quota.remaining(self.runs_used(), self.total_cost);
        if left.runs == 0 {
            return Err(LabsError::QuotaExceeded(format!(
                "run limit reached ({} of {})",
                self.runs_used(),
                self.quota.max_runs
            )));
        }
        if left.cost <= 0.0 {
            return Err(LabsError::QuotaExceeded(format!(
                "cost budget exhausted ({:.1} of {:.1})",
                self.total_cost, self.quota.max_total_cost
            )));
        }
        let c = challenge(challenge_id)?;
        let scen = crate::scenario::scenario(c.scenario_id)?;
        let rows = rows
            .unwrap_or(scen.default_rows)
            .min(self.quota.max_rows_per_run);
        let run_id = self.history.iter().map(|r| r.run_id).max().unwrap_or(0) + 1;
        let record = execute_attempt(&self.bdaas, &c, choices, run_id, Some(rows), self.seed)?;
        self.total_cost += record.indicator(Indicator::Cost).unwrap_or(0.0);
        // WAL-commit the run, its score and the updated meter before the
        // attempt is reported — a crash after this point loses nothing.
        if let Some(store) = self.store.as_mut() {
            store.put_run(&self.trainee, record.run_id, &record)?;
            store.put_score(&self.trainee, record.run_id, assess(&c, &record).total)?;
            store.put_meta(
                &self.trainee,
                &SessionMeta {
                    quota: self.quota,
                    total_cost: self.total_cost,
                    seed: self.seed,
                },
            )?;
        }
        self.history.push(record);
        Ok(self.history.last().expect("just pushed"))
    }

    /// Retrieve a past run by id.
    pub fn run(&self, run_id: u64) -> Result<&RunRecord> {
        self.history
            .iter()
            .find(|r| r.run_id == run_id)
            .ok_or_else(|| LabsError::Unknown(format!("run {run_id}")))
    }

    /// Diff two past runs.
    pub fn compare(&self, run_a: u64, run_b: u64) -> Result<RunComparison> {
        RunComparison::diff(self.run(run_a)?, self.run(run_b)?)
    }

    /// Consequence matrix over all runs of one challenge in this session.
    pub fn consequences(&self, challenge_id: &str) -> Result<ConsequenceMatrix> {
        let records: Vec<RunRecord> = self
            .history
            .iter()
            .filter(|r| r.challenge_id == challenge_id)
            .cloned()
            .collect();
        ConsequenceMatrix::build(&records)
    }

    /// Grade a past run.
    pub fn score(&self, run_id: u64) -> Result<Score> {
        let record = self.run(run_id)?;
        let c = challenge(&record.challenge_id)?;
        Ok(assess(&c, record))
    }

    /// The best-scoring run of a challenge, if any.
    pub fn best_run(&self, challenge_id: &str) -> Option<(u64, f64)> {
        self.history
            .iter()
            .filter(|r| r.challenge_id == challenge_id)
            .filter_map(|r| self.score(r.run_id).ok().map(|s| (r.run_id, s.total)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Serialise the session (trainee, quota usage, full run history) to
    /// JSON — the Labs let trainees come back to yesterday's experiments.
    pub fn export(&self) -> String {
        let snapshot = SessionSnapshot {
            trainee: self.trainee.clone(),
            max_runs: self.quota.max_runs,
            max_rows_per_run: self.quota.max_rows_per_run,
            max_total_cost: self.quota.max_total_cost,
            total_cost: self.total_cost,
            seed: self.seed,
            history: self.history.clone(),
        };
        serde_json::to_string_pretty(&snapshot).expect("session snapshot serialises")
    }

    /// Restore a session from [`LabSession::export`] output. Quota usage
    /// and history resume exactly where they stopped.
    pub fn import(json: &str) -> Result<LabSession> {
        let snapshot: SessionSnapshot = serde_json::from_str(json)
            .map_err(|e| LabsError::Unknown(format!("bad session snapshot: {e}")))?;
        Ok(LabSession {
            trainee: snapshot.trainee,
            quota: Quota {
                max_runs: snapshot.max_runs,
                max_rows_per_run: snapshot.max_rows_per_run,
                max_total_cost: snapshot.max_total_cost,
            },
            bdaas: Bdaas::new(),
            history: snapshot.history,
            total_cost: snapshot.total_cost,
            seed: snapshot.seed,
            store: None,
        })
    }
}

/// The serialised form of a session. Infinite cost budgets survive the trip
/// because JSON `null` maps back to infinity.
#[derive(serde::Serialize, serde::Deserialize)]
struct SessionSnapshot {
    trainee: String,
    max_runs: u64,
    max_rows_per_run: usize,
    #[serde(serialize_with = "ser_maybe_inf", deserialize_with = "de_maybe_inf")]
    max_total_cost: f64,
    total_cost: f64,
    seed: u64,
    history: Vec<RunRecord>,
}

fn ser_maybe_inf<S: serde::Serializer>(v: &f64, s: S) -> std::result::Result<S::Ok, S::Error> {
    if v.is_finite() {
        s.serialize_some(v)
    } else {
        s.serialize_none()
    }
}

fn de_maybe_inf<'de, D: serde::Deserializer<'de>>(d: D) -> std::result::Result<f64, D::Error> {
    let opt: Option<f64> = serde::Deserialize::deserialize(d)?;
    Ok(opt.unwrap_or(f64::INFINITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_session(max_runs: u64) -> LabSession {
        LabSession::new(
            "ada",
            Quota {
                max_runs,
                max_rows_per_run: 600,
                max_total_cost: 1e9,
            },
            7,
        )
    }

    #[test]
    fn attempts_accumulate_history() {
        let mut s = tiny_session(10);
        let c = challenge("ecomm-revenue").unwrap();
        s.attempt("ecomm-revenue", &c.reference_vector(), Some(400))
            .unwrap();
        s.attempt(
            "ecomm-revenue",
            &vec!["sample".into(), "batch".into()],
            Some(400),
        )
        .unwrap();
        assert_eq!(s.runs_used(), 2);
        assert!(s.cost_used() > 0.0);
        assert_eq!(s.history()[0].run_id, 1);
        assert_eq!(s.history()[1].run_id, 2);
    }

    #[test]
    fn run_quota_enforced() {
        let mut s = tiny_session(1);
        let c = challenge("ecomm-revenue").unwrap();
        s.attempt("ecomm-revenue", &c.reference_vector(), Some(300))
            .unwrap();
        let err = s
            .attempt("ecomm-revenue", &c.reference_vector(), Some(300))
            .unwrap_err();
        assert!(matches!(err, LabsError::QuotaExceeded(_)));
    }

    #[test]
    fn rows_capped_by_quota() {
        let mut s = tiny_session(5);
        let c = challenge("ecomm-revenue").unwrap();
        let r = s
            .attempt("ecomm-revenue", &c.reference_vector(), Some(1_000_000))
            .unwrap();
        assert_eq!(r.rows_in, 600, "row cap applied");
    }

    #[test]
    fn cost_budget_enforced() {
        let mut s = LabSession::new(
            "bob",
            Quota {
                max_runs: 100,
                max_rows_per_run: 500,
                max_total_cost: 0.5,
            },
            3,
        );
        let c = challenge("ecomm-revenue").unwrap();
        // First run is admitted (budget not yet spent), second refused.
        s.attempt("ecomm-revenue", &c.reference_vector(), Some(500))
            .unwrap();
        let err = s
            .attempt("ecomm-revenue", &c.reference_vector(), Some(500))
            .unwrap_err();
        assert!(matches!(err, LabsError::QuotaExceeded(_)));
    }

    #[test]
    fn compare_and_consequences_over_session_history() {
        let mut s = tiny_session(10);
        s.attempt(
            "ecomm-revenue",
            &vec!["full".into(), "batch".into()],
            Some(500),
        )
        .unwrap();
        s.attempt(
            "ecomm-revenue",
            &vec!["sample".into(), "batch".into()],
            Some(500),
        )
        .unwrap();
        let d = s.compare(1, 2).unwrap();
        assert_eq!(d.choice_diffs.len(), 1);
        let m = s.consequences("ecomm-revenue").unwrap();
        assert_eq!(m.rows.len(), 2);
        assert!(s.compare(1, 99).is_err());
    }

    #[test]
    fn export_import_round_trip_resumes_quota_and_history() {
        let mut s = tiny_session(3);
        let c = challenge("ecomm-revenue").unwrap();
        s.attempt("ecomm-revenue", &c.reference_vector(), Some(300))
            .unwrap();
        s.attempt(
            "ecomm-revenue",
            &vec!["sample".into(), "batch".into()],
            Some(300),
        )
        .unwrap();
        let json = s.export();
        let mut restored = LabSession::import(&json).unwrap();
        assert_eq!(restored.trainee, "ada");
        assert_eq!(restored.runs_used(), 2);
        assert_eq!(restored.history(), s.history());
        assert!((restored.cost_used() - s.cost_used()).abs() < 1e-12);
        // Comparison still works on restored history.
        assert!(restored.compare(1, 2).is_ok());
        // Quota continues: one run left, then refused.
        restored
            .attempt("ecomm-revenue", &c.reference_vector(), Some(300))
            .unwrap();
        assert!(restored
            .attempt("ecomm-revenue", &c.reference_vector(), Some(300))
            .is_err());
    }

    #[test]
    fn infinite_cost_budget_survives_round_trip() {
        let s = LabSession::new("x", Quota::unlimited(), 1);
        let restored = LabSession::import(&s.export()).unwrap();
        assert!(restored.quota().max_total_cost.is_infinite());
        assert!(LabSession::import("{not json").is_err());
    }

    #[test]
    fn quota_remaining_saturates_and_serialises() {
        let q = Quota::free_tier();
        let left = q.remaining(5, 100.0);
        assert_eq!(left.runs, 15);
        assert!((left.cost - 1900.0).abs() < 1e-9);
        let spent = q.remaining(25, 5000.0);
        assert_eq!(spent.runs, 0);
        assert_eq!(spent.cost, 0.0);
        assert!(Quota::unlimited().remaining(1000, 1e12).cost.is_infinite());
        // Quota round-trips through serde, infinite budget included.
        let back: Quota =
            serde_json::from_str(&serde_json::to_string(&Quota::unlimited()).unwrap()).unwrap();
        assert!(back.max_total_cost.is_infinite());
        let back: Quota =
            serde_json::from_str(&serde_json::to_string(&Quota::free_tier()).unwrap()).unwrap();
        assert_eq!(back, Quota::free_tier());
    }

    #[test]
    fn durable_sessions_resume_across_store_reopens() {
        let dir = std::env::temp_dir().join(format!(
            "toreador-labs-session-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let quota = Quota {
            max_runs: 3,
            max_rows_per_run: 600,
            max_total_cost: 1e9,
        };
        let c = challenge("ecomm-revenue").unwrap();
        {
            let store = SessionStore::open(&dir).unwrap();
            let mut s = LabSession::open(store, "ada", quota, 7).unwrap();
            s.attempt("ecomm-revenue", &c.reference_vector(), Some(300))
                .unwrap();
            s.attempt(
                "ecomm-revenue",
                &vec!["sample".into(), "batch".into()],
                Some(300),
            )
            .unwrap();
            // Every attempt was committed as it happened; the session is
            // simply dropped, as a crash would.
        }
        let store = SessionStore::open(&dir).unwrap();
        // Scores were persisted keyed by (trainee, run_id).
        assert!(store.score("ada", 1).is_some());
        assert!(store.score("ada", 2).is_some());
        let mut s = LabSession::open(store, "ada", Quota::free_tier(), 999).unwrap();
        assert_eq!(s.runs_used(), 2);
        assert!(s.cost_used() > 0.0);
        assert_eq!(s.quota().max_runs, 3, "persisted quota wins");
        assert_eq!(s.seed, 7, "persisted seed wins");
        assert!(s.compare(1, 2).is_ok(), "history resumed with traces");
        // The quota continues from disk: one run left, then refused.
        let r = s
            .attempt("ecomm-revenue", &c.reference_vector(), Some(300))
            .unwrap();
        assert_eq!(r.run_id, 3, "run ids continue past restored history");
        assert!(s
            .attempt("ecomm-revenue", &c.reference_vector(), Some(300))
            .is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scoring_and_best_run() {
        let mut s = tiny_session(10);
        let c = challenge("ecomm-revenue").unwrap();
        s.attempt("ecomm-revenue", &c.reference_vector(), Some(500))
            .unwrap();
        s.attempt(
            "ecomm-revenue",
            &vec!["sample".into(), "stream".into()],
            Some(500),
        )
        .unwrap();
        let s1 = s.score(1).unwrap();
        let s2 = s.score(2).unwrap();
        assert!(s1.total > 0.0 && s2.total > 0.0);
        let (best_id, best_score) = s.best_run("ecomm-revenue").unwrap();
        assert_eq!(best_score, s1.total.max(s2.total));
        assert!(best_id == 1 || best_id == 2);
        assert!(s.best_run("no-such").is_none());
    }
}
