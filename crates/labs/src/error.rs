//! Error type for the Labs environment.

use std::fmt;

/// Errors raised by the Labs runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum LabsError {
    /// Unknown scenario / challenge / choice identifiers.
    Unknown(String),
    /// A choice vector is incomplete or names a non-existent option.
    BadChoice(String),
    /// The session's free-tier quota is exhausted.
    QuotaExceeded(String),
    /// Compilation or execution of the campaign failed.
    Campaign(String),
    /// Run comparison prerequisites not met (different challenges, ...).
    Incomparable(String),
    /// The durable session store failed (I/O, corruption, codec).
    Storage(String),
}

impl fmt::Display for LabsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabsError::Unknown(m) => write!(f, "unknown lab entity: {m}"),
            LabsError::BadChoice(m) => write!(f, "invalid choice: {m}"),
            LabsError::QuotaExceeded(m) => write!(f, "free-tier quota exceeded: {m}"),
            LabsError::Campaign(m) => write!(f, "campaign failed: {m}"),
            LabsError::Incomparable(m) => write!(f, "runs not comparable: {m}"),
            LabsError::Storage(m) => write!(f, "session store failed: {m}"),
        }
    }
}

impl std::error::Error for LabsError {}

impl From<toreador_core::error::CoreError> for LabsError {
    fn from(e: toreador_core::error::CoreError) -> Self {
        LabsError::Campaign(e.to_string())
    }
}

impl From<toreador_store::StoreError> for LabsError {
    fn from(e: toreador_store::StoreError) -> Self {
        LabsError::Storage(e.to_string())
    }
}

/// Result alias for the Labs layer.
pub type Result<T> = std::result::Result<T, LabsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert!(LabsError::QuotaExceeded("runs".into())
            .to_string()
            .contains("quota"));
        let e: LabsError = toreador_core::error::CoreError::Inconsistent("boom".into()).into();
        assert!(e.to_string().contains("boom"));
    }
}
