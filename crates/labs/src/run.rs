//! Run execution and provenance records.
//!
//! Every Labs run leaves a [`RunRecord`]: the choices made, the plan that
//! was compiled, every measured indicator, objective outcomes, compliance
//! verdicts, and resource usage. Records are serialisable and are the raw
//! material of [`crate::compare`] — the paper's point that professional
//! platforms make "compar[ing] different runs of a composite BDA"
//! difficult, and the Labs make it a first-class operation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use toreador_core::compile::{Bdaas, CampaignOutcome, CompiledCampaign};
use toreador_core::declarative::Indicator;
use toreador_dataflow::trace::{
    PipelineTotals, ResilienceTotals, RunTrace, SpillTotals, StreamTotals,
};

use crate::challenge::{Challenge, ChoiceVector};
use crate::error::{LabsError, Result};
use crate::scenario::scenario;

/// The version of the [`RunRecord`] on-disk schema this build writes.
/// Records persisted before versioning existed deserialize as version 0;
/// [`RunRecord::migrate`] upgrades them in place.
pub const RUN_RECORD_SCHEMA_VERSION: u32 = 1;

/// The provenance record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// On-disk schema version (see [`RUN_RECORD_SCHEMA_VERSION`]). Absent
    /// in pre-versioning records, which therefore parse as 0.
    #[serde(default, deserialize_with = "de_schema_version")]
    pub schema_version: u32,
    /// Monotone per-session run number.
    pub run_id: u64,
    pub challenge_id: String,
    pub choices: ChoiceVector,
    /// Service ids, in composition order.
    pub plan_services: Vec<String>,
    pub platform: String,
    /// Indicator name -> measured value.
    pub indicators: BTreeMap<String, f64>,
    /// Objective rendered -> satisfied (None = unmeasured).
    pub objectives: Vec<(String, Option<bool>)>,
    /// Post-hoc compliance verdict, if a policy applied.
    pub compliant: Option<bool>,
    /// Consistency warnings surfaced at compile time.
    pub warnings: Vec<String>,
    /// Rows in / rows out.
    pub rows_in: usize,
    pub rows_out: usize,
    /// Total shuffle bytes across engine stages (a real resource signal).
    pub shuffle_bytes: u64,
    /// Text reports produced by the pipeline's services.
    pub reports: Vec<(String, String)>,
    /// Flight-recorder journals from every engine run the campaign made,
    /// in execution order. The raw material for per-operator and skew
    /// comparison across runs.
    pub traces: Vec<RunTrace>,
}

/// Missing `schema_version` (pre-versioning JSON) parses as 0, so old
/// records are distinguishable from current ones and can be migrated.
fn de_schema_version<'de, D: serde::Deserializer<'de>>(d: D) -> std::result::Result<u32, D::Error> {
    let v: Option<u32> = Deserialize::deserialize(d)?;
    Ok(v.unwrap_or(0))
}

impl RunRecord {
    /// Upgrade a record parsed from an older schema to the current one.
    /// Returns whether anything changed. Version 0 records carry every
    /// field the current schema needs (new fields default), so today the
    /// migration only stamps the version; future bumps hook their field
    /// rewrites here.
    pub fn migrate(&mut self) -> bool {
        let migrated = self.schema_version < RUN_RECORD_SCHEMA_VERSION;
        self.schema_version = RUN_RECORD_SCHEMA_VERSION;
        migrated
    }

    pub fn indicator(&self, indicator: Indicator) -> Option<f64> {
        self.indicators.get(indicator.name()).copied()
    }

    /// Fraction of objectives satisfied (unmeasured counts as unmet).
    pub fn objective_fraction(&self) -> f64 {
        if self.objectives.is_empty() {
            return 1.0;
        }
        let met = self
            .objectives
            .iter()
            .filter(|(_, s)| *s == Some(true))
            .count();
        met as f64 / self.objectives.len() as f64
    }

    /// Total operator-attributed time per operator name, summed across all
    /// engine runs this record's campaign made, in microseconds.
    pub fn operator_elapsed_us(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for trace in &self.traces {
            for (op, us) in trace.operator_elapsed_us() {
                *totals.entry(op).or_insert(0) += us;
            }
        }
        totals
    }

    /// Vectorized batch counts per operator name, summed across all engine
    /// runs this record's campaign made, with whether any of the batches
    /// ran inside a fused narrow chain. Operators executed by the
    /// row-at-a-time engine report zero batches, so two records that differ
    /// only in engine mode diff cleanly here.
    pub fn operator_batches(&self) -> BTreeMap<String, (u64, bool)> {
        let mut totals: BTreeMap<String, (u64, bool)> = BTreeMap::new();
        for trace in &self.traces {
            for (op, (batches, fused)) in trace.operator_batches() {
                let entry = totals.entry(op).or_insert((0, false));
                entry.0 += batches;
                entry.1 |= fused;
            }
        }
        totals
    }

    /// The worst per-stage straggler factor observed across the record's
    /// engine runs, when any stage ran tasks.
    pub fn max_skew_ratio(&self) -> Option<f64> {
        self.traces
            .iter()
            .filter_map(|t| t.max_skew_ratio())
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    /// Aggregate resilience cost (retries, backoff, timeouts, panics,
    /// speculation, cancellations) across every engine run the campaign
    /// made. All-zero when the run was calm or recorded no traces.
    pub fn resilience_totals(&self) -> ResilienceTotals {
        self.traces
            .iter()
            .fold(ResilienceTotals::default(), |acc, t| {
                acc.merge(&t.resilience_totals())
            })
    }

    /// Aggregate morsel-pipeline activity (pipeline waves, morsels, steals,
    /// worker skew) across every engine run the campaign made. All-zero
    /// when every wave ran on the stage-barrier path.
    pub fn pipeline_totals(&self) -> PipelineTotals {
        self.traces
            .iter()
            .fold(PipelineTotals::default(), |acc, t| {
                acc.merge(&t.pipeline_totals())
            })
    }

    /// Aggregate continuous-streaming activity (acked batches, backpressure
    /// stalls, watermark motion, late-data accounting) across every engine
    /// run the campaign made. All-zero for batch campaigns.
    pub fn stream_totals(&self) -> StreamTotals {
        self.traces.iter().fold(StreamTotals::default(), |acc, t| {
            acc.merge(&t.stream_totals())
        })
    }

    /// Aggregate out-of-core activity (spilled runs, merges, page faults,
    /// evictions, peak pool residency) across every engine run the campaign
    /// made. All-zero when no memory budget was set or it never bit.
    pub fn spill_totals(&self) -> SpillTotals {
        self.traces.iter().fold(SpillTotals::default(), |acc, t| {
            acc.merge(&t.spill_totals())
        })
    }
}

/// Execute one challenge attempt: instantiate the choices, compile through
/// the BDAaaS function, run on the scenario's data, and record everything.
///
/// `rows` overrides the scenario default (the session quota may cap it).
pub fn execute_attempt(
    bdaas: &Bdaas,
    challenge: &Challenge,
    choices: &ChoiceVector,
    run_id: u64,
    rows: Option<usize>,
    seed: u64,
) -> Result<RunRecord> {
    let spec = challenge.instantiate(choices)?;
    let scen = scenario(challenge.scenario_id)?;
    let rows = rows.unwrap_or(scen.default_rows);
    let data = scen.generate(rows, seed);
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .map_err(|e| LabsError::Campaign(e.to_string()))?;
    let aux = scen.auxiliary();
    let outcome = bdaas
        .run(&compiled, data, &aux)
        .map_err(|e| LabsError::Campaign(e.to_string()))?;
    Ok(record_outcome(
        run_id,
        challenge.id,
        choices,
        rows,
        &compiled,
        &outcome,
    ))
}

/// Execute one attempt against an **already compiled** campaign. This is
/// the hot half of [`execute_attempt`] with the compile step factored out,
/// so a serving daemon can coalesce identical concurrent compiles onto one
/// shared [`CompiledCampaign`] and still attach per-attempt engine state
/// (an external `RunControl`, a thread budget) to its own clone.
///
/// `compiled` must come from compiling `challenge.instantiate(choices)`
/// against the scenario's schema at `rows` rows — the caller owns that
/// contract (the plan cache keys on spec fingerprint + row count).
pub fn execute_prepared(
    bdaas: &Bdaas,
    challenge: &Challenge,
    choices: &ChoiceVector,
    run_id: u64,
    rows: usize,
    seed: u64,
    compiled: &CompiledCampaign,
) -> Result<RunRecord> {
    let scen = scenario(challenge.scenario_id)?;
    let data = scen.generate(rows, seed);
    let aux = scen.auxiliary();
    let outcome = bdaas
        .run(compiled, data, &aux)
        .map_err(|e| LabsError::Campaign(e.to_string()))?;
    Ok(record_outcome(
        run_id,
        challenge.id,
        choices,
        rows,
        compiled,
        &outcome,
    ))
}

/// Assemble the provenance record of a finished campaign run. Shared by
/// [`execute_attempt`] and ad-hoc runs (e.g. `toreador run --store`) that
/// persist outcomes without going through a challenge.
pub fn record_outcome(
    run_id: u64,
    label: &str,
    choices: &ChoiceVector,
    rows_in: usize,
    compiled: &CompiledCampaign,
    outcome: &CampaignOutcome,
) -> RunRecord {
    RunRecord {
        schema_version: RUN_RECORD_SCHEMA_VERSION,
        run_id,
        challenge_id: label.to_owned(),
        choices: choices.clone(),
        plan_services: compiled
            .procedural
            .composition
            .service_ids()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        platform: compiled.deployment.platform.name.clone(),
        indicators: outcome.indicators.clone(),
        objectives: outcome
            .objectives
            .iter()
            .map(|o| (o.objective.to_string(), o.satisfied))
            .collect(),
        compliant: outcome.post_verdict.as_ref().map(|v| v.compliant),
        warnings: compiled.warnings.iter().map(|w| w.to_string()).collect(),
        rows_in,
        rows_out: outcome.output.num_rows(),
        shuffle_bytes: outcome
            .engine_metrics
            .iter()
            .map(|m| m.total_shuffle_bytes())
            .sum(),
        traces: outcome.engine_traces.clone(),
        reports: outcome.reports.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::challenges;

    #[test]
    fn attempt_produces_complete_record() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let record = execute_attempt(&bdaas, c, &c.reference_vector(), 1, Some(800), 42).unwrap();
        assert_eq!(record.run_id, 1);
        assert_eq!(record.challenge_id, c.id);
        assert!(!record.plan_services.is_empty());
        assert!(record.indicators.contains_key("runtime_ms"));
        assert!(record.indicators.contains_key("cost"));
        assert_eq!(record.rows_in, 800);
        assert!(record.rows_out > 0);
        assert!((0.0..=1.0).contains(&record.objective_fraction()));
        // Provenance carries the engine's flight recordings.
        assert!(!record.traces.is_empty());
        assert!(!record.operator_elapsed_us().is_empty());
        if let Some(skew) = record.max_skew_ratio() {
            assert!(skew >= 1.0);
        }
    }

    #[test]
    fn records_are_deterministic_in_seed_modulo_timing() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let a = execute_attempt(&bdaas, c, &c.reference_vector(), 1, Some(500), 7).unwrap();
        let b = execute_attempt(&bdaas, c, &c.reference_vector(), 2, Some(500), 7).unwrap();
        assert_eq!(a.plan_services, b.plan_services);
        assert_eq!(a.rows_out, b.rows_out);
        assert_eq!(a.shuffle_bytes, b.shuffle_bytes);
        // Timing-derived indicators may differ; data-derived ones must not.
        assert_eq!(
            a.indicator(Indicator::Coverage),
            b.indicator(Indicator::Coverage)
        );
    }

    #[test]
    fn bad_choice_vector_fails_cleanly() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let err = execute_attempt(&bdaas, c, &vec!["no-such".into()], 1, Some(100), 1).unwrap_err();
        assert!(matches!(err, LabsError::BadChoice(_)));
    }

    #[test]
    fn records_serialize() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let record = execute_attempt(&bdaas, c, &c.reference_vector(), 1, Some(300), 3).unwrap();
        assert_eq!(record.schema_version, RUN_RECORD_SCHEMA_VERSION);
        let j = serde_json::to_string(&record).unwrap();
        let back: RunRecord = serde_json::from_str(&j).unwrap();
        assert_eq!(record, back);
    }

    #[test]
    fn pre_versioning_records_parse_as_v0_and_migrate_forward() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let record = execute_attempt(&bdaas, c, &c.reference_vector(), 1, Some(200), 5).unwrap();
        // Simulate a record written before the schema_version field existed
        // by dropping the field from its JSON.
        let mut v: serde_json::Value = serde_json::to_value(&record).unwrap();
        if let serde_json::Value::Object(map) = &mut v {
            map.remove("schema_version").expect("field is serialised");
        } else {
            panic!("record serialises to an object");
        }
        let old_json = serde_json::to_string(&v).unwrap();
        let mut back: RunRecord = serde_json::from_str(&old_json).unwrap();
        assert_eq!(back.schema_version, 0, "missing field reads as v0");
        assert!(back.migrate(), "v0 records need migration");
        assert_eq!(back.schema_version, RUN_RECORD_SCHEMA_VERSION);
        assert!(!back.migrate(), "migration is idempotent");
        // Nothing but the stamp changes for a v0 -> v1 upgrade.
        assert_eq!(back, record);
    }
}
