//! Run execution and provenance records.
//!
//! Every Labs run leaves a [`RunRecord`]: the choices made, the plan that
//! was compiled, every measured indicator, objective outcomes, compliance
//! verdicts, and resource usage. Records are serialisable and are the raw
//! material of [`crate::compare`] — the paper's point that professional
//! platforms make "compar[ing] different runs of a composite BDA"
//! difficult, and the Labs make it a first-class operation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use toreador_core::compile::Bdaas;
use toreador_core::declarative::Indicator;
use toreador_dataflow::trace::RunTrace;

use crate::challenge::{Challenge, ChoiceVector};
use crate::error::{LabsError, Result};
use crate::scenario::scenario;

/// The provenance record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Monotone per-session run number.
    pub run_id: u64,
    pub challenge_id: String,
    pub choices: ChoiceVector,
    /// Service ids, in composition order.
    pub plan_services: Vec<String>,
    pub platform: String,
    /// Indicator name -> measured value.
    pub indicators: BTreeMap<String, f64>,
    /// Objective rendered -> satisfied (None = unmeasured).
    pub objectives: Vec<(String, Option<bool>)>,
    /// Post-hoc compliance verdict, if a policy applied.
    pub compliant: Option<bool>,
    /// Consistency warnings surfaced at compile time.
    pub warnings: Vec<String>,
    /// Rows in / rows out.
    pub rows_in: usize,
    pub rows_out: usize,
    /// Total shuffle bytes across engine stages (a real resource signal).
    pub shuffle_bytes: u64,
    /// Text reports produced by the pipeline's services.
    pub reports: Vec<(String, String)>,
    /// Flight-recorder journals from every engine run the campaign made,
    /// in execution order. The raw material for per-operator and skew
    /// comparison across runs.
    pub traces: Vec<RunTrace>,
}

impl RunRecord {
    pub fn indicator(&self, indicator: Indicator) -> Option<f64> {
        self.indicators.get(indicator.name()).copied()
    }

    /// Fraction of objectives satisfied (unmeasured counts as unmet).
    pub fn objective_fraction(&self) -> f64 {
        if self.objectives.is_empty() {
            return 1.0;
        }
        let met = self
            .objectives
            .iter()
            .filter(|(_, s)| *s == Some(true))
            .count();
        met as f64 / self.objectives.len() as f64
    }

    /// Total operator-attributed time per operator name, summed across all
    /// engine runs this record's campaign made, in microseconds.
    pub fn operator_elapsed_us(&self) -> BTreeMap<String, u64> {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for trace in &self.traces {
            for (op, us) in trace.operator_elapsed_us() {
                *totals.entry(op).or_insert(0) += us;
            }
        }
        totals
    }

    /// The worst per-stage straggler factor observed across the record's
    /// engine runs, when any stage ran tasks.
    pub fn max_skew_ratio(&self) -> Option<f64> {
        self.traces
            .iter()
            .filter_map(|t| t.max_skew_ratio())
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }
}

/// Execute one challenge attempt: instantiate the choices, compile through
/// the BDAaaS function, run on the scenario's data, and record everything.
///
/// `rows` overrides the scenario default (the session quota may cap it).
pub fn execute_attempt(
    bdaas: &Bdaas,
    challenge: &Challenge,
    choices: &ChoiceVector,
    run_id: u64,
    rows: Option<usize>,
    seed: u64,
) -> Result<RunRecord> {
    let spec = challenge.instantiate(choices)?;
    let scen = scenario(challenge.scenario_id)?;
    let rows = rows.unwrap_or(scen.default_rows);
    let data = scen.generate(rows, seed);
    let aux = scen.auxiliary();
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .map_err(|e| LabsError::Campaign(e.to_string()))?;
    let outcome = bdaas
        .run(&compiled, data, &aux)
        .map_err(|e| LabsError::Campaign(e.to_string()))?;
    Ok(RunRecord {
        run_id,
        challenge_id: challenge.id.to_owned(),
        choices: choices.clone(),
        plan_services: compiled
            .procedural
            .composition
            .service_ids()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        platform: compiled.deployment.platform.name.clone(),
        indicators: outcome.indicators.clone(),
        objectives: outcome
            .objectives
            .iter()
            .map(|o| (o.objective.to_string(), o.satisfied))
            .collect(),
        compliant: outcome.post_verdict.as_ref().map(|v| v.compliant),
        warnings: compiled.warnings.iter().map(|w| w.to_string()).collect(),
        rows_in: rows,
        rows_out: outcome.output.num_rows(),
        shuffle_bytes: outcome
            .engine_metrics
            .iter()
            .map(|m| m.total_shuffle_bytes())
            .sum(),
        traces: outcome.engine_traces,
        reports: outcome.reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::challenges;

    #[test]
    fn attempt_produces_complete_record() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let record = execute_attempt(&bdaas, c, &c.reference_vector(), 1, Some(800), 42).unwrap();
        assert_eq!(record.run_id, 1);
        assert_eq!(record.challenge_id, c.id);
        assert!(!record.plan_services.is_empty());
        assert!(record.indicators.contains_key("runtime_ms"));
        assert!(record.indicators.contains_key("cost"));
        assert_eq!(record.rows_in, 800);
        assert!(record.rows_out > 0);
        assert!((0.0..=1.0).contains(&record.objective_fraction()));
        // Provenance carries the engine's flight recordings.
        assert!(!record.traces.is_empty());
        assert!(!record.operator_elapsed_us().is_empty());
        if let Some(skew) = record.max_skew_ratio() {
            assert!(skew >= 1.0);
        }
    }

    #[test]
    fn records_are_deterministic_in_seed_modulo_timing() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let a = execute_attempt(&bdaas, c, &c.reference_vector(), 1, Some(500), 7).unwrap();
        let b = execute_attempt(&bdaas, c, &c.reference_vector(), 2, Some(500), 7).unwrap();
        assert_eq!(a.plan_services, b.plan_services);
        assert_eq!(a.rows_out, b.rows_out);
        assert_eq!(a.shuffle_bytes, b.shuffle_bytes);
        // Timing-derived indicators may differ; data-derived ones must not.
        assert_eq!(
            a.indicator(Indicator::Coverage),
            b.indicator(Indicator::Coverage)
        );
    }

    #[test]
    fn bad_choice_vector_fails_cleanly() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let err = execute_attempt(&bdaas, c, &vec!["no-such".into()], 1, Some(100), 1).unwrap_err();
        assert!(matches!(err, LabsError::BadChoice(_)));
    }

    #[test]
    fn records_serialize() {
        let bdaas = Bdaas::new();
        let all = challenges();
        let c = &all[0];
        let record = execute_attempt(&bdaas, c, &c.reference_vector(), 1, Some(300), 3).unwrap();
        let j = serde_json::to_string(&record).unwrap();
        let back: RunRecord = serde_json::from_str(&j).unwrap();
        assert_eq!(record, back);
    }
}
