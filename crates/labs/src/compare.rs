//! Run comparison: the Labs' core affordance.
//!
//! §3: "this kind of experience is usually not available in the
//! professional Big Data platforms today in the market, where the
//! architectural and data complexity make it difficult to compare different
//! runs of a composite BDA." Here, comparison is a first-class operation
//! over [`RunRecord`]s: choice diffs, indicator deltas, plan diffs,
//! objective flips — plus a consequence matrix with Pareto analysis over
//! many runs.

use std::collections::BTreeSet;

use toreador_core::declarative::Indicator;
use toreador_dataflow::trace::{PipelineTotals, ResilienceTotals, SpillTotals, StreamTotals};

use crate::error::{LabsError, Result};
use crate::run::RunRecord;

/// The structured difference between two runs of the same challenge.
#[derive(Debug, Clone, PartialEq)]
pub struct RunComparison {
    pub run_a: u64,
    pub run_b: u64,
    /// (choice point index, a's answer, b's answer) where they differ.
    pub choice_diffs: Vec<(usize, String, String)>,
    /// Indicator deltas, sorted by name.
    pub indicator_deltas: Vec<IndicatorDelta>,
    /// Services only in a's plan / only in b's plan.
    pub services_only_a: Vec<String>,
    pub services_only_b: Vec<String>,
    /// Objectives whose satisfaction changed: (objective, a, b).
    pub objective_flips: Vec<(String, Option<bool>, Option<bool>)>,
    /// Compliance verdict change, if any.
    pub compliance_change: Option<(Option<bool>, Option<bool>)>,
    /// Per-operator timing movement, derived from the runs' trace journals
    /// (union of operator names, sorted).
    pub operator_deltas: Vec<OperatorDelta>,
    /// Per-operator vectorized batch counts, derived from the runs' trace
    /// journals (union of operator names, sorted). A run on the
    /// row-at-a-time engine reports zero batches, so an engine-mode
    /// ablation shows up here even when timings are noisy.
    pub batch_deltas: Vec<BatchDelta>,
    /// Worst task-skew ratio of each run, when both runs recorded task spans.
    pub skew_change: Option<(f64, f64)>,
    /// Resilience overhead of each run (retries, backoff, timeouts, panics,
    /// speculation), when both runs recorded traces.
    pub resilience_change: Option<(ResilienceTotals, ResilienceTotals)>,
    /// Morsel-pipeline activity of each run (waves, morsels, steals, worker
    /// skew), when both runs recorded traces. An engine-mode ablation
    /// between the barrier and pipelined schedulers diffs cleanly here.
    pub pipeline_change: Option<(PipelineTotals, PipelineTotals)>,
    /// Continuous-streaming activity of each run (acked batches, stalls,
    /// watermark motion, late-data accounting), when both runs recorded
    /// traces. A late-policy or buffer-size ablation diffs cleanly here.
    pub stream_change: Option<(StreamTotals, StreamTotals)>,
    /// Out-of-core activity of each run (spilled runs, merges, page faults,
    /// evictions, peak pool residency), when both runs recorded traces. A
    /// memory-budget ablation diffs cleanly here.
    pub spill_change: Option<(SpillTotals, SpillTotals)>,
}

/// One indicator's movement between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct IndicatorDelta {
    pub indicator: String,
    pub a: Option<f64>,
    pub b: Option<f64>,
    /// b - a when both measured.
    pub delta: Option<f64>,
}

/// One operator's timing movement between two runs (journal-derived).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorDelta {
    pub operator: String,
    /// Total attributed time in the first run, µs (None = operator absent).
    pub a_us: Option<u64>,
    pub b_us: Option<u64>,
    /// b - a when the operator ran in both.
    pub delta_us: Option<i64>,
}

/// One operator's vectorized batch-count movement between two runs
/// (journal-derived). `(batches, fused)`: how many column batches the
/// operator evaluated, and whether any ran inside a fused narrow chain.
/// None = the operator recorded no batch events in that run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDelta {
    pub operator: String,
    pub a: Option<(u64, bool)>,
    pub b: Option<(u64, bool)>,
}

impl RunComparison {
    /// Diff two records. They must belong to the same challenge — comparing
    /// across challenges compares nothing meaningful.
    pub fn diff(a: &RunRecord, b: &RunRecord) -> Result<RunComparison> {
        if a.challenge_id != b.challenge_id {
            return Err(LabsError::Incomparable(format!(
                "run {} is {:?}, run {} is {:?}",
                a.run_id, a.challenge_id, b.run_id, b.challenge_id
            )));
        }
        let choice_diffs = a
            .choices
            .iter()
            .zip(&b.choices)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, (x, y))| (i, x.clone(), y.clone()))
            .collect();

        let names: BTreeSet<&String> = a.indicators.keys().chain(b.indicators.keys()).collect();
        let indicator_deltas = names
            .into_iter()
            .map(|name| {
                let av = a.indicators.get(name).copied();
                let bv = b.indicators.get(name).copied();
                IndicatorDelta {
                    indicator: name.clone(),
                    a: av,
                    b: bv,
                    delta: match (av, bv) {
                        (Some(x), Some(y)) => Some(y - x),
                        _ => None,
                    },
                }
            })
            .collect();

        let set_a: BTreeSet<&String> = a.plan_services.iter().collect();
        let set_b: BTreeSet<&String> = b.plan_services.iter().collect();
        let services_only_a = set_a.difference(&set_b).map(|s| (*s).clone()).collect();
        let services_only_b = set_b.difference(&set_a).map(|s| (*s).clone()).collect();

        let objective_flips = a
            .objectives
            .iter()
            .zip(&b.objectives)
            .filter(|((oa, sa), (_, sb))| {
                let _ = oa;
                sa != sb
            })
            .map(|((o, sa), (_, sb))| (o.clone(), *sa, *sb))
            .collect();

        let compliance_change = if a.compliant != b.compliant {
            Some((a.compliant, b.compliant))
        } else {
            None
        };

        let ops_a = a.operator_elapsed_us();
        let ops_b = b.operator_elapsed_us();
        let op_names: BTreeSet<&String> = ops_a.keys().chain(ops_b.keys()).collect();
        let operator_deltas = op_names
            .into_iter()
            .map(|name| {
                let a_us = ops_a.get(name).copied();
                let b_us = ops_b.get(name).copied();
                OperatorDelta {
                    operator: name.clone(),
                    a_us,
                    b_us,
                    delta_us: match (a_us, b_us) {
                        (Some(x), Some(y)) => Some(y as i64 - x as i64),
                        _ => None,
                    },
                }
            })
            .collect();
        let batches_a = a.operator_batches();
        let batches_b = b.operator_batches();
        let batch_names: BTreeSet<&String> = batches_a.keys().chain(batches_b.keys()).collect();
        let batch_deltas = batch_names
            .into_iter()
            .map(|name| BatchDelta {
                operator: name.clone(),
                a: batches_a.get(name).copied(),
                b: batches_b.get(name).copied(),
            })
            .collect();
        let skew_change = match (a.max_skew_ratio(), b.max_skew_ratio()) {
            (Some(x), Some(y)) => Some((x, y)),
            _ => None,
        };
        let resilience_change = if a.traces.is_empty() || b.traces.is_empty() {
            None
        } else {
            Some((a.resilience_totals(), b.resilience_totals()))
        };
        let pipeline_change = if a.traces.is_empty() || b.traces.is_empty() {
            None
        } else {
            Some((a.pipeline_totals(), b.pipeline_totals()))
        };
        let stream_change = if a.traces.is_empty() || b.traces.is_empty() {
            None
        } else {
            Some((a.stream_totals(), b.stream_totals()))
        };
        let spill_change = if a.traces.is_empty() || b.traces.is_empty() {
            None
        } else {
            Some((a.spill_totals(), b.spill_totals()))
        };

        Ok(RunComparison {
            run_a: a.run_id,
            run_b: b.run_id,
            choice_diffs,
            indicator_deltas,
            services_only_a,
            services_only_b,
            objective_flips,
            compliance_change,
            operator_deltas,
            batch_deltas,
            skew_change,
            resilience_change,
            pipeline_change,
            stream_change,
            spill_change,
        })
    }

    /// True when the two runs differ in nothing the record captures.
    pub fn is_identical(&self) -> bool {
        self.choice_diffs.is_empty()
            && self.services_only_a.is_empty()
            && self.services_only_b.is_empty()
            && self.objective_flips.is_empty()
            && self.compliance_change.is_none()
    }

    /// Render as a text report.
    pub fn render(&self) -> String {
        let mut out = format!("run {} vs run {}\n", self.run_a, self.run_b);
        if self.choice_diffs.is_empty() {
            out.push_str("choices: identical\n");
        }
        for (i, a, b) in &self.choice_diffs {
            out.push_str(&format!("choice {i}: {a} -> {b}\n"));
        }
        for d in &self.indicator_deltas {
            if let (Some(a), Some(b), Some(delta)) = (d.a, d.b, d.delta) {
                let pct = if a.abs() > 1e-12 {
                    100.0 * delta / a
                } else {
                    f64::NAN
                };
                out.push_str(&format!(
                    "{}: {a:.3} -> {b:.3} ({delta:+.3}, {pct:+.1}%)\n",
                    d.indicator
                ));
            }
        }
        for s in &self.services_only_a {
            out.push_str(&format!("plan: only first run uses {s}\n"));
        }
        for s in &self.services_only_b {
            out.push_str(&format!("plan: only second run uses {s}\n"));
        }
        for (o, a, b) in &self.objective_flips {
            out.push_str(&format!("objective {o}: {a:?} -> {b:?}\n"));
        }
        if let Some((a, b)) = self.compliance_change {
            out.push_str(&format!("compliance: {a:?} -> {b:?}\n"));
        }
        for d in &self.operator_deltas {
            match (d.a_us, d.b_us) {
                (Some(a), Some(b)) => out.push_str(&format!(
                    "operator {}: {a} us -> {b} us ({:+} us)\n",
                    d.operator,
                    d.delta_us.unwrap_or(0)
                )),
                (Some(a), None) => out.push_str(&format!(
                    "operator {}: only first run ({a} us)\n",
                    d.operator
                )),
                (None, Some(b)) => out.push_str(&format!(
                    "operator {}: only second run ({b} us)\n",
                    d.operator
                )),
                (None, None) => {}
            }
        }
        let show = |v: (u64, bool)| {
            if v.1 {
                format!("{} batches (fused)", v.0)
            } else {
                format!("{} batches", v.0)
            }
        };
        for d in &self.batch_deltas {
            match (d.a, d.b) {
                (Some(a), Some(b)) if a != b => out.push_str(&format!(
                    "batches {}: {} -> {}\n",
                    d.operator,
                    show(a),
                    show(b)
                )),
                (Some(a), None) => out.push_str(&format!(
                    "batches {}: only first run ({})\n",
                    d.operator,
                    show(a)
                )),
                (None, Some(b)) => out.push_str(&format!(
                    "batches {}: only second run ({})\n",
                    d.operator,
                    show(b)
                )),
                _ => {}
            }
        }
        if let Some((a, b)) = self.skew_change {
            out.push_str(&format!("max task skew: {a:.2} -> {b:.2}\n"));
        }
        if let Some((a, b)) = &self.pipeline_change {
            if !a.is_zero() || !b.is_zero() {
                out.push_str(&format!(
                    "pipelines: morsels {} -> {}, stolen {} -> {}, \
                     worker skew {:.2} -> {:.2}\n",
                    a.morsels, b.morsels, a.stolen, b.stolen, a.worker_skew, b.worker_skew,
                ));
            }
        }
        if let Some((a, b)) = &self.stream_change {
            if !a.is_zero() || !b.is_zero() {
                out.push_str(&format!(
                    "stream: acked {} -> {}, stalls {} -> {}, \
                     late dropped {} -> {}, side-channelled {} -> {}\n",
                    a.batches_acked,
                    b.batches_acked,
                    a.stalls,
                    b.stalls,
                    a.late_dropped,
                    b.late_dropped,
                    a.late_side_channelled,
                    b.late_side_channelled,
                ));
            }
        }
        if let Some((a, b)) = &self.spill_change {
            if !a.is_zero() || !b.is_zero() {
                out.push_str(&format!(
                    "spill: runs spilled {} -> {}, rows {} -> {}, merges {} -> {}, \
                     page faults {} -> {}, evictions {} -> {}, peak pool {} B -> {} B\n",
                    a.spills,
                    b.spills,
                    a.spilled_rows,
                    b.spilled_rows,
                    a.merges,
                    b.merges,
                    a.page_faults,
                    b.page_faults,
                    a.page_evictions,
                    b.page_evictions,
                    a.peak_pool_bytes,
                    b.peak_pool_bytes,
                ));
            }
        }
        if let Some((a, b)) = &self.resilience_change {
            if !a.is_zero() || !b.is_zero() {
                out.push_str(&format!(
                    "resilience: retries {} -> {}, backoff {} us -> {} us, \
                     timeouts {} -> {}, panics {} -> {}, speculative {} -> {}\n",
                    a.retries,
                    b.retries,
                    a.backoff_us,
                    b.backoff_us,
                    a.timeouts,
                    b.timeouts,
                    a.panics,
                    b.panics,
                    a.speculative_launched,
                    b.speculative_launched,
                ));
            }
        }
        out
    }
}

/// A consequence matrix over many runs of one challenge: rows are runs,
/// columns are indicators.
#[derive(Debug, Clone)]
pub struct ConsequenceMatrix {
    pub challenge_id: String,
    pub indicator_names: Vec<String>,
    /// (run id, choices, per-indicator values in `indicator_names` order).
    pub rows: Vec<(u64, Vec<String>, Vec<Option<f64>>)>,
}

impl ConsequenceMatrix {
    /// Build from records (all must share a challenge).
    pub fn build(records: &[RunRecord]) -> Result<ConsequenceMatrix> {
        let first = records
            .first()
            .ok_or_else(|| LabsError::Incomparable("no runs to tabulate".to_owned()))?;
        let mut names: BTreeSet<String> = BTreeSet::new();
        for r in records {
            if r.challenge_id != first.challenge_id {
                return Err(LabsError::Incomparable(format!(
                    "mixed challenges: {:?} and {:?}",
                    first.challenge_id, r.challenge_id
                )));
            }
            names.extend(r.indicators.keys().cloned());
        }
        let indicator_names: Vec<String> = names.into_iter().collect();
        let rows = records
            .iter()
            .map(|r| {
                let values = indicator_names
                    .iter()
                    .map(|n| r.indicators.get(n).copied())
                    .collect();
                (r.run_id, r.choices.clone(), values)
            })
            .collect();
        Ok(ConsequenceMatrix {
            challenge_id: first.challenge_id.clone(),
            indicator_names,
            rows,
        })
    }

    /// Does row `a` weakly dominate row `b` on every *comparable* indicator
    /// (respecting each indicator's orientation), strictly on at least one?
    ///
    /// Timing-derived indicators (runtime, throughput, batch latency) are
    /// excluded — they are noisy across repeated runs, and the design
    /// trade-offs the Labs teach live in the data-derived indicators (cost,
    /// accuracy, risk, coverage).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let comparable =
            |name: &str| !matches!(name, "runtime_ms" | "throughput" | "batch_latency_ms");
        let mut strict = false;
        for (i, name) in self.indicator_names.iter().enumerate() {
            if !comparable(name) {
                continue;
            }
            let (Some(va), Some(vb)) = (self.rows[a].2[i], self.rows[b].2[i]) else {
                continue;
            };
            let higher_better = Indicator::parse(name)
                .map(|x| x.higher_is_better())
                .unwrap_or(true);
            let (better, worse) = if higher_better {
                (va > vb + 1e-12, va < vb - 1e-12)
            } else {
                (va < vb - 1e-12, va > vb + 1e-12)
            };
            if worse {
                return false;
            }
            if better {
                strict = true;
            }
        }
        strict
    }

    /// Indices of rows not dominated by any other row.
    pub fn pareto_front(&self) -> Vec<usize> {
        (0..self.rows.len())
            .filter(|&i| !(0..self.rows.len()).any(|j| j != i && self.dominates(j, i)))
            .collect()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut header = vec!["run".to_owned(), "choices".to_owned()];
        header.extend(self.indicator_names.iter().cloned());
        let mut grid: Vec<Vec<String>> = vec![header];
        for (id, choices, values) in &self.rows {
            let mut row = vec![id.to_string(), choices.join("/")];
            row.extend(values.iter().map(|v| match v {
                Some(x) => format!("{x:.3}"),
                None => "-".to_owned(),
            }));
            grid.push(row);
        }
        let widths: Vec<usize> = (0..grid[0].len())
            .map(|c| grid.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for row in &grid {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat(' ').take(widths[c] - cell.len()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use toreador_dataflow::trace::{RunTrace, TraceEvent, TraceEventKind};

    fn record(id: u64, challenge: &str, choices: &[&str], indicators: &[(&str, f64)]) -> RunRecord {
        RunRecord {
            schema_version: crate::run::RUN_RECORD_SCHEMA_VERSION,
            run_id: id,
            challenge_id: challenge.to_owned(),
            choices: choices.iter().map(|s| s.to_string()).collect(),
            plan_services: vec!["processing.filter".to_owned()],
            platform: "lab-free-tier".to_owned(),
            indicators: indicators
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<BTreeMap<_, _>>(),
            objectives: vec![("runtime_ms <= 100".to_owned(), Some(true))],
            compliant: None,
            warnings: vec![],
            rows_in: 100,
            rows_out: 50,
            shuffle_bytes: 1024,
            reports: vec![],
            traces: vec![],
        }
    }

    #[test]
    fn diff_identifies_exactly_the_differences() {
        let mut a = record(
            1,
            "c",
            &["full", "batch"],
            &[("cost", 10.0), ("accuracy", 0.8)],
        );
        let mut b = record(
            2,
            "c",
            &["sample", "batch"],
            &[("cost", 4.0), ("accuracy", 0.7)],
        );
        b.plan_services = vec![
            "processing.sample".to_owned(),
            "processing.filter".to_owned(),
        ];
        a.objectives = vec![("accuracy >= 0.75".to_owned(), Some(true))];
        b.objectives = vec![("accuracy >= 0.75".to_owned(), Some(false))];
        let d = RunComparison::diff(&a, &b).unwrap();
        assert_eq!(
            d.choice_diffs,
            vec![(0, "full".to_owned(), "sample".to_owned())]
        );
        assert_eq!(d.services_only_b, vec!["processing.sample".to_owned()]);
        assert!(d.services_only_a.is_empty());
        assert_eq!(d.objective_flips.len(), 1);
        let cost = d
            .indicator_deltas
            .iter()
            .find(|x| x.indicator == "cost")
            .unwrap();
        assert_eq!(cost.delta, Some(-6.0));
        assert!(!d.is_identical());
        let rendered = d.render();
        assert!(rendered.contains("full -> sample"));
        assert!(rendered.contains("cost"));
    }

    #[test]
    fn identical_runs_diff_to_nothing() {
        let a = record(1, "c", &["x"], &[("cost", 1.0)]);
        let b = record(2, "c", &["x"], &[("cost", 1.0)]);
        let d = RunComparison::diff(&a, &b).unwrap();
        assert!(d.is_identical());
        assert!(d.operator_deltas.is_empty());
        assert!(d.skew_change.is_none());
    }

    fn trace_with(ops: &[(&str, u64)], task_spans_us: &[(u64, u64)]) -> RunTrace {
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut push = |kind: TraceEventKind, at_us: u64| {
            events.push(TraceEvent { seq, at_us, kind });
            seq += 1;
        };
        push(TraceEventKind::RunStarted, 0);
        for (p, (start, end)) in task_spans_us.iter().enumerate() {
            push(
                TraceEventKind::TaskStarted {
                    stage: 0,
                    partition: p,
                    attempt: 0,
                },
                *start,
            );
            push(
                TraceEventKind::TaskFinished {
                    stage: 0,
                    partition: p,
                    attempt: 0,
                    ok: true,
                },
                *end,
            );
        }
        for (op, us) in ops {
            push(
                TraceEventKind::OperatorFinished {
                    operator: (*op).to_owned(),
                    stage: 0,
                    rows_out: 1,
                    elapsed_us: *us,
                    shuffle_bytes: 0,
                },
                *us,
            );
        }
        RunTrace { events }
    }

    #[test]
    fn operator_and_skew_deltas_come_from_the_traces() {
        let mut a = record(1, "c", &["x"], &[]);
        let mut b = record(2, "c", &["x"], &[]);
        a.traces = vec![trace_with(
            &[("Scan", 100), ("Aggregate", 50)],
            &[(0, 10), (0, 10)],
        )];
        b.traces = vec![trace_with(
            &[("Scan", 70), ("Sort", 30)],
            &[(0, 30), (0, 10)],
        )];
        let d = RunComparison::diff(&a, &b).unwrap();
        let scan = d
            .operator_deltas
            .iter()
            .find(|x| x.operator == "Scan")
            .unwrap();
        assert_eq!(
            (scan.a_us, scan.b_us, scan.delta_us),
            (Some(100), Some(70), Some(-30))
        );
        let agg = d
            .operator_deltas
            .iter()
            .find(|x| x.operator == "Aggregate")
            .unwrap();
        assert_eq!((agg.a_us, agg.b_us, agg.delta_us), (Some(50), None, None));
        // a's tasks are even (skew 1.0); b's slowest is 30 vs mean 20 (1.5).
        let (sa, sb) = d.skew_change.unwrap();
        assert!((sa - 1.0).abs() < 1e-9);
        assert!((sb - 1.5).abs() < 1e-9);
        let rendered = d.render();
        assert!(rendered.contains("operator Scan: 100 us -> 70 us (-30 us)"));
        assert!(rendered.contains("operator Aggregate: only first run"));
        assert!(rendered.contains("operator Sort: only second run"));
        assert!(rendered.contains("max task skew: 1.00 -> 1.50"));
        // Neither trace recorded pipeline waves: present but all-zero, and
        // silent in the report.
        let (pa, pb) = d.pipeline_change.unwrap();
        assert!(pa.is_zero() && pb.is_zero());
        assert!(!rendered.contains("pipelines:"));
    }

    #[test]
    fn scheduler_mode_ablation_diffs_in_pipeline_totals() {
        let mut a = record(1, "c", &["x"], &[]);
        let mut b = record(2, "c", &["x"], &[]);
        // a ran on the stage-barrier path (no pipeline events); b ran the
        // morsel path and stole work off a skewed partition.
        a.traces = vec![trace_with(&[("Scan", 100)], &[(0, 10)])];
        let mut t = trace_with(&[("Scan", 80)], &[(0, 10)]);
        t.events.push(TraceEvent {
            seq: t.events.len() as u64,
            at_us: 90,
            kind: TraceEventKind::PipelineCompleted {
                stage: 0,
                partitions: 4,
                morsels: 32,
                stolen: 7,
                workers: 4,
                slowest_worker_us: 60,
                mean_worker_us: 40.0,
            },
        });
        b.traces = vec![t];
        let d = RunComparison::diff(&a, &b).unwrap();
        let (pa, pb) = d.pipeline_change.unwrap();
        assert!(pa.is_zero());
        assert_eq!((pb.pipelines, pb.morsels, pb.stolen), (1, 32, 7));
        assert!((pb.worker_skew - 1.5).abs() < 1e-9);
        let rendered = d.render();
        assert!(rendered
            .contains("pipelines: morsels 0 -> 32, stolen 0 -> 7, worker skew 1.00 -> 1.50"));
    }

    #[test]
    fn engine_mode_ablation_diffs_in_batch_counts() {
        let op = "Filter(price > 10)";
        let batches = |trace: &mut RunTrace, batches: u64, fused: bool| {
            let seq = trace.events.len() as u64;
            trace.events.push(TraceEvent {
                seq,
                at_us: 50,
                kind: TraceEventKind::OperatorBatches {
                    operator: op.to_owned(),
                    stage: 0,
                    batches,
                    fused,
                },
            });
        };
        // a ran vectorized and fused; b ran the row-at-a-time oracle.
        let mut a = record(1, "c", &["x"], &[]);
        let mut va = trace_with(&[(op, 100)], &[(0, 10)]);
        batches(&mut va, 4, true);
        a.traces = vec![va];
        let mut b = record(2, "c", &["x"], &[]);
        let mut vb = trace_with(&[(op, 180)], &[(0, 10)]);
        batches(&mut vb, 0, false);
        b.traces = vec![vb];
        let d = RunComparison::diff(&a, &b).unwrap();
        assert_eq!(
            d.batch_deltas,
            vec![BatchDelta {
                operator: op.to_owned(),
                a: Some((4, true)),
                b: Some((0, false)),
            }]
        );
        let rendered = d.render();
        assert!(
            rendered.contains("batches Filter(price > 10): 4 batches (fused) -> 0 batches"),
            "got: {rendered}"
        );
        // Identical batch profiles stay silent in the report.
        let d = RunComparison::diff(&a, &a).unwrap();
        assert!(!d.render().contains("batches Filter"));
    }

    #[test]
    fn resilience_overhead_diffs_from_the_traces() {
        let mut a = record(1, "c", &["x"], &[]);
        let mut b = record(2, "c", &["x"], &[]);
        a.traces = vec![trace_with(&[("Scan", 10)], &[(0, 5)])];
        // b's trace shows the chaos plan biting: a retry behind backoff and
        // one isolated panic.
        let mut chaotic = trace_with(&[("Scan", 40)], &[(0, 20)]);
        let base = chaotic.events.len() as u64;
        for (i, kind) in [
            TraceEventKind::BackoffScheduled {
                stage: 0,
                partition: 0,
                attempt: 1,
                delay_us: 750,
            },
            TraceEventKind::TaskRetried {
                stage: 0,
                partition: 0,
                attempt: 1,
            },
            TraceEventKind::TaskPanicked {
                stage: 0,
                partition: 0,
                attempt: 1,
                message: "boom".to_owned(),
            },
        ]
        .into_iter()
        .enumerate()
        {
            chaotic.events.push(TraceEvent {
                seq: base + i as u64,
                at_us: 100,
                kind,
            });
        }
        b.traces = vec![chaotic];
        let d = RunComparison::diff(&a, &b).unwrap();
        let (ra, rb) = d.resilience_change.unwrap();
        assert!(ra.is_zero(), "calm run has zero resilience cost");
        assert_eq!(rb.retries, 1);
        assert_eq!(rb.backoff_us, 750);
        assert_eq!(rb.panics, 1);
        let rendered = d.render();
        assert!(rendered.contains("resilience: retries 0 -> 1"));
        assert!(rendered.contains("backoff 0 us -> 750 us"));

        // No traces on either side: the field stays empty and render is calm.
        let calm = RunComparison::diff(&record(3, "c", &["x"], &[]), &record(4, "c", &["x"], &[]))
            .unwrap();
        assert!(calm.resilience_change.is_none());
        assert!(!calm.render().contains("resilience:"));
    }

    #[test]
    fn late_policy_ablation_diffs_in_stream_totals() {
        let mut a = record(1, "c", &["x"], &[]);
        let mut b = record(2, "c", &["x"], &[]);
        // a absorbed its late rows; b dropped them and stalled once.
        let mut ta = trace_with(&[("Scan", 50)], &[(0, 10)]);
        let mut tb = trace_with(&[("Scan", 50)], &[(0, 10)]);
        let push = |t: &mut RunTrace, kind: TraceEventKind| {
            let seq = t.events.len() as u64;
            t.events.push(TraceEvent {
                seq,
                at_us: 100,
                kind,
            });
        };
        for t in [&mut ta, &mut tb] {
            push(
                t,
                TraceEventKind::BatchAcked {
                    offset: 0,
                    rows: 64,
                    latency_us: 500,
                },
            );
        }
        push(
            &mut ta,
            TraceEventKind::LateDataAbsorbed { offset: 0, rows: 9 },
        );
        push(
            &mut tb,
            TraceEventKind::LateDataDropped { offset: 0, rows: 9 },
        );
        push(
            &mut tb,
            TraceEventKind::BackpressureStall {
                offset: 0,
                waited_us: 2_000,
            },
        );
        a.traces = vec![ta];
        b.traces = vec![tb];
        let d = RunComparison::diff(&a, &b).unwrap();
        let (sa, sb) = d.stream_change.unwrap();
        assert_eq!((sa.late_absorbed, sa.late_dropped), (9, 0));
        assert_eq!((sb.late_absorbed, sb.late_dropped), (0, 9));
        assert_eq!((sa.stalls, sb.stalls), (0, 1));
        let rendered = d.render();
        assert!(
            rendered.contains("stream: acked 1 -> 1, stalls 0 -> 1, late dropped 0 -> 9"),
            "got: {rendered}"
        );
        // Batch-only runs keep the report calm.
        let d = RunComparison::diff(&record(3, "c", &["x"], &[]), &record(4, "c", &["x"], &[]))
            .unwrap();
        assert!(d.stream_change.is_none());
    }

    #[test]
    fn memory_budget_ablation_diffs_in_spill_totals() {
        let mut a = record(1, "c", &["x"], &[]);
        let mut b = record(2, "c", &["x"], &[]);
        // a ran unbudgeted (no spill events); b spilled one shuffle run
        // through a one-frame pool and merged it back.
        a.traces = vec![trace_with(&[("Aggregate", 50)], &[(0, 10)])];
        let mut tight = trace_with(&[("Aggregate", 90)], &[(0, 30)]);
        let push = |t: &mut RunTrace, kind: TraceEventKind| {
            let seq = t.events.len() as u64;
            t.events.push(TraceEvent {
                seq,
                at_us: 100,
                kind,
            });
        };
        push(
            &mut tight,
            TraceEventKind::SpillStarted {
                op: "shuffle".to_owned(),
                target: 0,
                rows: 512,
                bytes: 40_000,
            },
        );
        push(
            &mut tight,
            TraceEventKind::PageFaulted {
                file: 0,
                page: 1,
                bytes: 32 << 10,
                pool_bytes: 32 << 10,
            },
        );
        push(
            &mut tight,
            TraceEventKind::PageEvicted {
                file: 0,
                page: 1,
                bytes: 32 << 10,
                dirty: true,
                pool_bytes: 0,
            },
        );
        push(
            &mut tight,
            TraceEventKind::SpillMerged {
                op: "shuffle".to_owned(),
                target: 0,
                runs: 1,
                rows: 512,
                bytes: 40_000,
            },
        );
        b.traces = vec![tight];
        let d = RunComparison::diff(&a, &b).unwrap();
        let (sa, sb) = d.spill_change.unwrap();
        assert!(sa.is_zero(), "unbudgeted run never spilled");
        assert_eq!((sb.spills, sb.merges), (1, 1));
        assert_eq!(sb.spilled_rows, 512);
        assert_eq!(sb.page_faults, 1);
        assert_eq!(sb.page_evictions, 1);
        assert_eq!(sb.peak_pool_bytes, 32 << 10);
        let rendered = d.render();
        assert!(
            rendered.contains("spill: runs spilled 0 -> 1"),
            "got: {rendered}"
        );
        assert!(rendered.contains("peak pool 0 B -> 32768 B"), "{rendered}");
        // Two unbudgeted runs keep the report calm.
        let calm = RunComparison::diff(&a, &a).unwrap();
        assert!(!calm.render().contains("spill:"));
    }

    #[test]
    fn cross_challenge_diff_refused() {
        let a = record(1, "c1", &["x"], &[]);
        let b = record(2, "c2", &["x"], &[]);
        assert!(matches!(
            RunComparison::diff(&a, &b),
            Err(LabsError::Incomparable(_))
        ));
    }

    #[test]
    fn matrix_collects_union_of_indicators() {
        let a = record(1, "c", &["x"], &[("cost", 1.0), ("accuracy", 0.9)]);
        let b = record(2, "c", &["y"], &[("cost", 2.0)]);
        let m = ConsequenceMatrix::build(&[a, b]).unwrap();
        assert_eq!(m.indicator_names, vec!["accuracy", "cost"]);
        assert_eq!(m.rows[1].2[0], None, "b has no accuracy");
        let rendered = m.render();
        assert!(rendered.contains("accuracy"));
        assert!(rendered.contains('-'));
    }

    #[test]
    fn dominance_respects_orientation() {
        // a: cheaper AND more accurate -> dominates.
        let a = record(1, "c", &["a"], &[("cost", 1.0), ("accuracy", 0.9)]);
        let b = record(2, "c", &["b"], &[("cost", 2.0), ("accuracy", 0.8)]);
        let m = ConsequenceMatrix::build(&[a, b]).unwrap();
        assert!(m.dominates(0, 1));
        assert!(!m.dominates(1, 0));
        assert_eq!(m.pareto_front(), vec![0]);
    }

    #[test]
    fn tradeoffs_keep_both_on_the_front() {
        // a cheaper, b more accurate: neither dominates.
        let a = record(1, "c", &["a"], &[("cost", 1.0), ("accuracy", 0.7)]);
        let b = record(2, "c", &["b"], &[("cost", 5.0), ("accuracy", 0.9)]);
        let m = ConsequenceMatrix::build(&[a, b]).unwrap();
        assert!(!m.dominates(0, 1));
        assert!(!m.dominates(1, 0));
        assert_eq!(m.pareto_front(), vec![0, 1]);
    }

    #[test]
    fn timing_indicators_do_not_drive_dominance() {
        let a = record(1, "c", &["a"], &[("cost", 1.0), ("runtime_ms", 500.0)]);
        let b = record(2, "c", &["b"], &[("cost", 1.0), ("runtime_ms", 100.0)]);
        let m = ConsequenceMatrix::build(&[a, b]).unwrap();
        assert!(!m.dominates(1, 0), "runtime alone must not dominate");
    }

    #[test]
    fn empty_matrix_refused() {
        assert!(ConsequenceMatrix::build(&[]).is_err());
    }
}
