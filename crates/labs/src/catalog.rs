//! The built-in challenge library: two challenges per vertical.
//!
//! Each challenge fixes the business requirement and leaves open exactly
//! the design dimensions whose interferences the paper wants trainees to
//! discover: scope vs cost, batch vs stream, model quality vs spend,
//! anonymisation route vs utility.

use toreador_catalog::descriptor::Capability;
use toreador_catalog::matching::Preferences;
use toreador_core::declarative::{
    CampaignSpec, Goal, Indicator, LateDataPolicy, ProcessingMode, StreamOptions, Target,
};

use crate::challenge::{Challenge, ChoiceOption, ChoicePoint, SpecEdit};
use crate::error::{LabsError, Result};

/// All built-in challenges.
pub fn challenges() -> Vec<Challenge> {
    vec![
        ecommerce_revenue(),
        ecommerce_basket(),
        energy_forecast(),
        energy_anomaly(),
        health_compliance(),
        health_insight(),
        fraud_exposure(),
        fraud_spikes(),
    ]
}

/// Look up a challenge by id.
pub fn challenge(id: &str) -> Result<Challenge> {
    challenges()
        .into_iter()
        .find(|c| c.id == id)
        .ok_or_else(|| LabsError::Unknown(format!("challenge {id:?}")))
}

fn ecommerce_revenue() -> Challenge {
    let base = CampaignSpec::new("revenue-by-category", "clicks")
        .goal(Goal::new(Capability::Filtering).param("predicate", "action == 'purchase'"))
        .goal(
            Goal::new(Capability::Aggregation)
                .param("group_by", "category")
                .param("agg", "sum:price:revenue,count:event_id:purchases"),
        )
        .goal(
            Goal::new(Capability::Reporting)
                .pin("viz.report.table")
                .param("limit", "10"),
        )
        .objective(Indicator::RuntimeMs, Target::AtMost(120_000.0))
        .objective(Indicator::Coverage, Target::AtLeast(0.99))
        .with_seed(17);
    Challenge {
        id: "ecomm-revenue",
        scenario_id: "ecommerce-clicks",
        title: "Where does the revenue come from?",
        brief: "Finance wants a revenue breakdown per product category, \
                refreshed within two minutes, without discarding sales data. \
                Decide how much data to look at and whether to process the \
                clickstream as a batch or as it arrives.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "scope",
                prompt: "Analyse every event, or estimate from a 10% sample?",
                options: vec![
                    ChoiceOption {
                        id: "full",
                        label: "All events",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "sample",
                        label: "10% sample (cheaper, approximate)",
                        edits: vec![SpecEdit::PrependSample { fraction: 0.1 }],
                    },
                ],
            },
            ChoicePoint {
                id: "regime",
                prompt: "Batch over the full log, or hourly micro-batches?",
                options: vec![
                    ChoiceOption {
                        id: "batch",
                        label: "One batch run",
                        edits: vec![SpecEdit::SetMode(ProcessingMode::Batch)],
                    },
                    ChoiceOption {
                        id: "stream",
                        label: "Hourly micro-batches",
                        edits: vec![SpecEdit::SetMode(ProcessingMode::Stream {
                            window_ms: 3_600_000,
                        })],
                    },
                ],
            },
        ],
        reference_choices: vec!["full", "batch"],
    }
}

fn ecommerce_basket() -> Challenge {
    let base = CampaignSpec::new("market-basket", "clicks")
        .goal(
            Goal::new(Capability::AssociationRules)
                .param("id", "session_id")
                .param("item", "category")
                .param("min_support", "0.05")
                .param("min_confidence", "0.3"),
        )
        .objective(Indicator::RuntimeMs, Target::AtMost(300_000.0))
        .with_seed(23);
    Challenge {
        id: "ecomm-basket",
        scenario_id: "ecommerce-clicks",
        title: "What sells together?",
        brief: "Merchandising wants category associations to plan cross-sell \
                campaigns. Mining every co-occurrence is expensive; thresholds \
                control how speculative the discovered rules may be.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "support",
                prompt: "How frequent must a pattern be to matter?",
                options: vec![
                    ChoiceOption {
                        id: "strict",
                        label: "Conservative (support >= 5%)",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "broad",
                        label: "Exploratory (support >= 1%)",
                        edits: vec![SpecEdit::SetParam {
                            goal: 0,
                            key: "min_support".into(),
                            value: "0.01".into(),
                        }],
                    },
                ],
            },
            ChoicePoint {
                id: "scope",
                prompt: "Mine all sessions or a 25% sample?",
                options: vec![
                    ChoiceOption {
                        id: "full",
                        label: "All sessions",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "sample",
                        label: "25% sample",
                        edits: vec![SpecEdit::PrependSample { fraction: 0.25 }],
                    },
                ],
            },
        ],
        reference_choices: vec!["strict", "full"],
    }
}

fn energy_forecast() -> Challenge {
    let base = CampaignSpec::new("load-forecast", "telemetry")
        .goal(Goal::new(Capability::Imputation).param("columns", "voltage"))
        .goal(
            Goal::new(Capability::Regression)
                .param("target", "kwh")
                .param("features", "temp_c,voltage")
                .objective(Indicator::Accuracy, Target::AtLeast(0.05)),
        )
        .objective(Indicator::RuntimeMs, Target::AtMost(120_000.0))
        .with_seed(31);
    Challenge {
        id: "energy-forecast",
        scenario_id: "energy-telemetry",
        title: "Forecast tomorrow's load",
        brief: "Grid operations need a consumption model driven by weather. \
                Sensor dropouts must be repaired first, rogue meter spikes threaten \
                the fit, and the model must explain a nontrivial share of the load \
                variance.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "repair",
                prompt: "How should missing voltage readings be repaired?",
                options: vec![
                    ChoiceOption {
                        id: "mean",
                        label: "Column mean (fast)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "prep.impute.mean".into(),
                        }],
                    },
                    ChoiceOption {
                        id: "median",
                        label: "Column median (robust to spikes)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "prep.impute.median".into(),
                        }],
                    },
                ],
            },
            // The load series contains rogue 8x spikes; least squares is
            // not robust, so keeping them collapses R² — the challenge's
            // central interference between data preparation and analytics.
            ChoicePoint {
                id: "outliers",
                prompt: "The series has rare huge spikes. Keep or drop them before fitting?",
                options: vec![
                    ChoiceOption {
                        id: "keep",
                        label: "Keep everything (the spikes are data too)",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "drop",
                        label: "Filter implausible loads before training",
                        edits: vec![SpecEdit::InsertGoal {
                            index: 1,
                            capability: Capability::Filtering,
                            params: vec![("predicate".into(), "kwh < 3.0".into())],
                            pin: None,
                        }],
                    },
                ],
            },
        ],
        reference_choices: vec!["median", "drop"],
    }
}

fn energy_anomaly() -> Challenge {
    let base = CampaignSpec::new("load-anomalies", "telemetry")
        .goal(
            Goal::new(Capability::AnomalyDetection)
                .param("column", "kwh")
                .param("threshold", "4.0")
                .param("window", "48"),
        )
        .goal(Goal::new(Capability::Reporting).pin("viz.report.summary"))
        .objective(Indicator::RuntimeMs, Target::AtMost(120_000.0))
        .with_seed(37);
    Challenge {
        id: "energy-anomaly",
        scenario_id: "energy-telemetry",
        title: "Catch the rogue meters",
        brief: "A handful of meters occasionally report absurd loads. The \
                load curve also swings daily, so a detector that only knows \
                the global average will cry wolf every evening peak — or \
                miss real spikes hidden inside it.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "detector",
                prompt: "Compare against the global average, or the recent window?",
                options: vec![
                    ChoiceOption {
                        id: "global",
                        label: "Global z-score (cheap)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "analytics.anomaly.zscore".into(),
                        }],
                    },
                    ChoiceOption {
                        id: "rolling",
                        label: "Rolling window (season-aware)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "analytics.anomaly.rolling".into(),
                        }],
                    },
                ],
            },
            ChoicePoint {
                id: "sensitivity",
                prompt: "How sensitive should the alarm be?",
                options: vec![
                    ChoiceOption {
                        id: "balanced",
                        label: "4 standard deviations",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "paranoid",
                        label: "2.5 standard deviations (more alerts)",
                        edits: vec![SpecEdit::SetParam {
                            goal: 0,
                            key: "threshold".into(),
                            value: "2.5".into(),
                        }],
                    },
                ],
            },
        ],
        reference_choices: vec!["rolling", "balanced"],
    }
}

fn health_compliance() -> Challenge {
    let base = CampaignSpec::new("cost-analysis", "health")
        .with_policy(toreador_privacy::policy::healthcare_default())
        .goal(
            Goal::new(Capability::Anonymization)
                .pin("privacy.kanon")
                .param("k", "5")
                .param("quasi", "age,zip,sex"),
        )
        .goal(
            Goal::new(Capability::Anonymization)
                .pin("privacy.ldiv")
                .param("l", "2")
                .param("quasi", "age,zip,sex")
                .param("sensitive", "diagnosis"),
        )
        .goal(Goal::new(Capability::Reporting).pin("viz.report.summary"))
        .objective(Indicator::PrivacyRisk, Target::AtMost(0.2))
        .objective(Indicator::Coverage, Target::AtLeast(0.5))
        .with_seed(41);
    Challenge {
        id: "health-compliance",
        scenario_id: "healthcare-records",
        title: "Release the cost statistics — legally",
        brief: "The consortium wants visit-cost statistics in the hands of \
                regional planners. The data-protection policy demands that \
                no individual be re-identifiable. Anonymising the records \
                keeps them browsable but coarsens them; a differentially \
                private release gives stronger guarantees but only noisy \
                aggregates.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "route",
                prompt: "Anonymise the records, or release only noisy aggregates?",
                options: vec![
                    ChoiceOption {
                        id: "anonymise",
                        label: "k-anonymous record release",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "dp",
                        label: "Differentially private aggregates",
                        edits: vec![
                            SpecEdit::ReplaceGoal {
                                goal: 0,
                                capability: Capability::PrivateAggregation,
                                params: vec![
                                    ("epsilon".into(), "1.0".into()),
                                    ("column".into(), "cost".into()),
                                    ("group_by".into(), "diagnosis".into()),
                                ],
                                pin: Some("privacy.dp.aggregate".into()),
                            },
                            SpecEdit::RemoveGoal { goal: 1 },
                        ],
                    },
                ],
            },
            ChoicePoint {
                id: "strength",
                prompt: "Standard or strict protection?",
                options: vec![
                    ChoiceOption {
                        id: "standard",
                        label: "k=5 / ε=1.0",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "strict",
                        label: "k=25 / ε=0.25",
                        edits: vec![
                            SpecEdit::SetParam {
                                goal: 0,
                                key: "k".into(),
                                value: "25".into(),
                            },
                            SpecEdit::SetParam {
                                goal: 0,
                                key: "epsilon".into(),
                                value: "0.25".into(),
                            },
                        ],
                    },
                ],
            },
        ],
        reference_choices: vec!["anonymise", "standard"],
    }
}

fn health_insight() -> Challenge {
    let base = CampaignSpec::new("patient-profile", "health")
        .goal(
            Goal::new(Capability::Classification)
                .param("target", "sex")
                .param("features", "age,visits,cost")
                .objective(Indicator::Accuracy, Target::AtLeast(0.4)),
        )
        .objective(Indicator::RuntimeMs, Target::AtMost(120_000.0))
        .prefer(Preferences::cost_first())
        .with_seed(43);
    Challenge {
        id: "health-insight",
        scenario_id: "healthcare-records",
        title: "Profile the patient population",
        brief: "Clinical planning wants a model of which demographic drives \
                visit volume and cost. Models differ in accuracy and spend; \
                scaling the features first can help some of them.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "model",
                prompt: "Which classifier family?",
                options: vec![
                    ChoiceOption {
                        id: "bayes",
                        label: "Naive Bayes (fast, independence-assuming)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "analytics.naivebayes".into(),
                        }],
                    },
                    ChoiceOption {
                        id: "tree",
                        label: "Decision tree (dearer, captures interactions)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "analytics.tree".into(),
                        }],
                    },
                ],
            },
            ChoicePoint {
                id: "prep",
                prompt: "Scale the features first?",
                options: vec![
                    ChoiceOption {
                        id: "raw",
                        label: "Use raw features",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "scaled",
                        label: "Z-score the features",
                        edits: vec![SpecEdit::InsertGoal {
                            index: 0,
                            capability: Capability::Normalization,
                            params: vec![("columns".into(), "age,visits,cost".into())],
                            pin: Some("prep.normalize.zscore".into()),
                        }],
                    },
                ],
            },
        ],
        reference_choices: vec!["tree", "raw"],
    }
}

fn fraud_exposure() -> Challenge {
    let base = CampaignSpec::new("fraud-exposure", "transactions")
        .goal(Goal::new(Capability::Filtering).param("predicate", "amount > 400"))
        .goal(
            Goal::new(Capability::Aggregation)
                .param("group_by", "channel")
                .param("agg", "sum:amount:exposure,count:txn_id:txns"),
        )
        .goal(
            Goal::new(Capability::Reporting)
                .pin("viz.report.table")
                .param("limit", "10"),
        )
        .objective(Indicator::RuntimeMs, Target::AtMost(120_000.0))
        .objective(Indicator::Coverage, Target::AtLeast(0.99))
        .with_seed(47);
    Challenge {
        id: "fraud-exposure",
        scenario_id: "fraud-stream",
        title: "How exposed are we, right now?",
        brief: "Risk wants a running total of high-value transaction exposure \
                per channel. Transactions stream in arrival order, but some \
                carry event times a minute behind; processing them as one \
                batch hides that, processing them continuously forces a \
                choice about what to do with the stragglers.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "regime",
                prompt: "One batch over the log, or 2-second micro-batches?",
                options: vec![
                    ChoiceOption {
                        id: "batch",
                        label: "One batch run",
                        edits: vec![SpecEdit::SetMode(ProcessingMode::Batch)],
                    },
                    ChoiceOption {
                        id: "stream",
                        label: "Continuous 2s windows",
                        edits: vec![SpecEdit::SetMode(ProcessingMode::Stream {
                            window_ms: 2_000,
                        })],
                    },
                ],
            },
            ChoicePoint {
                id: "late",
                prompt: "A slice of events arrives behind the watermark. Keep or drop them?",
                options: vec![
                    ChoiceOption {
                        id: "absorb",
                        label: "Fold late events in (complete, revisable totals)",
                        edits: vec![SpecEdit::SetStreamOptions(StreamOptions {
                            allowed_lateness_ms: 500,
                            late_policy: LateDataPolicy::Absorb,
                            buffer: 4,
                        })],
                    },
                    ChoiceOption {
                        id: "drop",
                        label: "Drop late events (stable totals, undercounted)",
                        edits: vec![SpecEdit::SetStreamOptions(StreamOptions {
                            allowed_lateness_ms: 500,
                            late_policy: LateDataPolicy::Drop,
                            buffer: 4,
                        })],
                    },
                ],
            },
        ],
        reference_choices: vec!["stream", "absorb"],
    }
}

fn fraud_spikes() -> Challenge {
    let base = CampaignSpec::new("fraud-spikes", "transactions")
        .goal(
            Goal::new(Capability::AnomalyDetection)
                .param("column", "amount")
                .param("threshold", "4.0")
                .param("window", "64"),
        )
        .goal(Goal::new(Capability::Reporting).pin("viz.report.summary"))
        .objective(Indicator::RuntimeMs, Target::AtMost(120_000.0))
        .with_seed(53);
    Challenge {
        id: "fraud-spikes",
        scenario_id: "fraud-stream",
        title: "Flag the twelve-times transactions",
        brief: "Fraudulent card transactions run an order of magnitude above \
                an account's normal spend, but normal spend itself varies by \
                merchant and hour. A detector keyed to the global average \
                will miss fraud hidden under big-ticket merchants — or page \
                the on-call for every holiday booking.",
        base,
        choice_points: vec![
            ChoicePoint {
                id: "detector",
                prompt: "Compare against the global average, or the recent window?",
                options: vec![
                    ChoiceOption {
                        id: "global",
                        label: "Global z-score (cheap)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "analytics.anomaly.zscore".into(),
                        }],
                    },
                    ChoiceOption {
                        id: "rolling",
                        label: "Rolling window (spend-pattern-aware)",
                        edits: vec![SpecEdit::PinService {
                            goal: 0,
                            service: "analytics.anomaly.rolling".into(),
                        }],
                    },
                ],
            },
            ChoicePoint {
                id: "sensitivity",
                prompt: "How sensitive should the alarm be?",
                options: vec![
                    ChoiceOption {
                        id: "balanced",
                        label: "4 standard deviations",
                        edits: vec![],
                    },
                    ChoiceOption {
                        id: "paranoid",
                        label: "2.5 standard deviations (more alerts)",
                        edits: vec![SpecEdit::SetParam {
                            goal: 0,
                            key: "threshold".into(),
                            value: "2.5".into(),
                        }],
                    },
                ],
            },
        ],
        reference_choices: vec!["rolling", "balanced"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario;
    use toreador_core::compile::Bdaas;

    #[test]
    fn library_covers_all_verticals_with_two_each() {
        let all = challenges();
        assert_eq!(all.len(), 8);
        for s in crate::scenario::scenarios() {
            let n = all.iter().filter(|c| c.scenario_id == s.id).count();
            assert_eq!(n, 2, "scenario {} has {n} challenges", s.id);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(challenge("ecomm-revenue").is_ok());
        assert!(challenge("nope").is_err());
    }

    #[test]
    fn every_choice_vector_of_every_challenge_compiles() {
        let bdaas = Bdaas::new();
        for c in challenges() {
            let scen = scenario(c.scenario_id).unwrap();
            let schema = scen.schema();
            for vector in c.all_choice_vectors() {
                let spec = c.instantiate(&vector).unwrap();
                let compiled = bdaas.compile(&spec, &schema, scen.default_rows);
                assert!(
                    compiled.is_ok(),
                    "challenge {} vector {vector:?} failed: {}",
                    c.id,
                    compiled.err().map(|e| e.to_string()).unwrap_or_default()
                );
            }
        }
    }

    #[test]
    fn reference_vectors_are_valid() {
        for c in challenges() {
            assert_eq!(c.reference_choices.len(), c.choice_points.len(), "{}", c.id);
            assert!(c.instantiate(&c.reference_vector()).is_ok(), "{}", c.id);
        }
    }

    #[test]
    fn every_challenge_has_real_choices() {
        for c in challenges() {
            assert!(
                c.choice_points.len() >= 2,
                "{} has too few choice points",
                c.id
            );
            for p in &c.choice_points {
                assert!(p.options.len() >= 2, "{}::{} has one option", c.id, p.id);
            }
            // Design space is at least 4 alternatives.
            assert!(c.all_choice_vectors().len() >= 4);
        }
    }

    #[test]
    fn compliance_routes_differ_in_output_shape() {
        let bdaas = Bdaas::new();
        let c = challenge("health-compliance").unwrap();
        let scen = scenario(c.scenario_id).unwrap();
        let data = scen.generate(600, 5);
        let aux = scen.auxiliary();
        let anon_spec = c
            .instantiate(&vec!["anonymise".into(), "standard".into()])
            .unwrap();
        let dp_spec = c
            .instantiate(&vec!["dp".into(), "standard".into()])
            .unwrap();
        let anon = bdaas
            .run(
                &bdaas.compile(&anon_spec, data.schema(), 600).unwrap(),
                data.clone(),
                &aux,
            )
            .unwrap();
        let dp = bdaas
            .run(
                &bdaas.compile(&dp_spec, data.schema(), 600).unwrap(),
                data,
                &aux,
            )
            .unwrap();
        assert!(anon.output.schema().contains("age"), "record-level release");
        assert!(
            dp.output.schema().contains("noisy_sum"),
            "aggregate release"
        );
        assert!(anon.post_verdict.as_ref().unwrap().compliant);
        assert!(dp.post_verdict.as_ref().unwrap().compliant);
    }

    #[test]
    fn fraud_stream_run_accounts_for_late_data() {
        let bdaas = Bdaas::new();
        let c = challenge("fraud-exposure").unwrap();
        let scen = scenario(c.scenario_id).unwrap();
        let data = scen.generate(3_000, 9);
        let aux = scen.auxiliary();
        let run = |vector: Vec<String>| {
            let spec = c.instantiate(&vector).unwrap();
            let compiled = bdaas.compile(&spec, data.schema(), 3_000).unwrap();
            bdaas.run(&compiled, data.clone(), &aux).unwrap()
        };
        let absorb = run(vec!["stream".into(), "absorb".into()]);
        let dropped = run(vec!["stream".into(), "drop".into()]);
        let totals = |outcome: &toreador_core::compile::CampaignOutcome| {
            outcome.engine_traces.iter().fold(
                toreador_dataflow::trace::StreamTotals::default(),
                |acc, t| acc.merge(&t.stream_totals()),
            )
        };
        let ta = totals(&absorb);
        let td = totals(&dropped);
        assert!(ta.batches_acked > 0, "continuous loop journalled acks");
        // The generator plants ~5% of rows a minute behind their arrival
        // slot; with 500 ms allowed lateness every one of them is late.
        assert!(ta.late_absorbed > 0, "absorb counts late rows: {ta:?}");
        assert_eq!(ta.late_dropped, 0);
        assert!(td.late_dropped > 0, "drop counts late rows: {td:?}");
        assert_eq!(td.late_absorbed, 0);
        // Same stream, same watermark policy: identical late populations.
        assert_eq!(ta.late_absorbed, td.late_dropped);
    }

    #[test]
    fn briefs_are_substantial() {
        for c in challenges() {
            assert!(c.brief.len() > 100, "{} brief too thin", c.id);
        }
    }
}
