//! Challenges: business requirements plus explicit choice points.
//!
//! §3: scenarios are "organised in a set of challenges, where the trainees
//! are requested to identify alternative options, and investigate the
//! consequences of their choices". A [`Challenge`] carries a base campaign
//! (the parts of the design that are fixed) and a list of [`ChoicePoint`]s
//! — the design dimensions left open. A trainee answers with a
//! [`ChoiceVector`]; [`Challenge::instantiate`] welds the answers into a
//! runnable [`CampaignSpec`].

use toreador_catalog::matching::Preferences;
use toreador_core::declarative::{CampaignSpec, ProcessingMode, StreamOptions};

use crate::error::{LabsError, Result};

/// A single edit one choice option applies to the base campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecEdit {
    /// Pin goal `goal` to a specific catalogue service.
    PinService { goal: usize, service: String },
    /// Set (or override) a goal parameter.
    SetParam {
        goal: usize,
        key: String,
        value: String,
    },
    /// Remove a goal parameter.
    RemoveParam { goal: usize, key: String },
    /// Switch the preference profile.
    SetPreference(Preferences),
    /// Switch processing mode.
    SetMode(ProcessingMode),
    /// Set the continuous-streaming knobs (lateness, late policy, buffer).
    SetStreamOptions(StreamOptions),
    /// Set worker parallelism.
    SetParallelism(usize),
    /// Set the task retry budget.
    SetRetries(u32),
    /// Insert a sampling goal at the front of the pipeline.
    PrependSample { fraction: f64 },
    /// Insert a new goal at `index`.
    InsertGoal {
        index: usize,
        capability: toreador_catalog::descriptor::Capability,
        params: Vec<(String, String)>,
        pin: Option<String>,
    },
    /// Replace goal `goal` wholesale.
    ReplaceGoal {
        goal: usize,
        capability: toreador_catalog::descriptor::Capability,
        params: Vec<(String, String)>,
        pin: Option<String>,
    },
    /// Delete goal `goal` (later edits see the shifted indices).
    RemoveGoal { goal: usize },
}

impl SpecEdit {
    fn apply(&self, spec: &mut CampaignSpec) -> Result<()> {
        let goal_count = spec.goals.len();
        let check = |g: usize| {
            if g >= goal_count {
                Err(LabsError::BadChoice(format!(
                    "edit targets goal {g}, campaign has {goal_count}"
                )))
            } else {
                Ok(())
            }
        };
        match self {
            SpecEdit::PinService { goal, service } => {
                check(*goal)?;
                spec.goals[*goal].pinned_service = Some(service.clone());
            }
            SpecEdit::SetParam { goal, key, value } => {
                check(*goal)?;
                spec.goals[*goal].params.insert(key.clone(), value.clone());
            }
            SpecEdit::RemoveParam { goal, key } => {
                check(*goal)?;
                spec.goals[*goal].params.remove(key);
            }
            SpecEdit::SetPreference(p) => spec.preferences = *p,
            SpecEdit::SetMode(m) => spec.mode = *m,
            SpecEdit::SetStreamOptions(o) => spec.stream = *o,
            SpecEdit::SetParallelism(n) => spec.parallelism = Some(*n),
            SpecEdit::SetRetries(n) => spec.max_task_retries = Some(*n),
            SpecEdit::PrependSample { fraction } => {
                let sample = toreador_core::declarative::Goal::new(
                    toreador_catalog::descriptor::Capability::Sampling,
                )
                .param("fraction", fraction.to_string());
                spec.goals.insert(0, sample);
            }
            SpecEdit::InsertGoal {
                index,
                capability,
                params,
                pin,
            } => {
                if *index > goal_count {
                    return Err(LabsError::BadChoice(format!(
                        "insert at {index}, campaign has {goal_count} goals"
                    )));
                }
                let mut g = toreador_core::declarative::Goal::new(*capability);
                for (k, v) in params {
                    g.params.insert(k.clone(), v.clone());
                }
                g.pinned_service = pin.clone();
                spec.goals.insert(*index, g);
            }
            SpecEdit::ReplaceGoal {
                goal,
                capability,
                params,
                pin,
            } => {
                check(*goal)?;
                let mut g = toreador_core::declarative::Goal::new(*capability);
                for (k, v) in params {
                    g.params.insert(k.clone(), v.clone());
                }
                g.pinned_service = pin.clone();
                // Keep the original goal's objectives: the business target
                // does not change because the technique did.
                g.objectives = spec.goals[*goal].objectives.clone();
                spec.goals[*goal] = g;
            }
            SpecEdit::RemoveGoal { goal } => {
                check(*goal)?;
                spec.goals.remove(*goal);
            }
        }
        Ok(())
    }
}

/// One selectable option at a choice point.
#[derive(Debug, Clone)]
pub struct ChoiceOption {
    pub id: &'static str,
    /// What the trainee reads.
    pub label: &'static str,
    pub edits: Vec<SpecEdit>,
}

/// One open design dimension.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    pub id: &'static str,
    /// The design question, business-phrased.
    pub prompt: &'static str,
    pub options: Vec<ChoiceOption>,
}

/// A complete challenge.
#[derive(Debug, Clone)]
pub struct Challenge {
    pub id: &'static str,
    pub scenario_id: &'static str,
    pub title: &'static str,
    /// Requirements "described from a business perspective" (§3).
    pub brief: &'static str,
    /// The fixed part of the design.
    pub base: CampaignSpec,
    pub choice_points: Vec<ChoicePoint>,
    /// The option ids of the sanctioned "success story" solution.
    pub reference_choices: Vec<&'static str>,
}

/// A trainee's answers: one option id per choice point, in order.
pub type ChoiceVector = Vec<String>;

impl Challenge {
    /// Weld a choice vector into a runnable campaign.
    pub fn instantiate(&self, choices: &ChoiceVector) -> Result<CampaignSpec> {
        if choices.len() != self.choice_points.len() {
            return Err(LabsError::BadChoice(format!(
                "challenge {} has {} choice points, got {} answers",
                self.id,
                self.choice_points.len(),
                choices.len()
            )));
        }
        let mut spec = self.base.clone();
        for (point, answer) in self.choice_points.iter().zip(choices) {
            let option = point
                .options
                .iter()
                .find(|o| o.id == answer)
                .ok_or_else(|| {
                    LabsError::BadChoice(format!(
                        "choice point {:?} has no option {answer:?} (options: {:?})",
                        point.id,
                        point.options.iter().map(|o| o.id).collect::<Vec<_>>()
                    ))
                })?;
            for edit in &option.edits {
                edit.apply(&mut spec)?;
            }
        }
        Ok(spec)
    }

    /// The sanctioned reference solution as a choice vector.
    pub fn reference_vector(&self) -> ChoiceVector {
        self.reference_choices
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Every possible choice vector (the full design space of the
    /// challenge). Sizes are intentionally small — challenges expose 2-3
    /// options per point.
    pub fn all_choice_vectors(&self) -> Vec<ChoiceVector> {
        let mut vectors: Vec<ChoiceVector> = vec![Vec::new()];
        for point in &self.choice_points {
            let mut next = Vec::with_capacity(vectors.len() * point.options.len());
            for v in &vectors {
                for o in &point.options {
                    let mut nv = v.clone();
                    nv.push(o.id.to_string());
                    next.push(nv);
                }
            }
            vectors = next;
        }
        vectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_catalog::descriptor::Capability;
    use toreador_core::declarative::Goal;

    fn challenge() -> Challenge {
        let base = CampaignSpec::new("test", "clicks")
            .goal(Goal::new(Capability::Filtering).param("predicate", "price > 1"));
        Challenge {
            id: "t1",
            scenario_id: "ecommerce-clicks",
            title: "Test",
            brief: "Test brief",
            base,
            choice_points: vec![
                ChoicePoint {
                    id: "scope",
                    prompt: "Full data or a sample?",
                    options: vec![
                        ChoiceOption {
                            id: "full",
                            label: "All rows",
                            edits: vec![],
                        },
                        ChoiceOption {
                            id: "sample",
                            label: "10% sample",
                            edits: vec![SpecEdit::PrependSample { fraction: 0.1 }],
                        },
                    ],
                },
                ChoicePoint {
                    id: "pref",
                    prompt: "Optimise for?",
                    options: vec![
                        ChoiceOption {
                            id: "cheap",
                            label: "Cost",
                            edits: vec![SpecEdit::SetPreference(Preferences::cost_first())],
                        },
                        ChoiceOption {
                            id: "best",
                            label: "Quality",
                            edits: vec![SpecEdit::SetPreference(Preferences::quality_first())],
                        },
                    ],
                },
            ],
            reference_choices: vec!["full", "cheap"],
        }
    }

    #[test]
    fn instantiate_applies_edits_in_order() {
        let c = challenge();
        let spec = c
            .instantiate(&vec!["sample".into(), "best".into()])
            .unwrap();
        assert_eq!(spec.goals.len(), 2, "sample goal prepended");
        assert_eq!(spec.goals[0].capability, Capability::Sampling);
        assert_eq!(spec.preferences, Preferences::quality_first());
        // The no-edit option leaves the base untouched.
        let plain = c.instantiate(&c.reference_vector()).unwrap();
        assert_eq!(plain.goals.len(), 1);
    }

    #[test]
    fn bad_vectors_rejected() {
        let c = challenge();
        assert!(c.instantiate(&vec!["full".into()]).is_err(), "wrong arity");
        let err = c
            .instantiate(&vec!["full".into(), "fastest".into()])
            .unwrap_err();
        assert!(err.to_string().contains("fastest"));
    }

    #[test]
    fn all_choice_vectors_enumerates_cartesian_product() {
        let c = challenge();
        let all = c.all_choice_vectors();
        assert_eq!(all.len(), 4);
        assert!(all.contains(&vec!["full".to_string(), "cheap".to_string()]));
        assert!(all.contains(&vec!["sample".to_string(), "best".to_string()]));
        // Reference vector is one of them.
        assert!(all.contains(&c.reference_vector()));
    }

    #[test]
    fn edits_validate_goal_indices() {
        let mut spec = CampaignSpec::new("t", "d").goal(Goal::new(Capability::Filtering));
        let bad = SpecEdit::SetParam {
            goal: 5,
            key: "x".into(),
            value: "1".into(),
        };
        assert!(bad.apply(&mut spec).is_err());
        let ok = SpecEdit::SetParam {
            goal: 0,
            key: "x".into(),
            value: "1".into(),
        };
        ok.apply(&mut spec).unwrap();
        assert_eq!(spec.goals[0].get_param("x"), Some("1"));
        SpecEdit::RemoveParam {
            goal: 0,
            key: "x".into(),
        }
        .apply(&mut spec)
        .unwrap();
        assert_eq!(spec.goals[0].get_param("x"), None);
    }
}
