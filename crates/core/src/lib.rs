//! # toreador-core
//!
//! The paper's primary contribution: a model-driven Big Data
//! Analytics-as-a-Service (BDAaaS) compiler. A campaign is stated
//! *declaratively* (business goals, indicators, objectives, regulatory
//! constraints), then transformed mechanically:
//!
//! ```text
//! DSL text ──parse──▶ CampaignSpec          (declarative model)
//!            check──▶ consistency findings
//!             plan──▶ ProceduralModel       (service composition)
//!             bind──▶ DeploymentModel       (platform + engine config)
//!            check──▶ PrivacyManifest + compliance verdict
//!              run──▶ CampaignOutcome       (output, indicators, audit)
//! ```
//!
//! * [`declarative`] — goals, indicators, objectives ([`declarative::CampaignSpec`]);
//! * [`dsl`] — the campaign language and the predicate expression parser;
//! * [`consistency`] — interference detection between design choices;
//! * [`procedural`] — goal→service planning with full choice provenance;
//! * [`deployment`] — platform binding and cost estimation;
//! * [`service_impl`] — executable bodies for every catalogue service;
//! * [`compile`] — [`compile::Bdaas`], the end-to-end function;
//! * [`alternatives`] — one-change design neighbours (the Labs' "alternative
//!   options").
//!
//! ## Example
//!
//! ```
//! use toreador_core::prelude::*;
//! use toreador_data::generate::clickstream;
//!
//! let bdaas = Bdaas::new();
//! let spec = bdaas.parse(r#"
//! campaign revenue on clicks
//! prefer cost
//! goal filtering predicate="action == 'purchase'"
//! goal aggregation group_by=country agg=sum:price:revenue
//! "#).unwrap();
//! let data = clickstream(1_000, 7);
//! let compiled = bdaas.compile(&spec, data.schema(), data.num_rows()).unwrap();
//! let outcome = bdaas.run(&compiled, data, &Default::default()).unwrap();
//! assert!(outcome.indicator(Indicator::Throughput).unwrap() > 0.0);
//! ```

pub mod alternatives;
pub mod compile;
pub mod consistency;
pub mod declarative;
pub mod deployment;
pub mod dsl;
pub mod error;
pub mod procedural;
pub mod service_impl;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::alternatives::{enumerate, Alternative, Dimension};
    pub use crate::compile::{
        Bdaas, BoundaryKillSpec, CampaignOutcome, CompiledCampaign, ObjectiveOutcome, RecoverySpec,
    };
    pub use crate::consistency::{check, is_consistent, Finding, Severity};
    pub use crate::declarative::{
        CampaignSpec, Goal, Indicator, Objective, ProcessingMode, Target,
    };
    pub use crate::deployment::{builtin_platforms, DeploymentModel, PlatformDescriptor};
    pub use crate::dsl::{parse_campaign, parse_expr};
    pub use crate::error::{CoreError, Result as CoreResult};
    pub use crate::procedural::{
        plan, ChoiceRecord, Composition, ProceduralModel, ServiceInvocation,
    };
    pub use crate::service_impl::{execute_composition, PipelineState, ServiceContext};
}
