//! Consistency checking of declarative models.
//!
//! §3 of the paper: the Labs teach "the interrelations and interferences of
//! the different design options". The consistency checker is where those
//! interferences become machine-detected *before* compilation: conflicting
//! objectives, mode/service mismatches, privacy/accuracy tensions, and
//! references to columns the dataset does not have.

use std::fmt;

use toreador_catalog::registry::Registry;
use toreador_data::schema::Schema;

use crate::declarative::{CampaignSpec, Indicator, ProcessingMode, Target};
use crate::dsl::parse_column_list;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Compilation must refuse.
    Error,
    /// Compilation proceeds, but the trainee should know.
    Warning,
}

/// One consistency finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub severity: Severity,
    pub message: String,
}

impl Finding {
    fn error(message: impl Into<String>) -> Self {
        Finding {
            severity: Severity::Error,
            message: message.into(),
        }
    }

    fn warning(message: impl Into<String>) -> Self {
        Finding {
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "[{tag}] {}", self.message)
    }
}

/// Check a campaign against the catalogue and (optionally) the dataset
/// schema. Returns all findings; callers refuse to compile on any Error.
pub fn check(spec: &CampaignSpec, registry: &Registry, schema: Option<&Schema>) -> Vec<Finding> {
    let mut findings = Vec::new();

    // ---- objective contradictions: AtLeast(x) & AtMost(y) with x > y.
    let all = spec.all_objectives();
    for (i, a) in all.iter().enumerate() {
        for b in &all[i + 1..] {
            if a.indicator != b.indicator {
                continue;
            }
            if let (Target::AtLeast(lo), Target::AtMost(hi)) = (a.target, b.target) {
                if lo > hi {
                    findings.push(Finding::error(format!(
                        "contradictory objectives on {}: >= {lo} and <= {hi}",
                        a.indicator
                    )));
                }
            }
            if let (Target::AtMost(hi), Target::AtLeast(lo)) = (a.target, b.target) {
                if lo > hi {
                    findings.push(Finding::error(format!(
                        "contradictory objectives on {}: >= {lo} and <= {hi}",
                        a.indicator
                    )));
                }
            }
        }
    }

    // ---- out-of-range targets on bounded indicators.
    for o in &all {
        if matches!(
            o.indicator,
            Indicator::Accuracy | Indicator::Coverage | Indicator::PrivacyRisk
        ) {
            let v = match o.target {
                Target::AtLeast(v) | Target::AtMost(v) => v,
            };
            if !(0.0..=1.0).contains(&v) {
                findings.push(Finding::error(format!(
                    "objective {} {} is outside the indicator's [0,1] range",
                    o.indicator, o.target
                )));
            }
        }
    }

    // ---- goals must be satisfiable by the catalogue.
    for goal in &spec.goals {
        if let Some(pinned) = &goal.pinned_service {
            match registry.get(pinned) {
                Err(_) => {
                    findings.push(Finding::error(format!(
                        "goal pins unknown service {pinned:?}"
                    )));
                    continue;
                }
                Ok(svc) => {
                    if svc.capability != goal.capability {
                        findings.push(Finding::error(format!(
                            "goal capability {:?} does not match pinned service {pinned:?} ({:?})",
                            goal.capability, svc.capability
                        )));
                    }
                    if matches!(spec.mode, ProcessingMode::Stream { .. })
                        && !svc.latency.supports_stream()
                    {
                        findings.push(Finding::error(format!(
                            "stream-mode campaign pins batch-only service {pinned:?}"
                        )));
                    }
                }
            }
        } else {
            let options = registry.by_capability(goal.capability);
            if options.is_empty() {
                findings.push(Finding::error(format!(
                    "no catalogue service provides {:?}",
                    goal.capability
                )));
            } else if matches!(spec.mode, ProcessingMode::Stream { .. })
                && !options.iter().any(|s| s.latency.supports_stream())
            {
                findings.push(Finding::error(format!(
                    "stream-mode campaign, but no {:?} service supports streaming",
                    goal.capability
                )));
            }
        }
    }

    // ---- privacy/accuracy interference (the canonical Labs lesson).
    let anonymizes = spec
        .goals
        .iter()
        .any(|g| g.capability == toreador_catalog::descriptor::Capability::Anonymization);
    let high_accuracy = all.iter().any(|o| {
        o.indicator == Indicator::Accuracy && matches!(o.target, Target::AtLeast(v) if v > 0.9)
    });
    if anonymizes && high_accuracy {
        findings.push(Finding::warning(
            "campaign both anonymises its data and demands accuracy > 0.9; \
             generalisation/suppression typically costs accuracy — consider \
             relaxing one of the two"
                .to_owned(),
        ));
    }

    // ---- a policy without any protective goal (likely to fail compliance).
    if let Some(policy) = &spec.policy {
        let has_protection = anonymizes
            || spec.goals.iter().any(|g| {
                g.capability == toreador_catalog::descriptor::Capability::PrivateAggregation
            });
        if policy.required_k().is_some() && !has_protection {
            findings.push(Finding::warning(format!(
                "policy {:?} requires k-anonymity but the campaign declares no \
                 anonymisation or DP goal; compilation will add nothing automatically",
                policy.name
            )));
        }
        // Policy/DSL epsilon contradiction.
        if let Some(ceiling) = policy.max_epsilon() {
            for g in &spec.goals {
                if let Some(eps) = g.get_param("epsilon").and_then(|e| e.parse::<f64>().ok()) {
                    if eps > ceiling {
                        findings.push(Finding::error(format!(
                            "goal requests ε={eps} but policy {:?} caps ε at {ceiling}",
                            policy.name
                        )));
                    }
                }
            }
        }
    }

    // ---- schema checks (column references in well-known params).
    if let Some(schema) = schema {
        for goal in &spec.goals {
            for key in ["features", "group_by", "columns", "keys"] {
                if let Some(cols) = goal.get_param(key) {
                    for c in parse_column_list(cols) {
                        if !schema.contains(&c) {
                            findings.push(Finding::error(format!(
                                "goal parameter {key} references unknown column {c:?}"
                            )));
                        }
                    }
                }
            }
            for key in ["target", "column", "ts", "id", "item"] {
                if let Some(c) = goal.get_param(key) {
                    if !schema.contains(c) {
                        findings.push(Finding::error(format!(
                            "goal parameter {key} references unknown column {c:?}"
                        )));
                    }
                }
            }
        }
        if let Some(policy) = &spec.policy {
            match policy.validate(schema) {
                Ok(()) => {}
                // A classified column absent from the dataset is safe (it
                // cannot leak what is not there) — warn, don't refuse.
                Err(toreador_privacy::error::PrivacyError::UnknownColumn(c)) => {
                    findings.push(Finding::warning(format!(
                        "policy classifies column {c:?} which the dataset does not have"
                    )));
                }
                Err(e) => {
                    findings.push(Finding::error(format!("policy invalid for dataset: {e}")));
                }
            }
        }
    }

    // ---- streaming needs a timestamp column.
    if let (ProcessingMode::Stream { window_ms }, Some(schema)) = (spec.mode, schema) {
        if window_ms <= 0 {
            findings.push(Finding::error(format!(
                "stream window must be positive, got {window_ms}"
            )));
        }
        if !schema.contains("ts") {
            findings.push(Finding::error(
                "stream mode requires a `ts` timestamp column in the dataset".to_owned(),
            ));
        }
    }

    findings
}

/// True if no Error-severity findings are present.
pub fn is_consistent(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.severity != Severity::Error)
}

/// Render findings for error messages.
pub fn render(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(Finding::to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declarative::Goal;
    use toreador_catalog::builtin::standard_catalog;
    use toreador_catalog::descriptor::Capability;
    use toreador_data::generate::{clickstream_schema, health_schema, telemetry_schema};
    use toreador_privacy::policy::{healthcare_default, Requirement};

    fn ok_spec() -> CampaignSpec {
        CampaignSpec::new("t", "clicks")
            .goal(Goal::new(Capability::Filtering).param("predicate", "price > 1"))
    }

    #[test]
    fn clean_spec_has_no_findings() {
        let r = standard_catalog();
        let f = check(&ok_spec(), &r, Some(&clickstream_schema()));
        assert!(f.is_empty(), "{f:?}");
        assert!(is_consistent(&f));
    }

    #[test]
    fn contradictory_objectives_detected() {
        let r = standard_catalog();
        let spec = ok_spec()
            .objective(Indicator::RuntimeMs, Target::AtLeast(1000.0))
            .objective(Indicator::RuntimeMs, Target::AtMost(10.0));
        let f = check(&spec, &r, None);
        assert!(!is_consistent(&f));
        assert!(render(&f).contains("contradictory"));
    }

    #[test]
    fn bounded_indicator_range_enforced() {
        let r = standard_catalog();
        let spec = ok_spec().objective(Indicator::Accuracy, Target::AtLeast(1.5));
        let f = check(&spec, &r, None);
        assert!(!is_consistent(&f));
    }

    #[test]
    fn pinned_service_must_exist_and_match() {
        let r = standard_catalog();
        let spec = CampaignSpec::new("t", "d")
            .goal(Goal::new(Capability::Clustering).pin("no.such.service"));
        assert!(!is_consistent(&check(&spec, &r, None)));
        let spec = CampaignSpec::new("t", "d")
            .goal(Goal::new(Capability::Clustering).pin("analytics.tree"));
        let f = check(&spec, &r, None);
        assert!(render(&f).contains("does not match"));
    }

    #[test]
    fn stream_mode_requires_stream_services_and_ts() {
        let r = standard_catalog();
        // Apriori has no streaming implementation.
        let spec = CampaignSpec::new("t", "d")
            .mode(ProcessingMode::Stream { window_ms: 1000 })
            .goal(Goal::new(Capability::AssociationRules));
        let f = check(&spec, &r, None);
        assert!(!is_consistent(&f), "{f:?}");
        // Telemetry has ts; health records do not.
        let spec = CampaignSpec::new("t", "d")
            .mode(ProcessingMode::Stream { window_ms: 1000 })
            .goal(Goal::new(Capability::Aggregation).param("group_by", "region"));
        assert!(is_consistent(&check(&spec, &r, Some(&telemetry_schema()))));
        assert!(!is_consistent(&check(&spec, &r, Some(&health_schema()))));
    }

    #[test]
    fn privacy_accuracy_tension_is_a_warning() {
        let r = standard_catalog();
        let spec = CampaignSpec::new("t", "d")
            .goal(Goal::new(Capability::Anonymization).param("k", "5"))
            .objective(Indicator::Accuracy, Target::AtLeast(0.95));
        let f = check(&spec, &r, None);
        assert!(is_consistent(&f), "warning only");
        assert!(f.iter().any(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn policy_epsilon_ceiling_enforced() {
        let r = standard_catalog();
        let policy = healthcare_default().require(Requirement::MaxDpEpsilon(1.0));
        let spec = CampaignSpec::new("t", "d")
            .with_policy(policy)
            .goal(Goal::new(Capability::PrivateAggregation).param("epsilon", "3.0"));
        let f = check(&spec, &r, None);
        assert!(!is_consistent(&f));
        assert!(render(&f).contains("caps"));
    }

    #[test]
    fn policy_without_protection_warns() {
        let r = standard_catalog();
        let spec = CampaignSpec::new("t", "d")
            .with_policy(healthcare_default())
            .goal(Goal::new(Capability::Aggregation).param("group_by", "age"));
        let f = check(&spec, &r, None);
        assert!(f.iter().any(|x| x.severity == Severity::Warning), "{f:?}");
    }

    #[test]
    fn unknown_columns_detected_with_schema() {
        let r = standard_catalog();
        let spec = CampaignSpec::new("t", "clicks").goal(
            Goal::new(Capability::Aggregation)
                .param("group_by", "country,galaxy")
                .param("agg", "sum:price:rev"),
        );
        let f = check(&spec, &r, Some(&clickstream_schema()));
        assert!(!is_consistent(&f));
        assert!(render(&f).contains("galaxy"));
        // Without a schema the same spec passes (checked later at compile).
        assert!(is_consistent(&check(&spec, &r, None)));
    }
}
