//! Alternative-option enumeration.
//!
//! §3 of the paper: trainees "are requested to identify alternative
//! options, and investigate the consequences of their choices". This module
//! mechanises the first half: given a campaign, enumerate the neighbouring
//! designs — one change at a time — that the trainee could have made:
//!
//! * a different catalogue service for some goal (from the procedural
//!   model's rejected-candidates record);
//! * the opposite preference profile;
//! * batch instead of stream (or vice versa, when a `ts` column exists);
//! * a different parallelism;
//! * stronger/weaker privacy parameters (k, ε).
//!
//! Each alternative is a full [`CampaignSpec`], so the Labs can compile and
//! run it and diff the outcome against the original — the "consequences".

use toreador_catalog::matching::Preferences;
use toreador_catalog::registry::Registry;

use crate::declarative::{CampaignSpec, ProcessingMode};
use crate::error::Result;
use crate::procedural::plan;

/// One alternative design.
#[derive(Debug, Clone)]
pub struct Alternative {
    /// Human-readable description of the single change.
    pub description: String,
    /// Which design dimension the change touches.
    pub dimension: Dimension,
    pub spec: CampaignSpec,
}

/// The design dimensions the Labs expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dimension {
    ServiceChoice,
    Preference,
    ProcessingMode,
    Parallelism,
    PrivacyParameter,
}

/// Enumerate one-change alternatives to `spec`.
///
/// The list is deterministic and bounded: at most one alternative per
/// rejected service per goal, plus the fixed mode/preference/parallelism
/// and privacy-parameter variants that apply.
pub fn enumerate(
    spec: &CampaignSpec,
    registry: &Registry,
    dataset_has_ts: bool,
) -> Result<Vec<Alternative>> {
    let mut out = Vec::new();

    // --- service choices, from the planner's own provenance.
    let model = plan(spec, registry)?;
    for choice in &model.choices {
        for alt_id in &choice.alternatives {
            let mut alt = spec.clone();
            alt.goals[choice.goal_index].pinned_service = Some(alt_id.clone());
            out.push(Alternative {
                description: format!(
                    "goal {} uses {} instead of {}",
                    choice.goal_index, alt_id, choice.chosen
                ),
                dimension: Dimension::ServiceChoice,
                spec: alt,
            });
        }
    }

    // --- preference profile.
    let flipped = if spec.preferences == Preferences::cost_first() {
        (
            "prefer quality instead of cost",
            Preferences::quality_first(),
        )
    } else {
        ("prefer cost instead of quality", Preferences::cost_first())
    };
    let mut alt = spec.clone();
    alt.preferences = flipped.1;
    // Un-pin so the preference actually has room to act.
    for g in &mut alt.goals {
        g.pinned_service = None;
    }
    out.push(Alternative {
        description: flipped.0.to_owned(),
        dimension: Dimension::Preference,
        spec: alt,
    });

    // --- processing mode.
    match spec.mode {
        ProcessingMode::Batch if dataset_has_ts => {
            let mut alt = spec.clone();
            alt.mode = ProcessingMode::Stream {
                window_ms: 3_600_000,
            };
            out.push(Alternative {
                description: "stream in 1h windows instead of batch".to_owned(),
                dimension: Dimension::ProcessingMode,
                spec: alt,
            });
        }
        ProcessingMode::Stream { .. } => {
            let mut alt = spec.clone();
            alt.mode = ProcessingMode::Batch;
            out.push(Alternative {
                description: "batch instead of stream".to_owned(),
                dimension: Dimension::ProcessingMode,
                spec: alt,
            });
        }
        _ => {}
    }

    // --- parallelism: half and double the current request.
    let current = spec.parallelism.unwrap_or(2);
    for (label, workers) in [("halve", (current / 2).max(1)), ("double", current * 2)] {
        if workers != current {
            let mut alt = spec.clone();
            alt.parallelism = Some(workers);
            out.push(Alternative {
                description: format!("{label} parallelism: {current} -> {workers} workers"),
                dimension: Dimension::Parallelism,
                spec: alt,
            });
        }
    }

    // --- privacy parameters.
    for (gi, goal) in spec.goals.iter().enumerate() {
        if let Some(k) = goal.get_param("k").and_then(|k| k.parse::<usize>().ok()) {
            for new_k in [k / 2, k * 2] {
                if new_k >= 2 && new_k != k {
                    let mut alt = spec.clone();
                    alt.goals[gi]
                        .params
                        .insert("k".to_owned(), new_k.to_string());
                    out.push(Alternative {
                        description: format!("goal {gi}: k-anonymity k={k} -> k={new_k}"),
                        dimension: Dimension::PrivacyParameter,
                        spec: alt,
                    });
                }
            }
        }
        if let Some(eps) = goal
            .get_param("epsilon")
            .and_then(|e| e.parse::<f64>().ok())
        {
            for new_eps in [eps / 2.0, eps * 2.0] {
                let mut alt = spec.clone();
                alt.goals[gi]
                    .params
                    .insert("epsilon".to_owned(), new_eps.to_string());
                out.push(Alternative {
                    description: format!("goal {gi}: DP ε={eps} -> ε={new_eps}"),
                    dimension: Dimension::PrivacyParameter,
                    spec: alt,
                });
            }
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declarative::Goal;
    use toreador_catalog::builtin::standard_catalog;
    use toreador_catalog::descriptor::Capability;

    fn spec() -> CampaignSpec {
        CampaignSpec::new("t", "health")
            .goal(
                Goal::new(Capability::Classification)
                    .param("target", "sex")
                    .param("features", "age,cost"),
            )
            .goal(
                Goal::new(Capability::Anonymization)
                    .pin("privacy.kanon")
                    .param("k", "5")
                    .param("quasi", "age,zip"),
            )
    }

    #[test]
    fn enumerates_service_alternatives_from_provenance() {
        let r = standard_catalog();
        let alts = enumerate(&spec(), &r, false).unwrap();
        let service_alts: Vec<_> = alts
            .iter()
            .filter(|a| a.dimension == Dimension::ServiceChoice)
            .collect();
        // Classification has >= 2 alternatives (logreg, nb, tree minus chosen).
        assert!(service_alts.len() >= 2, "{service_alts:?}");
        for a in &service_alts {
            // The alternative pins a different service than the original plan.
            assert!(a.description.contains("instead of"));
        }
    }

    #[test]
    fn privacy_parameters_vary_both_directions() {
        let r = standard_catalog();
        let alts = enumerate(&spec(), &r, false).unwrap();
        let ks: Vec<&str> = alts
            .iter()
            .filter(|a| a.dimension == Dimension::PrivacyParameter)
            .map(|a| a.description.as_str())
            .collect();
        assert!(ks.iter().any(|d| d.contains("k=5 -> k=2")), "{ks:?}");
        assert!(ks.iter().any(|d| d.contains("k=5 -> k=10")), "{ks:?}");
    }

    #[test]
    fn mode_alternative_requires_ts() {
        let r = standard_catalog();
        let with_ts = enumerate(&spec(), &r, true).unwrap();
        assert!(with_ts
            .iter()
            .any(|a| a.dimension == Dimension::ProcessingMode));
        let without = enumerate(&spec(), &r, false).unwrap();
        assert!(!without
            .iter()
            .any(|a| a.dimension == Dimension::ProcessingMode));
        // Streaming specs offer the batch alternative regardless (using a
        // streamable goal — a stream-mode plan over batch-only services
        // would fail to plan at all).
        let stream_spec = CampaignSpec::new("s", "tel")
            .mode(ProcessingMode::Stream { window_ms: 1000 })
            .goal(
                Goal::new(Capability::Aggregation)
                    .param("group_by", "region")
                    .param("agg", "sum:kwh:t"),
            );
        let alts = enumerate(&stream_spec, &r, true).unwrap();
        assert!(alts.iter().any(|a| a.description.contains("batch instead")));
        let _ = stream_spec;
    }

    #[test]
    fn alternatives_change_exactly_one_dimension() {
        let r = standard_catalog();
        let base = spec();
        for alt in enumerate(&base, &r, true).unwrap() {
            // Each alternative still has the same goals count and dataset.
            assert_eq!(alt.spec.goals.len(), base.goals.len());
            assert_eq!(alt.spec.dataset, base.dataset);
            assert_ne!(
                alt.spec, base,
                "alternative must differ: {}",
                alt.description
            );
        }
    }

    #[test]
    fn parallelism_variants_are_sane() {
        let r = standard_catalog();
        let base = spec().with_parallelism(4);
        let alts = enumerate(&base, &r, false).unwrap();
        let p: Vec<_> = alts
            .iter()
            .filter(|a| a.dimension == Dimension::Parallelism)
            .collect();
        assert_eq!(p.len(), 2);
        assert!(p.iter().any(|a| a.spec.parallelism == Some(2)));
        assert!(p.iter().any(|a| a.spec.parallelism == Some(8)));
    }
}
