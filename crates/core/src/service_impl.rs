//! Binding catalogue services to their implementations.
//!
//! The procedural model names services by catalogue id; this module gives
//! each id an executable body over the pipeline state. Processing services
//! run through the dataflow engine (and therefore produce real engine
//! metrics); analytics services fit models from `toreador-analytics` with
//! an internal train/test split so their quality indicators are honest
//! held-out measurements; privacy services enforce and account.

use std::collections::BTreeMap;

use toreador_analytics::prelude::*;
use toreador_data::column::Column;
use toreador_data::schema::Field;
use toreador_data::stats::summarize;
use toreador_data::table::Table;
use toreador_data::value::{DataType, Value};
use toreador_dataflow::logical::{Dataflow, JoinType};
use toreador_dataflow::metrics::RunMetrics;
use toreador_dataflow::session::{Engine, EngineConfig};
use toreador_dataflow::trace::RunTrace;
use toreador_privacy::audit::{AuditEvent, AuditLog};
use toreador_privacy::dp::LaplaceMechanism;
use toreador_privacy::kanon::{enforce_k_anonymity, Ladder, QuasiIdentifier};
use toreador_privacy::ldiv::enforce_l_diversity;

use crate::declarative::Indicator;
use crate::dsl::{parse_agg_list, parse_column_list, parse_expr};
use crate::error::{CoreError, Result};
use crate::procedural::{Composition, ServiceInvocation};

/// Mutable state threaded through a composition.
#[derive(Debug)]
pub struct PipelineState {
    /// The data flowing through the pipeline.
    pub table: Table,
    /// Rows in the campaign's original input.
    pub input_rows: usize,
    /// Text artefacts produced by reporting/mining services.
    pub reports: Vec<(String, String)>,
    /// Measured indicator values (analytics quality, ...).
    pub measured: Vec<(Indicator, f64)>,
    /// Engine metrics from processing stages.
    pub engine_metrics: Vec<RunMetrics>,
    /// Flight-recorder journals, aligned with `engine_metrics`.
    pub engine_traces: Vec<RunTrace>,
    /// Basket transactions staged by `repr.transactions`.
    pub transactions: Option<Vec<toreador_analytics::apriori::Transaction>>,
    /// Privacy bookkeeping.
    pub kanon_applied: Option<usize>,
    pub ldiv_applied: Option<usize>,
    pub dp_spent: f64,
    pub suppressed_rows: usize,
    /// False once a service replaced the record-level data with an
    /// aggregate-only release (coverage of individual records drops to 0).
    pub record_level: bool,
    pub audit: AuditLog,
}

impl PipelineState {
    pub fn new(table: Table) -> Self {
        let input_rows = table.num_rows();
        PipelineState {
            table,
            input_rows,
            reports: Vec::new(),
            measured: Vec::new(),
            engine_metrics: Vec::new(),
            engine_traces: Vec::new(),
            transactions: None,
            kanon_applied: None,
            ldiv_applied: None,
            dp_spent: 0.0,
            suppressed_rows: 0,
            record_level: true,
            audit: AuditLog::new(),
        }
    }

    fn report(&mut self, service: &str, text: impl Into<String>) {
        self.reports.push((service.to_owned(), text.into()));
    }
}

/// Immutable execution context for one pipeline run.
pub struct ServiceContext<'a> {
    /// The campaign name (for audit entries).
    pub pipeline: &'a str,
    /// Engine configuration derived by the deployment model.
    pub engine_config: EngineConfig,
    /// Auxiliary datasets available to `processing.join`.
    pub auxiliary: &'a std::collections::HashMap<String, Table>,
    /// Campaign seed for splits/DP noise.
    pub seed: u64,
    /// Checkpoint/resume/kill wiring for the crash-recovery path (None for
    /// plain runs).
    pub recovery: Option<&'a crate::compile::RecoverySpec>,
}

/// Execute a composition tree against the state.
pub fn execute_composition(
    comp: &Composition,
    ctx: &ServiceContext<'_>,
    state: &mut PipelineState,
) -> Result<()> {
    match comp {
        Composition::Invoke(inv) => invoke(inv, ctx, state),
        Composition::Sequence(parts) => {
            for p in parts {
                execute_composition(p, ctx, state)?;
            }
            Ok(())
        }
        Composition::Parallel(parts) => {
            // Branches see the same input; the first branch's table flows on.
            let input = state.table.clone();
            let mut first_table: Option<Table> = None;
            for (i, p) in parts.iter().enumerate() {
                state.table = input.clone();
                execute_composition(p, ctx, state)?;
                if i == 0 {
                    first_table = Some(state.table.clone());
                }
            }
            if let Some(t) = first_table {
                state.table = t;
            }
            Ok(())
        }
    }
}

/// Run a dataflow over the current table and replace it with the result.
fn run_flow(
    ctx: &ServiceContext<'_>,
    state: &mut PipelineState,
    build: impl FnOnce(&Engine, Dataflow) -> Result<Dataflow>,
) -> Result<()> {
    let mut config = ctx.engine_config.clone();
    if let Some(rec) = ctx.recovery {
        // Processing stages run sequentially, so the number of engine
        // results collected so far is this run's deterministic ordinal —
        // stable across a kill and its resume.
        let ordinal = state.engine_metrics.len();
        config.checkpoint = Some(toreador_dataflow::checkpoint::CheckpointSpec {
            root: rec.root.clone(),
            run_id: format!("{}/engine-{ordinal:03}", rec.run_id),
            resume: rec.resume,
        });
        if let Some(kill) = rec.kill.filter(|k| k.engine == ordinal) {
            config.resilience.chaos = config
                .resilience
                .chaos
                .clone()
                .with_boundary_kill(kill.wave, kill.mode);
        }
    }
    let mut engine = Engine::new(config);
    engine.register("__current", state.table.clone())?;
    for (name, t) in ctx.auxiliary {
        engine.register(name.clone(), t.clone())?;
    }
    let flow = build(&engine, engine.flow("__current")?)?;
    let result = engine.run(&flow)?;
    state.table = result.table;
    state.engine_metrics.push(result.metrics);
    state.engine_traces.push(result.trace);
    Ok(())
}

fn float_param(inv: &ServiceInvocation, name: &str) -> Result<f64> {
    inv.required_param(name)?
        .parse()
        .map_err(|_| CoreError::Parameter {
            service: inv.service_id.clone(),
            message: format!("parameter {name:?} must be a number"),
        })
}

fn usize_param(inv: &ServiceInvocation, name: &str) -> Result<usize> {
    inv.required_param(name)?
        .parse()
        .map_err(|_| CoreError::Parameter {
            service: inv.service_id.clone(),
            message: format!("parameter {name:?} must be a non-negative integer"),
        })
}

fn columns_param(inv: &ServiceInvocation, name: &str) -> Result<Vec<String>> {
    let cols = parse_column_list(inv.required_param(name)?);
    if cols.is_empty() {
        return Err(CoreError::Parameter {
            service: inv.service_id.clone(),
            message: format!("parameter {name:?} lists no columns"),
        });
    }
    Ok(cols)
}

/// Prepare (features, labels-as-strings) with an internal deterministic
/// train/test split.
fn supervised_split(
    state: &PipelineState,
    inv: &ServiceInvocation,
    seed: u64,
) -> Result<(Table, Table)> {
    let _ = inv;
    let (train, test) = train_test_split(&state.table, 0.25, seed)?;
    if train.num_rows() == 0 || test.num_rows() == 0 {
        return Err(CoreError::Analytics(format!(
            "dataset too small for a train/test split ({} rows)",
            state.table.num_rows()
        )));
    }
    Ok((train, test))
}

/// Binary targets for logistic regression: Bool, 0/1 numeric, or a
/// two-valued column (sorted first value -> 0).
fn binary_target(table: &Table, column: &str) -> Result<Vec<f64>> {
    let col = table
        .column(column)
        .map_err(|e| CoreError::Data(e.to_string()))?;
    let mut distinct: Vec<String> = Vec::new();
    for v in col.iter_values() {
        if v.is_null() {
            return Err(CoreError::Analytics(format!(
                "null in target column {column:?}"
            )));
        }
        let s = v.to_string();
        if !distinct.contains(&s) {
            distinct.push(s);
        }
    }
    distinct.sort();
    match distinct.len() {
        0 => Err(CoreError::Analytics("empty target column".to_owned())),
        1 | 2 => {
            let ones = distinct.last().expect("non-empty").clone();
            Ok(col
                .iter_values()
                .map(|v| {
                    if v.to_string() == ones && distinct.len() == 2 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect())
        }
        n => Err(CoreError::Analytics(format!(
            "target column {column:?} has {n} distinct values; binary classification needs 2"
        ))),
    }
}

/// Derive generalisation ladders for the named quasi-identifiers from the
/// current schema: numeric columns bin by fractions of their range, string
/// columns mask by shrinking prefixes.
fn derive_ladders(table: &Table, quasi: &[String]) -> Result<Vec<QuasiIdentifier>> {
    let mut out = Vec::with_capacity(quasi.len());
    for q in quasi {
        let field = table
            .schema()
            .field(q)
            .map_err(|e| CoreError::Data(e.to_string()))?;
        let ladder = if field.data_type.is_numeric() {
            let s = summarize(
                table
                    .column(q)
                    .map_err(|e| CoreError::Data(e.to_string()))?,
            )
            .map_err(|e| CoreError::Data(e.to_string()))?;
            let range = (s.max - s.min).max(1.0);
            Ladder::NumericBins {
                widths: vec![range / 16.0, range / 4.0, range],
            }
        } else {
            // Longest observed value fixes the prefix ladder.
            let max_len = table
                .column(q)
                .map_err(|e| CoreError::Data(e.to_string()))?
                .iter_values()
                .filter(|v| !v.is_null())
                .map(|v| v.to_string().chars().count())
                .max()
                .unwrap_or(1);
            let mut keep: Vec<usize> = Vec::new();
            let mut k = max_len.saturating_sub(2).max(1);
            while k >= 1 {
                keep.push(k);
                if k == 1 {
                    break;
                }
                k = (k / 2).max(1);
                if keep.contains(&k) {
                    break;
                }
            }
            Ladder::StringPrefix { keep }
        };
        out.push(QuasiIdentifier {
            column: q.clone(),
            ladder,
        });
    }
    Ok(out)
}

/// Dispatch one service invocation.
pub fn invoke(
    inv: &ServiceInvocation,
    ctx: &ServiceContext<'_>,
    state: &mut PipelineState,
) -> Result<()> {
    match inv.service_id.as_str() {
        // ------------------------------------------------- preparation
        "prep.normalize.zscore" | "prep.normalize.minmax" => {
            let columns = columns_param(inv, "columns")?;
            let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
            let kind = if inv.service_id.ends_with("zscore") {
                ScalingKind::ZScore
            } else {
                ScalingKind::MinMax
            };
            let scaler = Scaler::fit(&state.table, &refs, kind)?;
            state.table = scaler.apply(&state.table)?;
            state.report(
                &inv.service_id,
                format!("scaled columns {columns:?} ({kind:?})"),
            );
            Ok(())
        }
        "prep.impute.mean" | "prep.impute.median" => {
            let columns = columns_param(inv, "columns")?;
            let refs: Vec<&str> = columns.iter().map(String::as_str).collect();
            let kind = if inv.service_id.ends_with("mean") {
                ImputeKind::Mean
            } else {
                ImputeKind::Median
            };
            let nulls_before: usize = refs
                .iter()
                .map(|c| {
                    state
                        .table
                        .column(c)
                        .map(|col| col.null_count())
                        .unwrap_or(0)
                })
                .sum();
            let imputer = Imputer::fit(&state.table, &refs, kind)?;
            state.table = imputer.apply(&state.table)?;
            state.report(
                &inv.service_id,
                format!("filled {nulls_before} nulls in {columns:?}"),
            );
            Ok(())
        }
        "prep.encode.onehot" => {
            let column = inv.required_param("column")?;
            let encoder = OneHot::fit(&state.table, column)?;
            let n = encoder.categories().len();
            state.table = encoder.apply(&state.table)?;
            state.report(
                &inv.service_id,
                format!("one-hot encoded {column:?} into {n} columns"),
            );
            Ok(())
        }
        "privacy.kanon" => {
            let k = usize_param(inv, "k")?;
            let quasi = columns_param(inv, "quasi")?;
            let ladders = derive_ladders(&state.table, &quasi)?;
            let before = state.table.num_rows();
            let result = enforce_k_anonymity(&state.table, &ladders, k)?;
            state.table = result.table;
            state.kanon_applied = Some(k);
            state.suppressed_rows += result.suppressed_rows;
            state.audit.record(AuditEvent::Anonymization {
                pipeline: ctx.pipeline.to_owned(),
                technique: "k-anonymity".to_owned(),
                parameter: format!("k={k}"),
            });
            state.report(
                &inv.service_id,
                format!(
                    "k={k} over {quasi:?}: levels {:?}, suppressed {}/{before}, utility loss {:.3}",
                    result.levels, result.suppressed_rows, result.utility_loss
                ),
            );
            Ok(())
        }
        "privacy.ldiv" => {
            let l = usize_param(inv, "l")?;
            let quasi = columns_param(inv, "quasi")?;
            let sensitive = inv.required_param("sensitive")?;
            let (kept, suppressed) = enforce_l_diversity(&state.table, &quasi, sensitive, l)?;
            state.table = kept;
            state.ldiv_applied = Some(l);
            state.suppressed_rows += suppressed;
            state.audit.record(AuditEvent::Anonymization {
                pipeline: ctx.pipeline.to_owned(),
                technique: "l-diversity".to_owned(),
                parameter: format!("l={l}"),
            });
            state.report(
                &inv.service_id,
                format!("l={l} over {quasi:?} wrt {sensitive:?}: suppressed {suppressed}"),
            );
            Ok(())
        }
        // ---------------------------------------------- representation
        "repr.features.numeric" => {
            let columns = columns_param(inv, "columns")?;
            let mut lines = Vec::with_capacity(columns.len());
            for c in &columns {
                let col = state
                    .table
                    .column(c)
                    .map_err(|e| CoreError::Data(e.to_string()))?;
                if !col.data_type().is_numeric() {
                    return Err(CoreError::Parameter {
                        service: inv.service_id.clone(),
                        message: format!("feature column {c:?} is not numeric"),
                    });
                }
                let s = summarize(col).map_err(|e| CoreError::Data(e.to_string()))?;
                lines.push(format!(
                    "{c}: mean={:.3} sd={:.3} nulls={}",
                    s.mean,
                    s.std_dev(),
                    s.nulls
                ));
            }
            state.report(&inv.service_id, lines.join("\n"));
            Ok(())
        }
        "repr.text.tfidf" => {
            let column = inv.required_param("column")?;
            let docs: Vec<String> = state
                .table
                .column(column)
                .map_err(|e| CoreError::Data(e.to_string()))?
                .iter_values()
                .map(|v| v.to_string())
                .collect();
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            let model = TfIdf::fit(&refs)?;
            state.report(
                &inv.service_id,
                format!(
                    "fitted TF-IDF over {} documents, vocabulary {}",
                    docs.len(),
                    model.vocab_size()
                ),
            );
            Ok(())
        }
        "repr.transactions" => {
            let id = inv.required_param("id")?;
            let item = inv.required_param("item")?;
            let mut pairs = Vec::with_capacity(state.table.num_rows());
            for row_idx in 0..state.table.num_rows() {
                let tid = state
                    .table
                    .value(row_idx, id)
                    .map_err(|e| CoreError::Data(e.to_string()))?;
                let it = state
                    .table
                    .value(row_idx, item)
                    .map_err(|e| CoreError::Data(e.to_string()))?;
                if tid.is_null() || it.is_null() {
                    continue;
                }
                pairs.push((
                    tid.as_int().map_err(|e| CoreError::Data(e.to_string()))?,
                    it.to_string(),
                ));
            }
            let txs = toreador_analytics::apriori::transactions_from_pairs(&pairs);
            state.report(&inv.service_id, format!("built {} transactions", txs.len()));
            state.transactions = Some(txs);
            Ok(())
        }
        // -------------------------------------------------- analytics
        "analytics.kmeans" => {
            let k = usize_param(inv, "k")?;
            let feats = columns_param(inv, "features")?;
            let refs: Vec<&str> = feats.iter().map(String::as_str).collect();
            let x = features(&state.table, &refs)?;
            let model = KMeans::fit(
                &x,
                KMeansConfig {
                    k,
                    seed: ctx.seed,
                    ..Default::default()
                },
            )?;
            let assign = model.predict_all(&x)?;
            let quality = if k >= 2 && x.rows() >= 2 {
                // Silhouette in [-1,1] -> [0,1].
                match silhouette(&x, &assign) {
                    Ok(s) => (s + 1.0) / 2.0,
                    Err(_) => 0.5,
                }
            } else {
                0.5
            };
            state.measured.push((Indicator::Accuracy, quality));
            let col = Column::from_ints(assign.iter().map(|&a| a as i64).collect());
            state.table = state
                .table
                .with_column(Field::required("cluster", DataType::Int), col)
                .map_err(|e| CoreError::Data(e.to_string()))?;
            state.report(
                &inv.service_id,
                format!(
                    "k={k} on {feats:?}: inertia {:.2}, silhouette-based quality {:.3}, {} iterations",
                    model.inertia(),
                    quality,
                    model.iterations()
                ),
            );
            Ok(())
        }
        "analytics.linreg" => {
            let target_col = inv.required_param("target")?;
            let feats = columns_param(inv, "features")?;
            let refs: Vec<&str> = feats.iter().map(String::as_str).collect();
            let (train, test) = supervised_split(state, inv, ctx.seed)?;
            let xtr = features(&train, &refs)?;
            let ytr = target(&train, target_col)?;
            let model = LinearRegression::fit(&xtr, &ytr, 1e-6)?;
            let xte = features(&test, &refs)?;
            let yte = target(&test, target_col)?;
            let preds = model.predict(&xte)?;
            let r2v = r2(&preds, &yte).unwrap_or(0.0);
            let quality = r2v.clamp(0.0, 1.0);
            state.measured.push((Indicator::Accuracy, quality));
            state.report(
                &inv.service_id,
                format!(
                    "target {target_col:?} ~ {feats:?}: test R²={r2v:.3}, RMSE={:.3}, intercept={:.3}",
                    rmse(&preds, &yte).unwrap_or(f64::NAN),
                    model.intercept
                ),
            );
            Ok(())
        }
        "analytics.logreg" => {
            let target_col = inv.required_param("target")?;
            let feats = columns_param(inv, "features")?;
            let refs: Vec<&str> = feats.iter().map(String::as_str).collect();
            let (train, test) = supervised_split(state, inv, ctx.seed)?;
            let xtr = features(&train, &refs)?;
            let ytr = binary_target(&train, target_col)?;
            let model = LogisticRegression::fit(
                &xtr,
                &ytr,
                LogisticConfig {
                    max_iters: 300,
                    ..Default::default()
                },
            )?;
            let xte = features(&test, &refs)?;
            let yte = binary_target(&test, target_col)?;
            let preds = model.predict(&xte)?;
            let correct = preds.iter().zip(&yte).filter(|(p, t)| p == t).count();
            let acc = correct as f64 / yte.len() as f64;
            state.measured.push((Indicator::Accuracy, acc));
            state.report(
                &inv.service_id,
                format!(
                    "binary target {target_col:?}: held-out accuracy {acc:.3} ({} iters)",
                    model.iterations
                ),
            );
            Ok(())
        }
        "analytics.naivebayes" | "analytics.tree" => {
            let target_col = inv.required_param("target")?;
            let feats = columns_param(inv, "features")?;
            let refs: Vec<&str> = feats.iter().map(String::as_str).collect();
            let (train, test) = supervised_split(state, inv, ctx.seed)?;
            let xtr = features(&train, &refs)?;
            let ytr = labels(&train, target_col)?;
            let xte = features(&test, &refs)?;
            let yte = labels(&test, target_col)?;
            let preds = if inv.service_id.ends_with("tree") {
                let depth = inv
                    .param("max_depth")
                    .and_then(|d| d.parse().ok())
                    .unwrap_or(6);
                let model = DecisionTree::fit(
                    &xtr,
                    &ytr,
                    TreeConfig {
                        max_depth: depth,
                        ..Default::default()
                    },
                )?;
                model.predict(&xte)?
            } else {
                let model = GaussianNb::fit(&xtr, &ytr)?;
                model.predict(&xte)?
            };
            let acc = accuracy(&preds, &yte)?;
            let cm = ConfusionMatrix::build(&preds, &yte)?;
            state.measured.push((Indicator::Accuracy, acc));
            state.report(
                &inv.service_id,
                format!(
                    "target {target_col:?} over {feats:?}: held-out accuracy {acc:.3}, macro-F1 {:.3}",
                    cm.macro_f1()
                ),
            );
            Ok(())
        }
        "analytics.apriori" => {
            let min_support = float_param(inv, "min_support")?;
            let min_confidence = float_param(inv, "min_confidence")?;
            let txs = match (&state.transactions, inv.param("id"), inv.param("item")) {
                (Some(t), _, _) => t.clone(),
                (None, Some(_), Some(_)) => {
                    // Build inline from params.
                    let sub = ServiceInvocation {
                        service_id: "repr.transactions".to_owned(),
                        params: inv.params.clone(),
                    };
                    invoke(&sub, ctx, state)?;
                    state.transactions.clone().expect("just staged")
                }
                _ => {
                    return Err(CoreError::Parameter {
                        service: inv.service_id.clone(),
                        message:
                            "needs staged transactions (repr.transactions) or id=/item= params"
                                .to_owned(),
                    })
                }
            };
            let sets = frequent_itemsets(&txs, min_support)?;
            let rules = association_rules(&sets, txs.len(), min_confidence)?;
            let mut text = format!(
                "{} frequent itemsets, {} rules (support>={min_support}, confidence>={min_confidence})\n",
                sets.len(),
                rules.len()
            );
            for r in rules.iter().take(10) {
                text.push_str(&format!(
                    "  {:?} => {:?}  conf={:.2} lift={:.2} support={:.2}\n",
                    r.antecedent, r.consequent, r.confidence, r.lift, r.support
                ));
            }
            state.report(&inv.service_id, text);
            Ok(())
        }
        "analytics.anomaly.zscore" | "analytics.anomaly.rolling" => {
            let column = inv.required_param("column")?;
            let threshold = float_param(inv, "threshold")?;
            let series: Vec<f64> = state
                .table
                .column(column)
                .map_err(|e| CoreError::Data(e.to_string()))?
                .iter_values()
                .map(|v| {
                    if v.is_null() {
                        0.0
                    } else {
                        v.as_float().unwrap_or(0.0)
                    }
                })
                .collect();
            let anomalies = if inv.service_id.ends_with("rolling") {
                let window = usize_param(inv, "window")?;
                rolling_detect(&series, window, threshold)?
            } else {
                zscore_detect(&series, threshold)?
            };
            let mut flags = vec![false; series.len()];
            for a in &anomalies {
                flags[a.index] = true;
            }
            state.table = state
                .table
                .with_column(
                    Field::required("is_anomaly", DataType::Bool),
                    Column::from_bools(flags),
                )
                .map_err(|e| CoreError::Data(e.to_string()))?;
            state.report(
                &inv.service_id,
                format!(
                    "{} anomalies in {column:?} at threshold {threshold} ({:.3}% of rows)",
                    anomalies.len(),
                    100.0 * anomalies.len() as f64 / series.len().max(1) as f64
                ),
            );
            Ok(())
        }
        "analytics.forecast.seasonal" | "analytics.forecast.smoothing" => {
            let column = inv.required_param("column")?;
            let horizon = usize_param(inv, "horizon")?;
            let series: Vec<f64> = state
                .table
                .column(column)
                .map_err(|e| CoreError::Data(e.to_string()))?
                .iter_values()
                .filter(|v| !v.is_null())
                .map(|v| v.as_float().unwrap_or(0.0))
                .collect();
            if series.len() <= horizon {
                return Err(CoreError::Analytics(format!(
                    "series of {} points cannot back-test a horizon of {horizon}",
                    series.len()
                )));
            }
            let (label, backtest): (&str, f64) = if inv.service_id.ends_with("seasonal") {
                let period = usize_param(inv, "period")?;
                let rmse_v =
                    toreador_analytics::forecast::backtest_rmse(&series, horizon, |train, h| {
                        toreador_analytics::forecast::seasonal_naive(train, period, h)
                    })?;
                ("seasonal-naive", rmse_v)
            } else {
                let alpha = float_param(inv, "alpha")?;
                let beta = float_param(inv, "beta")?;
                let rmse_v =
                    toreador_analytics::forecast::backtest_rmse(&series, horizon, |train, h| {
                        Ok(
                            toreador_analytics::forecast::Holt::fit(train, alpha, beta)?
                                .forecast(h),
                        )
                    })?;
                ("Holt smoothing", rmse_v)
            };
            // Forecast skill as an accuracy-style indicator: 1 - rmse²/var,
            // the R² of the back-test, clamped to [0, 1].
            let mut acc = toreador_data::stats::Welford::new();
            for &x in &series {
                acc.push(x);
            }
            let variance = acc.variance().max(f64::MIN_POSITIVE);
            let skill = (1.0 - backtest * backtest / variance).clamp(0.0, 1.0);
            state.measured.push((Indicator::Accuracy, skill));
            state.report(
                &inv.service_id,
                format!(
                    "{label} back-test on {column:?}: horizon {horizon}, RMSE {backtest:.4}, skill {skill:.3}"
                ),
            );
            Ok(())
        }
        "analytics.similarity" => {
            let query = inv.required_param("query")?;
            let column = inv.required_param("column")?;
            let docs: Vec<String> = state
                .table
                .column(column)
                .map_err(|e| CoreError::Data(e.to_string()))?
                .iter_values()
                .map(|v| v.to_string())
                .collect();
            let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
            let model = TfIdf::fit(&refs)?;
            let qv = model.transform(query);
            let mut scored: Vec<(usize, f64)> = docs
                .iter()
                .enumerate()
                .map(|(i, d)| (i, cosine(&qv, &model.transform(d))))
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut text = format!("query {query:?}: top matches\n");
            for (i, s) in scored.iter().take(5) {
                text.push_str(&format!("  row {i} score {s:.3}: {}\n", docs[*i]));
            }
            state.report(&inv.service_id, text);
            Ok(())
        }
        // -------------------------------------------------- processing
        "processing.filter" => {
            let predicate = parse_expr(inv.required_param("predicate")?)?;
            run_flow(ctx, state, |_, flow| Ok(flow.filter(predicate)?))
        }
        "processing.aggregate" => {
            let group_by = columns_param(inv, "group_by")?;
            let aggs = parse_agg_list(inv.required_param("agg")?)?;
            let refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
            run_flow(ctx, state, |_, flow| Ok(flow.aggregate(&refs, aggs)?))
        }
        "processing.join" => {
            let with = inv.required_param("with")?;
            let keys = columns_param(inv, "keys")?;
            let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            if !ctx.auxiliary.contains_key(with) {
                return Err(CoreError::Parameter {
                    service: inv.service_id.clone(),
                    message: format!("auxiliary dataset {with:?} not provided"),
                });
            }
            let join_type = match inv.param("how") {
                Some("left") => JoinType::Left,
                _ => JoinType::Inner,
            };
            run_flow(ctx, state, |engine, flow| {
                Ok(flow.join(engine.flow(with)?, &refs, &refs, join_type)?)
            })
        }
        "processing.sample" => {
            let fraction = float_param(inv, "fraction")?;
            let seed = ctx.seed;
            run_flow(ctx, state, |_, flow| Ok(flow.sample(fraction, seed)?))
        }
        "processing.distinct" => run_flow(ctx, state, |_, flow| Ok(flow.distinct())),
        "processing.topk" => {
            let by = inv.required_param("by")?.to_owned();
            let n = usize_param(inv, "n")?;
            let descending = match inv.param("order").unwrap_or("desc") {
                "desc" => true,
                "asc" => false,
                other => {
                    return Err(CoreError::Parameter {
                        service: inv.service_id.clone(),
                        message: format!("order must be asc or desc, got {other:?}"),
                    })
                }
            };
            // Sort+limit: the engine fuses this into a shuffle-free top-k.
            run_flow(ctx, state, |_, flow| {
                Ok(flow.sort(&[&by], descending)?.limit(n))
            })
        }
        "privacy.dp.aggregate" => {
            let epsilon = float_param(inv, "epsilon")?;
            let column = inv.required_param("column")?;
            let clamp = inv
                .param("clamp")
                .and_then(|c| c.parse().ok())
                .unwrap_or(1e4);
            let group_by = inv
                .param("group_by")
                .map(parse_column_list)
                .unwrap_or_default();
            let mut mech = LaplaceMechanism::new(epsilon, ctx.seed)?;
            // Per-group ε split: half the budget to counts, half to sums,
            // divided across groups (parallel groups are disjoint, but we
            // budget conservatively by sequential composition).
            let groups: Vec<(String, Vec<f64>)> = if group_by.is_empty() {
                let vals: Vec<f64> = state
                    .table
                    .column(column)
                    .map_err(|e| CoreError::Data(e.to_string()))?
                    .iter_values()
                    .filter(|v| !v.is_null())
                    .map(|v| v.as_float().unwrap_or(0.0))
                    .collect();
                vec![("all".to_owned(), vals)]
            } else {
                let mut map: BTreeMap<String, Vec<f64>> = BTreeMap::new();
                for row_idx in 0..state.table.num_rows() {
                    let key = group_by
                        .iter()
                        .map(|g| {
                            state
                                .table
                                .value(row_idx, g)
                                .map(|v| v.to_string())
                                .unwrap_or_default()
                        })
                        .collect::<Vec<_>>()
                        .join("|");
                    let v = state
                        .table
                        .value(row_idx, column)
                        .map_err(|e| CoreError::Data(e.to_string()))?;
                    if !v.is_null() {
                        map.entry(key)
                            .or_default()
                            .push(v.as_float().unwrap_or(0.0));
                    }
                }
                map.into_iter().collect()
            };
            let per_group = epsilon / groups.len().max(1) as f64;
            let mut out_rows = Vec::with_capacity(groups.len());
            for (key, vals) in &groups {
                let nc = mech.noisy_count(&format!("{key}/count"), vals.len(), per_group / 2.0)?;
                let ns = mech.noisy_sum(&format!("{key}/sum"), vals, clamp, per_group / 2.0)?;
                out_rows.push(vec![
                    Value::Str(key.clone()),
                    Value::Float(nc.max(0.0)),
                    Value::Float(ns),
                ]);
            }
            let schema = toreador_data::schema::Schema::new(vec![
                Field::required("group", DataType::Str),
                Field::required("noisy_count", DataType::Float),
                Field::required("noisy_sum", DataType::Float),
            ])
            .map_err(|e| CoreError::Data(e.to_string()))?;
            state.table =
                Table::from_rows(schema, out_rows).map_err(|e| CoreError::Data(e.to_string()))?;
            state.dp_spent += mech.ledger().spent();
            state.record_level = false;
            state.audit.record(AuditEvent::BudgetSpend {
                pipeline: ctx.pipeline.to_owned(),
                label: format!("dp.aggregate({column})"),
                epsilon: mech.ledger().spent(),
            });
            state.report(
                &inv.service_id,
                format!(
                    "ε={epsilon} over {} group(s): released noisy count+sum of {column:?}",
                    groups.len()
                ),
            );
            Ok(())
        }
        // ------------------------------------------------ visualization
        "viz.report.table" => {
            let limit = inv
                .param("limit")
                .and_then(|l| l.parse().ok())
                .unwrap_or(20);
            let text = state.table.show(limit);
            state.report(&inv.service_id, text);
            Ok(())
        }
        "viz.report.summary" => {
            let mut lines = vec![format!(
                "{} rows x {} columns",
                state.table.num_rows(),
                state.table.num_columns()
            )];
            for field in state.table.schema().fields() {
                let col = state
                    .table
                    .column(&field.name)
                    .map_err(|e| CoreError::Data(e.to_string()))?;
                if field.data_type.is_numeric() {
                    if let Ok(s) = summarize(col) {
                        lines.push(format!(
                            "{}: mean={:.3} sd={:.3} min={:.3} max={:.3} nulls={}",
                            field.name,
                            s.mean,
                            s.std_dev(),
                            s.min,
                            s.max,
                            s.nulls
                        ));
                        continue;
                    }
                }
                lines.push(format!(
                    "{}: {} nulls / {} values",
                    field.name,
                    col.null_count(),
                    col.len()
                ));
            }
            state.report(&inv.service_id, lines.join("\n"));
            Ok(())
        }
        other => Err(CoreError::Catalog(format!(
            "service {other:?} has no bound implementation"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use toreador_data::generate::{clickstream, health_records, telemetry};

    fn ctx<'a>(aux: &'a HashMap<String, Table>) -> ServiceContext<'a> {
        ServiceContext {
            pipeline: "test",
            engine_config: EngineConfig::default().with_threads(2),
            auxiliary: aux,
            seed: 42,
            recovery: None,
        }
    }

    fn inv(id: &str, params: &[(&str, &str)]) -> ServiceInvocation {
        ServiceInvocation {
            service_id: id.to_owned(),
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn filter_runs_through_engine_and_records_metrics() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(clickstream(500, 1));
        invoke(
            &inv(
                "processing.filter",
                &[("predicate", "action == 'purchase'")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert!(state.table.num_rows() > 0);
        assert!(state.table.num_rows() < 500);
        assert_eq!(state.engine_metrics.len(), 1);
    }

    #[test]
    fn aggregate_and_report() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(clickstream(500, 1));
        invoke(
            &inv(
                "processing.aggregate",
                &[
                    ("group_by", "country"),
                    ("agg", "count:event_id:n,sum:price:rev"),
                ],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(state.table.schema().names(), vec!["country", "n", "rev"]);
        invoke(
            &inv("viz.report.table", &[("limit", "5")]),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(state.reports.len(), 1);
        assert!(state.reports[0].1.contains("country"));
    }

    #[test]
    fn join_against_auxiliary() {
        let mut aux = HashMap::new();
        let lookup = {
            let schema = toreador_data::schema::Schema::new(vec![
                Field::new("country", DataType::Str),
                Field::new("region_name", DataType::Str),
            ])
            .unwrap();
            Table::from_rows(
                schema,
                vec![
                    vec![Value::Str("IT".into()), Value::Str("south".into())],
                    vec![Value::Str("DE".into()), Value::Str("central".into())],
                ],
            )
            .unwrap()
        };
        aux.insert("regions".to_owned(), lookup);
        let mut state = PipelineState::new(clickstream(300, 2));
        invoke(
            &inv(
                "processing.join",
                &[("with", "regions"), ("keys", "country")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert!(state.table.schema().contains("region_name"));
        // Unknown auxiliary is a parameter error.
        let err = invoke(
            &inv("processing.join", &[("with", "ghost"), ("keys", "country")]),
            &ctx(&aux),
            &mut state,
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn classification_measures_heldout_accuracy() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(health_records(600, 3));
        invoke(
            &inv(
                "analytics.tree",
                &[
                    ("target", "sex"),
                    ("features", "age,visits,cost"),
                    ("max_depth", "4"),
                ],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        let acc = state
            .measured
            .iter()
            .find(|(i, _)| *i == Indicator::Accuracy)
            .map(|(_, v)| *v)
            .unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(state.reports[0].1.contains("held-out accuracy"));
    }

    #[test]
    fn logreg_binary_target_mapping() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(health_records(400, 4));
        invoke(
            &inv(
                "analytics.logreg",
                &[("target", "sex"), ("features", "age,cost")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert!(!state.measured.is_empty());
        // Multi-valued target rejected.
        let mut state = PipelineState::new(health_records(400, 4));
        let err = invoke(
            &inv(
                "analytics.logreg",
                &[("target", "diagnosis"), ("features", "age")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap_err();
        assert!(err.to_string().contains("distinct values"));
    }

    #[test]
    fn kmeans_appends_cluster_column() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(health_records(300, 5));
        invoke(
            &inv("analytics.kmeans", &[("k", "3"), ("features", "age,cost")]),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert!(state.table.schema().contains("cluster"));
        let clusters = state.table.column("cluster").unwrap();
        assert!(clusters
            .iter_values()
            .all(|v| (0..3).contains(&v.as_int().unwrap())));
    }

    #[test]
    fn kanon_service_enforces_and_audits() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(health_records(400, 6));
        invoke(
            &inv("privacy.kanon", &[("k", "5"), ("quasi", "age,zip,sex")]),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(state.kanon_applied, Some(5));
        assert!(toreador_privacy::kanon::is_k_anonymous(
            &state.table,
            &["age".into(), "zip".into(), "sex".into()],
            5
        )
        .unwrap());
        assert_eq!(state.audit.len(), 1);
    }

    #[test]
    fn dp_aggregate_replaces_table_with_noisy_release() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(health_records(400, 7));
        invoke(
            &inv(
                "privacy.dp.aggregate",
                &[("epsilon", "2.0"), ("column", "cost"), ("group_by", "sex")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(
            state.table.schema().names(),
            vec!["group", "noisy_count", "noisy_sum"]
        );
        assert_eq!(state.table.num_rows(), 2);
        assert!(state.dp_spent > 0.0 && state.dp_spent <= 2.0 + 1e-9);
        assert!(state.audit.total_epsilon_spent() > 0.0);
    }

    #[test]
    fn anomaly_services_flag_rows() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(telemetry(2000, 10, 8));
        invoke(
            &inv(
                "analytics.anomaly.rolling",
                &[("column", "kwh"), ("window", "48"), ("threshold", "4.0")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert!(state.table.schema().contains("is_anomaly"));
        let flagged = state
            .table
            .column("is_anomaly")
            .unwrap()
            .iter_values()
            .filter(|v| *v == Value::Bool(true))
            .count();
        assert!(flagged > 0, "planted spikes should be caught");
    }

    #[test]
    fn forecast_services_backtest_and_report_skill() {
        let aux = HashMap::new();
        // One meter so the series is a clean 15-minute diurnal signal.
        let mut state = PipelineState::new(telemetry(1_000, 1, 12));
        invoke(
            &inv(
                "analytics.forecast.seasonal",
                &[("column", "kwh"), ("period", "96"), ("horizon", "96")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        let (_, skill) = state.measured[0];
        assert!((0.0..=1.0).contains(&skill));
        assert!(state.reports[0].1.contains("RMSE"));
        // Smoothing variant also runs.
        invoke(
            &inv(
                "analytics.forecast.smoothing",
                &[
                    ("column", "kwh"),
                    ("alpha", "0.3"),
                    ("beta", "0.1"),
                    ("horizon", "48"),
                ],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(state.measured.len(), 2);
        // Horizon longer than the series is a clean error.
        let mut tiny = PipelineState::new(telemetry(50, 1, 12));
        assert!(invoke(
            &inv(
                "analytics.forecast.seasonal",
                &[("column", "kwh"), ("period", "8"), ("horizon", "96")]
            ),
            &ctx(&aux),
            &mut tiny,
        )
        .is_err());
    }

    #[test]
    fn seasonal_forecast_beats_trend_smoothing_on_diurnal_load() {
        // The planted diurnal cycle is periodic, so the seasonal-naive
        // forecaster out-skills Holt (which only models level + trend).
        // The catalogue's generic quality annotations rank Holt higher —
        // measuring which service actually wins on *this* data is exactly
        // the kind of consequence the Labs surface.
        let aux = HashMap::new();
        // Drop the rogue spikes first (as the forecast challenge teaches) —
        // otherwise a spike in the hold-out window zeroes both skills.
        let raw = telemetry(2_000, 1, 13);
        let mask: Vec<bool> = raw
            .column("kwh")
            .unwrap()
            .iter_values()
            .map(|v| v.as_float().unwrap() < 3.0)
            .collect();
        let data = raw.filter(&mask).unwrap();
        let mut s1 = PipelineState::new(data.clone());
        invoke(
            &inv(
                "analytics.forecast.seasonal",
                &[("column", "kwh"), ("period", "96"), ("horizon", "96")],
            ),
            &ctx(&aux),
            &mut s1,
        )
        .unwrap();
        let mut s2 = PipelineState::new(data);
        invoke(
            &inv(
                "analytics.forecast.smoothing",
                &[
                    ("column", "kwh"),
                    ("alpha", "0.3"),
                    ("beta", "0.1"),
                    ("horizon", "96"),
                ],
            ),
            &ctx(&aux),
            &mut s2,
        )
        .unwrap();
        let seasonal_skill = s1.measured[0].1;
        let holt_skill = s2.measured[0].1;
        assert!(
            seasonal_skill > holt_skill,
            "seasonal {seasonal_skill} vs holt {holt_skill} on periodic load"
        );
    }

    #[test]
    fn apriori_via_inline_params() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(clickstream(800, 9));
        invoke(
            &inv(
                "analytics.apriori",
                &[
                    ("min_support", "0.01"),
                    ("min_confidence", "0.1"),
                    ("id", "session_id"),
                    ("item", "category"),
                ],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert!(state.reports.iter().any(|(s, _)| s == "analytics.apriori"));
        // Missing both staged transactions and params.
        let mut state = PipelineState::new(clickstream(100, 9));
        assert!(invoke(
            &inv(
                "analytics.apriori",
                &[("min_support", "0.1"), ("min_confidence", "0.5")]
            ),
            &ctx(&aux),
            &mut state,
        )
        .is_err());
    }

    #[test]
    fn prep_services_transform() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(telemetry(500, 5, 10));
        invoke(
            &inv("prep.impute.mean", &[("columns", "voltage")]),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(state.table.column("voltage").unwrap().null_count(), 0);
        invoke(
            &inv("prep.normalize.zscore", &[("columns", "kwh,temp_c")]),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        let s = summarize(state.table.column("kwh").unwrap()).unwrap();
        assert!(s.mean.abs() < 1e-9);
    }

    #[test]
    fn topk_service_ranks_and_truncates() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(clickstream(600, 4));
        invoke(
            &inv(
                "processing.aggregate",
                &[("group_by", "category"), ("agg", "sum:price:revenue")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        invoke(
            &inv(
                "processing.topk",
                &[("by", "revenue"), ("n", "3"), ("order", "desc")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(state.table.num_rows(), 3);
        let revenues: Vec<f64> = state
            .table
            .column("revenue")
            .unwrap()
            .iter_values()
            .map(|v| v.as_float().unwrap())
            .collect();
        assert!(revenues.windows(2).all(|w| w[0] >= w[1]), "{revenues:?}");
        // Ascending order and parameter validation.
        let mut state = PipelineState::new(clickstream(100, 4));
        invoke(
            &inv(
                "processing.topk",
                &[("by", "price"), ("n", "5"), ("order", "sideways")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap_err();
        invoke(
            &inv(
                "processing.topk",
                &[("by", "event_id"), ("n", "5"), ("order", "asc")],
            ),
            &ctx(&aux),
            &mut state,
        )
        .unwrap();
        assert_eq!(state.table.num_rows(), 5);
        assert_eq!(
            state.table.value(0, "event_id").unwrap(),
            toreador_data::value::Value::Int(1)
        );
    }

    #[test]
    fn unknown_service_is_an_error() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(clickstream(50, 0));
        let err = invoke(&inv("no.such.service", &[]), &ctx(&aux), &mut state).unwrap_err();
        assert!(err.to_string().contains("no bound implementation"));
    }

    #[test]
    fn parallel_composition_merges_reports() {
        let aux = HashMap::new();
        let mut state = PipelineState::new(clickstream(200, 3));
        let comp = Composition::Parallel(vec![
            Composition::Invoke(inv("viz.report.table", &[("limit", "3")])),
            Composition::Invoke(inv("viz.report.summary", &[])),
        ]);
        execute_composition(&comp, &ctx(&aux), &mut state).unwrap();
        assert_eq!(state.reports.len(), 2);
        // Table unchanged (both branches are read-only).
        assert_eq!(state.table.num_rows(), 200);
    }
}
