//! The declarative model: goals, indicators, objectives, preferences.
//!
//! §2 of the paper: "Indicators present a way for measuring or assessing a
//! business goal, such as analytics tasks or regulatory constraints on
//! personal data protection, and are accompanied by Big Data objectives
//! representing the target to be achieved for fulfilling the goal."
//!
//! A [`CampaignSpec`] is the complete declarative model — the input of the
//! BDAaaS function. It is deliberately free of engine concepts: everything
//! here could be written by a business user (and the [`crate::dsl`] gives
//! them a textual syntax for it).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use toreador_catalog::descriptor::Capability;
use toreador_catalog::matching::Preferences;
use toreador_privacy::policy::Policy;

/// The core set of standard indicators (§2's "core set of standard
/// indicators ... an important step towards increasing transparency").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Indicator {
    /// Wall-clock execution time in milliseconds.
    RuntimeMs,
    /// Rows processed per second.
    Throughput,
    /// Estimated abstract cost units of the campaign.
    Cost,
    /// Model quality in [0, 1] (accuracy, R², F1 — per the analytics goal).
    Accuracy,
    /// Re-identification exposure in [0, 1]: 1/k for k-anonymous releases,
    /// `min(1, ε)`-scaled for DP releases, 1 for raw record-level output.
    PrivacyRisk,
    /// Fraction of input rows surviving to the output (1 - suppression).
    Coverage,
    /// Mean per-batch latency in milliseconds (streaming campaigns).
    BatchLatencyMs,
}

impl Indicator {
    pub fn name(self) -> &'static str {
        match self {
            Indicator::RuntimeMs => "runtime_ms",
            Indicator::Throughput => "throughput",
            Indicator::Cost => "cost",
            Indicator::Accuracy => "accuracy",
            Indicator::PrivacyRisk => "privacy_risk",
            Indicator::Coverage => "coverage",
            Indicator::BatchLatencyMs => "batch_latency_ms",
        }
    }

    /// Parse the DSL spelling.
    pub fn parse(s: &str) -> Option<Indicator> {
        Some(match s {
            "runtime_ms" => Indicator::RuntimeMs,
            "throughput" => Indicator::Throughput,
            "cost" => Indicator::Cost,
            "accuracy" => Indicator::Accuracy,
            "privacy_risk" => Indicator::PrivacyRisk,
            "coverage" => Indicator::Coverage,
            "batch_latency_ms" => Indicator::BatchLatencyMs,
            _ => return None,
        })
    }

    /// Whether larger values are better (for objective satisfaction and the
    /// Labs' consequence matrices).
    pub fn higher_is_better(self) -> bool {
        matches!(
            self,
            Indicator::Throughput | Indicator::Accuracy | Indicator::Coverage
        )
    }
}

impl fmt::Display for Indicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The target attached to an indicator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Target {
    AtLeast(f64),
    AtMost(f64),
}

impl Target {
    pub fn satisfied_by(self, value: f64) -> bool {
        match self {
            Target::AtLeast(t) => value >= t - 1e-12,
            Target::AtMost(t) => value <= t + 1e-12,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::AtLeast(v) => write!(f, ">= {v}"),
            Target::AtMost(v) => write!(f, "<= {v}"),
        }
    }
}

/// An objective: indicator + target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    pub indicator: Indicator,
    pub target: Target,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.indicator, self.target)
    }
}

/// One business goal: a capability request with parameters and objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Goal {
    pub capability: Capability,
    /// Service parameters (feature lists, thresholds, ...), name -> value.
    /// BTreeMap so goals serialise and compare deterministically.
    pub params: BTreeMap<String, String>,
    pub objectives: Vec<Objective>,
    /// Pin a specific catalogue service, bypassing preference ranking
    /// (how the Labs encode a trainee's explicit choice).
    pub pinned_service: Option<String>,
}

impl Goal {
    pub fn new(capability: Capability) -> Self {
        Goal {
            capability,
            params: BTreeMap::new(),
            objectives: Vec::new(),
            pinned_service: None,
        }
    }

    pub fn param(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(name.into(), value.into());
        self
    }

    pub fn objective(mut self, indicator: Indicator, target: Target) -> Self {
        self.objectives.push(Objective { indicator, target });
        self
    }

    pub fn pin(mut self, service_id: impl Into<String>) -> Self {
        self.pinned_service = Some(service_id.into());
        self
    }

    pub fn get_param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }
}

/// Batch or micro-batch streaming execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProcessingMode {
    Batch,
    /// Tumbling event-time windows of this many milliseconds over the named
    /// timestamp column.
    Stream {
        window_ms: i64,
    },
}

/// What a streaming campaign does with rows that arrive behind the
/// event-time watermark. Mirrors the engine's late-data policy without
/// pulling the engine type into the declarative model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LateDataPolicy {
    /// Fold late rows into results anyway (counted and journalled).
    #[default]
    Absorb,
    /// Divert late rows to a side channel; results see only on-time rows.
    SideChannel,
    /// Discard late rows; results see only on-time rows.
    Drop,
}

impl LateDataPolicy {
    pub fn name(self) -> &'static str {
        match self {
            LateDataPolicy::Absorb => "absorb",
            LateDataPolicy::SideChannel => "side-channel",
            LateDataPolicy::Drop => "drop",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "absorb" => Some(LateDataPolicy::Absorb),
            "side-channel" | "side_channel" | "side" => Some(LateDataPolicy::SideChannel),
            "drop" => Some(LateDataPolicy::Drop),
            _ => None,
        }
    }
}

/// Continuous-streaming knobs for `ProcessingMode::Stream` campaigns.
/// Batch campaigns ignore them; they default so pre-existing serialised
/// specs parse unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamOptions {
    /// Watermark lag behind max observed event time, in milliseconds.
    pub allowed_lateness_ms: i64,
    /// What happens to rows behind the watermark.
    pub late_policy: LateDataPolicy,
    /// Bound on micro-batches in flight between source and engine.
    pub buffer: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            allowed_lateness_ms: 0,
            late_policy: LateDataPolicy::default(),
            buffer: 8,
        }
    }
}

/// The complete declarative model of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    pub name: String,
    /// The registered dataset the campaign runs on.
    pub dataset: String,
    pub goals: Vec<Goal>,
    pub preferences: Preferences,
    pub mode: ProcessingMode,
    /// Continuous-streaming knobs (meaningful only in `Stream` mode;
    /// defaults so pre-existing serialised specs parse unchanged).
    #[serde(default)]
    pub stream: StreamOptions,
    /// Requested worker parallelism (None = platform default).
    pub parallelism: Option<usize>,
    /// Task retry budget for fault tolerance (None = no retries).
    pub max_task_retries: Option<u32>,
    /// The data-protection policy the campaign must honour, if any.
    pub policy: Option<Policy>,
    /// Campaign-wide objectives (in addition to per-goal ones).
    pub objectives: Vec<Objective>,
    /// Seed for every stochastic component (splits, samples, DP noise).
    pub seed: u64,
}

impl CampaignSpec {
    /// A stable FNV-1a fingerprint of the serialised spec. Two specs that
    /// serialise identically — same goals, preferences, mode, policy,
    /// objectives, seed — fingerprint identically, which is what lets a
    /// serving daemon coalesce concurrent compiles of the same declarative
    /// model onto one compiled plan.
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("campaign spec serialises");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in json.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    pub fn new(name: impl Into<String>, dataset: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            dataset: dataset.into(),
            goals: Vec::new(),
            preferences: Preferences::default(),
            mode: ProcessingMode::Batch,
            stream: StreamOptions::default(),
            parallelism: None,
            max_task_retries: None,
            policy: None,
            objectives: Vec::new(),
            seed: 0,
        }
    }

    pub fn goal(mut self, goal: Goal) -> Self {
        self.goals.push(goal);
        self
    }

    pub fn prefer(mut self, preferences: Preferences) -> Self {
        self.preferences = preferences;
        self
    }

    pub fn mode(mut self, mode: ProcessingMode) -> Self {
        self.mode = mode;
        self
    }

    pub fn with_stream_options(mut self, stream: StreamOptions) -> Self {
        self.stream = stream;
        self
    }

    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = Some(policy);
        self
    }

    pub fn objective(mut self, indicator: Indicator, target: Target) -> Self {
        self.objectives.push(Objective { indicator, target });
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers);
        self
    }

    pub fn with_retries(mut self, retries: u32) -> Self {
        self.max_task_retries = Some(retries);
        self
    }

    /// All objectives: campaign-wide plus per-goal, in declaration order.
    pub fn all_objectives(&self) -> Vec<Objective> {
        self.objectives
            .iter()
            .copied()
            .chain(self.goals.iter().flat_map(|g| g.objectives.iter().copied()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indicator_parse_round_trips() {
        for i in [
            Indicator::RuntimeMs,
            Indicator::Throughput,
            Indicator::Cost,
            Indicator::Accuracy,
            Indicator::PrivacyRisk,
            Indicator::Coverage,
            Indicator::BatchLatencyMs,
        ] {
            assert_eq!(Indicator::parse(i.name()), Some(i));
        }
        assert_eq!(Indicator::parse("nope"), None);
    }

    #[test]
    fn targets_evaluate() {
        assert!(Target::AtLeast(0.7).satisfied_by(0.7));
        assert!(Target::AtLeast(0.7).satisfied_by(0.9));
        assert!(!Target::AtLeast(0.7).satisfied_by(0.5));
        assert!(Target::AtMost(100.0).satisfied_by(50.0));
        assert!(!Target::AtMost(100.0).satisfied_by(101.0));
    }

    #[test]
    fn builders_compose() {
        let spec = CampaignSpec::new("churn", "clicks")
            .goal(
                Goal::new(Capability::Classification)
                    .param("target", "churned")
                    .param("features", "a,b")
                    .objective(Indicator::Accuracy, Target::AtLeast(0.7)),
            )
            .objective(Indicator::RuntimeMs, Target::AtMost(5000.0))
            .with_seed(9);
        assert_eq!(spec.goals.len(), 1);
        assert_eq!(spec.goals[0].get_param("target"), Some("churned"));
        assert_eq!(spec.all_objectives().len(), 2);
        assert_eq!(spec.seed, 9);
    }

    #[test]
    fn goal_pinning() {
        let g = Goal::new(Capability::Clustering).pin("analytics.kmeans");
        assert_eq!(g.pinned_service.as_deref(), Some("analytics.kmeans"));
    }

    #[test]
    fn spec_serializes() {
        let spec = CampaignSpec::new("t", "d")
            .goal(Goal::new(Capability::Filtering).param("predicate", "x > 1"))
            .mode(ProcessingMode::Stream { window_ms: 1000 });
        let j = serde_json::to_string(&spec).unwrap();
        let back: CampaignSpec = serde_json::from_str(&j).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn higher_is_better_orientation() {
        assert!(Indicator::Accuracy.higher_is_better());
        assert!(!Indicator::Cost.higher_is_better());
        assert!(!Indicator::PrivacyRisk.higher_is_better());
    }
}
