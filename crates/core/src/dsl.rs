//! The textual campaign DSL and the predicate expression parser.
//!
//! The TOREADOR front-end let users state campaigns in business terms; this
//! module is the textual equivalent: a line-oriented campaign language that
//! parses to [`CampaignSpec`], plus an infix expression grammar for filter
//! predicates that parses to the engine's [`Expr`].
//!
//! ```text
//! # revenue per country, purchases only
//! campaign revenue on clicks
//! prefer quality
//! mode batch
//! seed 42
//! goal filtering predicate="action == 'purchase'"
//! goal aggregation group_by=country agg=sum:price:revenue
//! objective runtime_ms <= 60000
//! ```

use std::collections::BTreeMap;

use toreador_catalog::descriptor::Capability;
use toreador_catalog::matching::Preferences;
use toreador_data::value::Value;
use toreador_dataflow::expr::{col, lit, Expr};

use crate::declarative::{CampaignSpec, Goal, Indicator, LateDataPolicy, ProcessingMode, Target};
use crate::error::{CoreError, Result};

/// Parse the DSL spelling of a capability.
pub fn parse_capability(s: &str) -> Option<Capability> {
    Some(match s {
        "normalization" => Capability::Normalization,
        "imputation" => Capability::Imputation,
        "encoding" => Capability::Encoding,
        "anonymization" => Capability::Anonymization,
        "feature_extraction" => Capability::FeatureExtraction,
        "text_vectorization" => Capability::TextVectorization,
        "transaction_encoding" => Capability::TransactionEncoding,
        "clustering" => Capability::Clustering,
        "classification" => Capability::Classification,
        "regression" => Capability::Regression,
        "association_rules" => Capability::AssociationRules,
        "anomaly_detection" => Capability::AnomalyDetection,
        "forecasting" => Capability::Forecasting,
        "similarity_search" => Capability::SimilaritySearch,
        "filtering" => Capability::Filtering,
        "aggregation" => Capability::Aggregation,
        "joining" => Capability::Joining,
        "sampling" => Capability::Sampling,
        "deduplication" => Capability::Deduplication,
        "ranking" => Capability::Ranking,
        "private_aggregation" => Capability::PrivateAggregation,
        "reporting" => Capability::Reporting,
        _ => return None,
    })
}

/// Split a line into tokens, honouring single/double-quoted spans and
/// `key=value` with quoted values.
fn split_tokens(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                } else {
                    cur.push(c);
                }
            }
            None => match c {
                '\'' | '"' => quote = Some(c),
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                }
                other => cur.push(other),
            },
        }
    }
    if quote.is_some() {
        return Err(CoreError::Parse {
            line: line_no,
            message: "unterminated quote".to_owned(),
        });
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Parse `key=value` (value may have been quoted).
fn parse_kv(token: &str) -> Option<(String, String)> {
    token
        .split_once('=')
        .map(|(k, v)| (k.to_owned(), v.to_owned()))
}

fn parse_objective_clause(tokens: &[String], line_no: usize) -> Result<(Indicator, Target)> {
    if tokens.len() != 3 {
        return Err(CoreError::Parse {
            line: line_no,
            message: format!("objective needs `<indicator> <=|>= <value>`, got {tokens:?}"),
        });
    }
    let indicator = Indicator::parse(&tokens[0]).ok_or_else(|| CoreError::Parse {
        line: line_no,
        message: format!("unknown indicator {:?}", tokens[0]),
    })?;
    let value: f64 = tokens[2].parse().map_err(|_| CoreError::Parse {
        line: line_no,
        message: format!("bad objective value {:?}", tokens[2]),
    })?;
    let target = match tokens[1].as_str() {
        ">=" => Target::AtLeast(value),
        "<=" => Target::AtMost(value),
        other => {
            return Err(CoreError::Parse {
                line: line_no,
                message: format!("objective operator must be >= or <=, got {other:?}"),
            })
        }
    };
    Ok((indicator, target))
}

/// Parse a campaign from DSL text. Named policies (`policy healthcare`)
/// resolve through the provided lookup.
pub fn parse_campaign(
    text: &str,
    policy_lookup: &dyn Fn(&str) -> Option<toreador_privacy::policy::Policy>,
) -> Result<CampaignSpec> {
    let mut spec: Option<CampaignSpec> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens = split_tokens(line, line_no)?;
        // A line of bare quotes ("" / '') tokenises to nothing: skip it.
        let Some(keyword) = tokens.first().map(String::as_str) else {
            continue;
        };
        if keyword == "campaign" {
            if spec.is_some() {
                return Err(CoreError::Parse {
                    line: line_no,
                    message: "duplicate campaign declaration".to_owned(),
                });
            }
            if tokens.len() != 4 || tokens[2] != "on" {
                return Err(CoreError::Parse {
                    line: line_no,
                    message: "expected `campaign <name> on <dataset>`".to_owned(),
                });
            }
            spec = Some(CampaignSpec::new(tokens[1].clone(), tokens[3].clone()));
            continue;
        }
        let current = spec.as_mut().ok_or(CoreError::Parse {
            line: line_no,
            message: "first statement must be `campaign <name> on <dataset>`".to_owned(),
        })?;
        match keyword {
            "prefer" => {
                current.preferences = match tokens.get(1).map(String::as_str) {
                    Some("quality") => Preferences::quality_first(),
                    Some("cost") => Preferences::cost_first(),
                    Some("balanced") => Preferences::default(),
                    other => {
                        return Err(CoreError::Parse {
                            line: line_no,
                            message: format!("prefer expects quality|cost|balanced, got {other:?}"),
                        })
                    }
                };
            }
            "mode" => match tokens.get(1).map(String::as_str) {
                Some("batch") => current.mode = ProcessingMode::Batch,
                Some("stream") => {
                    let mut window_ms = None;
                    for t in &tokens[2..] {
                        match parse_kv(t) {
                            Some((k, v)) if k == "window" => {
                                window_ms = Some(v.parse().map_err(|_| CoreError::Parse {
                                    line: line_no,
                                    message: format!("bad window {v:?}"),
                                })?)
                            }
                            Some((k, v)) if k == "lateness" => {
                                current.stream.allowed_lateness_ms =
                                    v.parse().map_err(|_| CoreError::Parse {
                                        line: line_no,
                                        message: format!("bad lateness {v:?}"),
                                    })?
                            }
                            Some((k, v)) if k == "late" => {
                                current.stream.late_policy =
                                    LateDataPolicy::parse(&v).ok_or(CoreError::Parse {
                                        line: line_no,
                                        message: format!(
                                            "late expects absorb|side-channel|drop, got {v:?}"
                                        ),
                                    })?
                            }
                            Some((k, v)) if k == "buffer" => {
                                let cap: usize = v.parse().map_err(|_| CoreError::Parse {
                                    line: line_no,
                                    message: format!("bad buffer {v:?}"),
                                })?;
                                if cap == 0 {
                                    return Err(CoreError::Parse {
                                        line: line_no,
                                        message: "buffer must be >= 1".to_owned(),
                                    });
                                }
                                current.stream.buffer = cap;
                            }
                            _ => {
                                return Err(CoreError::Parse {
                                    line: line_no,
                                    message: format!("unexpected stream option {t:?}"),
                                })
                            }
                        }
                    }
                    current.mode = ProcessingMode::Stream {
                        window_ms: window_ms.ok_or(CoreError::Parse {
                            line: line_no,
                            message: "stream mode needs window=<ms>".to_owned(),
                        })?,
                    };
                }
                other => {
                    return Err(CoreError::Parse {
                        line: line_no,
                        message: format!("mode expects batch|stream, got {other:?}"),
                    })
                }
            },
            "parallelism" => {
                current.parallelism = Some(parse_usize(&tokens, line_no)?);
            }
            "retries" => {
                current.max_task_retries = Some(parse_usize(&tokens, line_no)? as u32);
            }
            "seed" => {
                current.seed = parse_usize(&tokens, line_no)? as u64;
            }
            "policy" => {
                let name = tokens.get(1).ok_or(CoreError::Parse {
                    line: line_no,
                    message: "policy needs a name".to_owned(),
                })?;
                current.policy = Some(policy_lookup(name).ok_or_else(|| CoreError::Parse {
                    line: line_no,
                    message: format!("unknown policy {name:?}"),
                })?);
            }
            "objective" => {
                let (indicator, target) = parse_objective_clause(&tokens[1..], line_no)?;
                current
                    .objectives
                    .push(crate::declarative::Objective { indicator, target });
            }
            "goal" => {
                let cap_token = tokens.get(1).ok_or(CoreError::Parse {
                    line: line_no,
                    message: "goal needs a capability".to_owned(),
                })?;
                let capability = parse_capability(cap_token).ok_or_else(|| CoreError::Parse {
                    line: line_no,
                    message: format!("unknown capability {cap_token:?}"),
                })?;
                let mut goal = Goal::new(capability);
                let mut rest = &tokens[2..];
                // Params until `using` or `expect`.
                while let Some(t) = rest.first() {
                    match t.as_str() {
                        "using" => {
                            let id = rest.get(1).ok_or(CoreError::Parse {
                                line: line_no,
                                message: "using needs a service id".to_owned(),
                            })?;
                            goal.pinned_service = Some(id.clone());
                            rest = &rest[2..];
                        }
                        "expect" => {
                            let clause = rest.get(1..4).ok_or(CoreError::Parse {
                                line: line_no,
                                message: "expect needs `<indicator> <=|>= <value>`".to_owned(),
                            })?;
                            let (indicator, target) = parse_objective_clause(clause, line_no)?;
                            goal.objectives
                                .push(crate::declarative::Objective { indicator, target });
                            rest = &rest[4..];
                        }
                        other => match parse_kv(other) {
                            Some((k, v)) => {
                                goal.params.insert(k, v);
                                rest = &rest[1..];
                            }
                            None => {
                                return Err(CoreError::Parse {
                                    line: line_no,
                                    message: format!("expected key=value, got {other:?}"),
                                })
                            }
                        },
                    }
                }
                current.goals.push(goal);
            }
            other => {
                return Err(CoreError::Parse {
                    line: line_no,
                    message: format!("unknown keyword {other:?}"),
                })
            }
        }
    }
    let spec = spec.ok_or(CoreError::Parse {
        line: 1,
        message: "empty campaign text".to_owned(),
    })?;
    if spec.goals.is_empty() {
        return Err(CoreError::Parse {
            line: 1,
            message: "campaign declares no goals".to_owned(),
        });
    }
    Ok(spec)
}

fn parse_usize(tokens: &[String], line_no: usize) -> Result<usize> {
    tokens
        .get(1)
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| CoreError::Parse {
            line: line_no,
            message: format!("{} needs a non-negative integer", tokens[0]),
        })
}

// ======================================================= expression parser

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Int(i64),
    Str(String),
    Op(&'static str),
    LParen,
    RParen,
}

fn lex_expr(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let err = |m: String| CoreError::Parse {
        line: 0,
        message: m,
    };
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '\'' | '"' => {
                let q = c;
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(c) if c == q => break,
                        Some(c) => s.push(c),
                        None => return Err(err("unterminated string".to_owned())),
                    }
                }
                out.push(Tok::Str(s));
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                }
                out.push(Tok::Op("=="));
            }
            '!' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(err("expected != ".to_owned()));
                }
                out.push(Tok::Op("!="));
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Tok::Op("<="));
                } else {
                    out.push(Tok::Op("<"));
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Tok::Op(">="));
                } else {
                    out.push(Tok::Op(">"));
                }
            }
            '+' => {
                chars.next();
                out.push(Tok::Op("+"));
            }
            '-' => {
                chars.next();
                out.push(Tok::Op("-"));
            }
            '*' => {
                chars.next();
                out.push(Tok::Op("*"));
            }
            '/' => {
                chars.next();
                out.push(Tok::Op("/"));
            }
            '%' => {
                chars.next();
                out.push(Tok::Op("%"));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut s = String::new();
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else if c == '.' && !is_float {
                        is_float = true;
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if is_float {
                    out.push(Tok::Number(
                        s.parse().map_err(|_| err(format!("bad number {s:?}")))?,
                    ));
                } else {
                    out.push(Tok::Int(
                        s.parse().map_err(|_| err(format!("bad number {s:?}")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => return Err(err(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

struct ExprParser {
    toks: Vec<Tok>,
    pos: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn err(&self, m: impl Into<String>) -> CoreError {
        CoreError::Parse {
            line: 0,
            message: m.into(),
        }
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.expect_kw("or") {
            let right = self.and_expr()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.expect_kw("and") {
            let right = self.not_expr()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.expect_kw("not") {
            return Ok(self.not_expr()?.not());
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.sum()?;
        // `is null` / `is not null` postfix.
        if self.expect_kw("is") {
            if self.expect_kw("not") {
                if self.expect_kw("null") {
                    return Ok(left.is_not_null());
                }
                return Err(self.err("expected `null` after `is not`"));
            }
            if self.expect_kw("null") {
                return Ok(left.is_null());
            }
            return Err(self.err("expected `null` after `is`"));
        }
        let op = match self.peek() {
            Some(Tok::Op(op @ ("==" | "!=" | "<" | "<=" | ">" | ">="))) => *op,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.sum()?;
        Ok(match op {
            "==" => left.eq(right),
            "!=" => left.not_eq(right),
            "<" => left.lt(right),
            "<=" => left.lt_eq(right),
            ">" => left.gt(right),
            ">=" => left.gt_eq(right),
            _ => unreachable!(),
        })
    }

    fn sum(&mut self) -> Result<Expr> {
        let mut left = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Op("+")) => {
                    self.pos += 1;
                    left = left.add(self.term()?);
                }
                Some(Tok::Op("-")) => {
                    self.pos += 1;
                    left = left.sub(self.term()?);
                }
                _ => return Ok(left),
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut left = self.factor()?;
        loop {
            match self.peek() {
                Some(Tok::Op("*")) => {
                    self.pos += 1;
                    left = left.mul(self.factor()?);
                }
                Some(Tok::Op("/")) => {
                    self.pos += 1;
                    left = left.div(self.factor()?);
                }
                Some(Tok::Op("%")) => {
                    self.pos += 1;
                    left = left.modulo(self.factor()?);
                }
                _ => return Ok(left),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(lit(i)),
            Some(Tok::Number(x)) => Ok(lit(x)),
            Some(Tok::Str(s)) => Ok(lit(s.as_str())),
            Some(Tok::Op("-")) => Ok(self.factor()?.neg()),
            Some(Tok::Ident(s)) => match s.as_str() {
                "true" => Ok(lit(true)),
                "false" => Ok(lit(false)),
                "null" => Ok(Expr::Literal(Value::Null)),
                _ => Ok(col(s)),
            },
            Some(Tok::LParen) => {
                let inner = self.or_expr()?;
                match self.next() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(self.err("expected closing parenthesis")),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

/// Parse an infix predicate/expression string into an engine [`Expr`].
pub fn parse_expr(input: &str) -> Result<Expr> {
    let toks = lex_expr(input)?;
    if toks.is_empty() {
        return Err(CoreError::Parse {
            line: 0,
            message: "empty expression".to_owned(),
        });
    }
    let mut p = ExprParser { toks, pos: 0 };
    let e = p.or_expr()?;
    if p.pos != p.toks.len() {
        return Err(CoreError::Parse {
            line: 0,
            message: format!("trailing tokens after expression: {:?}", &p.toks[p.pos..]),
        });
    }
    Ok(e)
}

/// Parse a comma-separated aggregation list `func:column:alias,...`.
pub fn parse_agg_list(input: &str) -> Result<Vec<toreador_dataflow::logical::AggExpr>> {
    use toreador_dataflow::logical::{AggExpr, AggFunc};
    let mut out = Vec::new();
    for part in input.split(',').filter(|p| !p.trim().is_empty()) {
        let bits: Vec<&str> = part.trim().split(':').collect();
        if bits.len() != 3 {
            return Err(CoreError::Parse {
                line: 0,
                message: format!("aggregation {part:?} must be func:column:alias"),
            });
        }
        let func = match bits[0] {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "mean" => AggFunc::Mean,
            "count_distinct" => AggFunc::CountDistinct,
            other => {
                return Err(CoreError::Parse {
                    line: 0,
                    message: format!("unknown aggregate function {other:?}"),
                })
            }
        };
        out.push(AggExpr::new(func, bits[1], bits[2]));
    }
    if out.is_empty() {
        return Err(CoreError::Parse {
            line: 0,
            message: "empty aggregation list".to_owned(),
        });
    }
    Ok(out)
}

/// Parse a comma-separated column list.
pub fn parse_column_list(input: &str) -> Vec<String> {
    input
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Render a `CampaignSpec` back to canonical DSL params (used in run
/// records for reproducibility). Not a full pretty-printer — parameters
/// only, sorted.
pub fn render_params(params: &BTreeMap<String, String>) -> String {
    params
        .iter()
        .map(|(k, v)| {
            if v.contains(' ') {
                format!("{k}=\"{v}\"")
            } else {
                format!("{k}={v}")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::{Field, Schema};
    use toreador_data::value::DataType;
    use toreador_privacy::policy::healthcare_default;

    fn no_policy(_: &str) -> Option<toreador_privacy::policy::Policy> {
        None
    }

    #[test]
    fn parses_full_campaign() {
        let text = r#"
# revenue per country
campaign revenue on clicks
prefer cost
mode batch
parallelism 4
retries 2
seed 7
goal filtering predicate="action == 'purchase'"
goal aggregation group_by=country agg=sum:price:revenue expect runtime_ms <= 60000
objective cost <= 100
"#;
        let spec = parse_campaign(text, &no_policy).unwrap();
        assert_eq!(spec.name, "revenue");
        assert_eq!(spec.dataset, "clicks");
        assert_eq!(spec.goals.len(), 2);
        assert_eq!(spec.parallelism, Some(4));
        assert_eq!(spec.max_task_retries, Some(2));
        assert_eq!(spec.seed, 7);
        assert_eq!(
            spec.goals[0].get_param("predicate"),
            Some("action == 'purchase'")
        );
        assert_eq!(spec.goals[1].objectives.len(), 1);
        assert_eq!(spec.objectives.len(), 1);
        assert_eq!(spec.preferences, Preferences::cost_first());
    }

    #[test]
    fn parses_stream_mode_and_pin() {
        let text = "campaign s on tel\nmode stream window=3600000\ngoal anomaly_detection column=kwh using analytics.anomaly.rolling\n";
        let spec = parse_campaign(text, &no_policy).unwrap();
        assert_eq!(
            spec.mode,
            ProcessingMode::Stream {
                window_ms: 3_600_000
            }
        );
        assert_eq!(
            spec.goals[0].pinned_service.as_deref(),
            Some("analytics.anomaly.rolling")
        );
        // Defaults when no continuous options are given.
        assert_eq!(spec.stream, crate::declarative::StreamOptions::default());
    }

    #[test]
    fn parses_stream_continuous_options() {
        let text = "campaign s on tel\n\
                    mode stream window=1000 lateness=250 late=drop buffer=4\n\
                    goal aggregation group_by=region agg=sum:kwh:load\n";
        let spec = parse_campaign(text, &no_policy).unwrap();
        assert_eq!(spec.mode, ProcessingMode::Stream { window_ms: 1000 });
        assert_eq!(spec.stream.allowed_lateness_ms, 250);
        assert_eq!(spec.stream.late_policy, LateDataPolicy::Drop);
        assert_eq!(spec.stream.buffer, 4);
        // Bad spellings fail with a line-anchored parse error.
        for bad in [
            "campaign s on t\nmode stream window=1000 late=whenever\n",
            "campaign s on t\nmode stream window=1000 buffer=0\n",
            "campaign s on t\nmode stream window=1000 lateness=soon\n",
        ] {
            assert!(parse_campaign(bad, &no_policy).is_err(), "{bad}");
        }
    }

    #[test]
    fn policy_resolution() {
        let text = "campaign h on health\npolicy healthcare\ngoal anonymization k=5\n";
        let spec = parse_campaign(text, &|name| {
            (name == "healthcare").then(healthcare_default)
        })
        .unwrap();
        assert!(spec.policy.is_some());
        let err = parse_campaign(text, &no_policy).unwrap_err();
        assert!(err.to_string().contains("unknown policy"));
    }

    #[test]
    fn bare_quote_lines_are_skipped_not_panicking() {
        // Regression: a line of only quotes tokenises to zero tokens.
        let text = "campaign a on b\n\"\"\ngoal filtering predicate=\"x > 1\"\n";
        assert!(parse_campaign(text, &no_policy).is_ok());
        let text = "''\n";
        assert!(
            parse_campaign(text, &no_policy).is_err(),
            "still needs a campaign header"
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "campaign a on b\nbogus keyword here\ngoal filtering predicate=x\n";
        match parse_campaign(text, &no_policy) {
            Err(CoreError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Missing campaign header.
        let text = "goal filtering predicate=x\n";
        assert!(parse_campaign(text, &no_policy).is_err());
        // No goals.
        let text = "campaign a on b\n";
        assert!(parse_campaign(text, &no_policy).is_err());
        // Unknown capability.
        let text = "campaign a on b\ngoal telepathy\n";
        assert!(parse_campaign(text, &no_policy).is_err());
        // Bad objective operator.
        let text = "campaign a on b\ngoal filtering p=x\nobjective cost == 5\n";
        assert!(parse_campaign(text, &no_policy).is_err());
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("price", DataType::Float),
            Field::new("country", DataType::Str),
            Field::new("qty", DataType::Int),
            Field::new("ok", DataType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn expression_parser_handles_precedence() {
        let e = parse_expr("price + qty * 2 > 10").unwrap();
        assert_eq!(e.to_string(), "((price + (qty * 2)) > 10)");
        let e = parse_expr("(price + qty) * 2 > 10").unwrap();
        assert_eq!(e.to_string(), "(((price + qty) * 2) > 10)");
    }

    #[test]
    fn expression_parser_boolean_logic() {
        let e = parse_expr("country == 'IT' and price > 5 or ok").unwrap();
        // and binds tighter than or.
        assert_eq!(
            e.to_string(),
            "(((country = \"IT\") AND (price > 5)) OR ok)"
        );
        let e = parse_expr("not ok").unwrap();
        assert_eq!(e.to_string(), "NOT ok");
        let e = parse_expr("price is null or qty is not null").unwrap();
        assert!(e.to_string().contains("IS NULL"));
        assert!(e.infer_type(&schema()).is_ok());
    }

    #[test]
    fn parsed_expressions_type_check_and_evaluate() {
        use toreador_data::value::Value;
        let e = parse_expr("price * 2 >= qty and country != 'DE'").unwrap();
        let row = vec![
            Value::Float(3.0),
            Value::Str("IT".into()),
            Value::Int(5),
            Value::Bool(true),
        ];
        assert_eq!(e.eval(&schema(), &row).unwrap(), Value::Bool(true));
        let e = parse_expr("-price").unwrap();
        assert_eq!(e.eval(&schema(), &row).unwrap(), Value::Float(-3.0));
    }

    #[test]
    fn expression_parser_rejects_garbage() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("price >").is_err());
        assert!(parse_expr("(price > 1").is_err());
        assert!(parse_expr("price > 1 extra").is_err());
        assert!(parse_expr("price @ 2").is_err());
        assert!(parse_expr("'unterminated").is_err());
    }

    #[test]
    fn agg_list_parsing() {
        let aggs = parse_agg_list("sum:price:revenue, count:event_id:n").unwrap();
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].alias, "revenue");
        assert!(parse_agg_list("sum:price").is_err());
        assert!(parse_agg_list("median:price:x").is_err());
        assert!(parse_agg_list("").is_err());
    }

    #[test]
    fn column_list_parsing() {
        assert_eq!(parse_column_list("a, b ,c"), vec!["a", "b", "c"]);
        assert!(parse_column_list("  ").is_empty());
    }

    #[test]
    fn render_params_quotes_spaces() {
        let mut p = BTreeMap::new();
        p.insert("predicate".to_owned(), "a > 1".to_owned());
        p.insert("k".to_owned(), "5".to_owned());
        assert_eq!(render_params(&p), "k=5 predicate=\"a > 1\"");
    }
}
