//! The procedural model: an abstract service composition.
//!
//! The middle layer of the TOREADOR transformation chain ([2]): the
//! declarative model's goals become an OWL-S-style composition of concrete
//! catalogue services with bound parameters. The composition is still
//! platform-independent — binding to an engine happens in
//! [`crate::deployment`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use toreador_catalog::matching::{best, rank, ServiceGoal};
use toreador_catalog::registry::Registry;

use crate::declarative::{CampaignSpec, ProcessingMode};
use crate::error::{CoreError, Result};

/// One bound service call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceInvocation {
    pub service_id: String,
    /// Fully resolved parameters: goal params merged over catalogue defaults.
    pub params: BTreeMap<String, String>,
}

impl ServiceInvocation {
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// A required parameter, as a typed error if missing.
    pub fn required_param(&self, name: &str) -> Result<&str> {
        self.param(name).ok_or_else(|| CoreError::Parameter {
            service: self.service_id.clone(),
            message: format!("missing required parameter {name:?}"),
        })
    }
}

/// OWL-S-style control constructs. The planner currently emits sequences,
/// but the executor handles the full tree so compositions can be hand-built
/// (the Labs' solution templates use `Parallel` for side-by-side reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Composition {
    Invoke(ServiceInvocation),
    Sequence(Vec<Composition>),
    /// All branches run on the same input; their report artefacts are
    /// concatenated and the *first* branch's table flows onward.
    Parallel(Vec<Composition>),
}

impl Composition {
    /// All service ids, in execution order.
    pub fn service_ids(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_ids(&mut out);
        out
    }

    fn collect_ids<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Composition::Invoke(inv) => out.push(&inv.service_id),
            Composition::Sequence(parts) | Composition::Parallel(parts) => {
                for p in parts {
                    p.collect_ids(out);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.service_ids().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn render(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Composition::Invoke(inv) => {
                out.push_str(&pad);
                out.push_str(&inv.service_id);
                if !inv.params.is_empty() {
                    out.push(' ');
                    out.push_str(&crate::dsl::render_params(&inv.params));
                }
                out.push('\n');
            }
            Composition::Sequence(parts) => {
                out.push_str(&pad);
                out.push_str("sequence\n");
                for p in parts {
                    p.render(depth + 1, out);
                }
            }
            Composition::Parallel(parts) => {
                out.push_str(&pad);
                out.push_str("parallel\n");
                for p in parts {
                    p.render(depth + 1, out);
                }
            }
        }
    }
}

impl fmt::Display for Composition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(0, &mut s);
        f.write_str(&s)
    }
}

/// The procedural model: a named composition plus provenance of the choices
/// that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProceduralModel {
    pub campaign: String,
    pub composition: Composition,
    /// For each goal, the chosen service and the rejected alternatives
    /// (ids, best first). The rejected list is what the Labs' alternative
    /// explorer feeds on.
    pub choices: Vec<ChoiceRecord>,
}

/// Provenance of one goal's service selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChoiceRecord {
    pub goal_index: usize,
    pub chosen: String,
    pub alternatives: Vec<String>,
    /// True when the spec pinned the service rather than letting
    /// preferences decide.
    pub pinned: bool,
}

/// Compile the declarative goals into a procedural composition.
///
/// Each goal resolves to one service invocation — pinned if the goal says
/// so, otherwise the preference-ranked best — with goal params merged over
/// the catalogue defaults. Goals compose in declaration order (the DSL is
/// explicit about pipeline order; reordering is a design choice the Labs
/// leave to the trainee).
pub fn plan(spec: &CampaignSpec, registry: &Registry) -> Result<ProceduralModel> {
    let mut stages = Vec::with_capacity(spec.goals.len());
    let mut choices = Vec::with_capacity(spec.goals.len());
    for (goal_index, goal) in spec.goals.iter().enumerate() {
        let service_goal = {
            let mut g = ServiceGoal::capability(goal.capability);
            if matches!(spec.mode, ProcessingMode::Stream { .. }) {
                g = g.streaming();
            }
            g
        };
        let ranked = rank(registry, &service_goal, &spec.preferences);
        let (descriptor, pinned) = match &goal.pinned_service {
            Some(id) => {
                let d = registry.get(id)?;
                if d.capability != goal.capability {
                    return Err(CoreError::Catalog(format!(
                        "pinned service {id:?} provides {:?}, goal wants {:?}",
                        d.capability, goal.capability
                    )));
                }
                (d, true)
            }
            None => (best(registry, &service_goal, &spec.preferences)?, false),
        };
        // Params: defaults first, then goal overrides.
        let mut params: BTreeMap<String, String> = descriptor
            .params
            .iter()
            .filter(|p| !p.default.is_empty())
            .map(|p| (p.name.clone(), p.default.clone()))
            .collect();
        for (k, v) in &goal.params {
            params.insert(k.clone(), v.clone());
        }
        choices.push(ChoiceRecord {
            goal_index,
            chosen: descriptor.id.clone(),
            alternatives: ranked
                .iter()
                .map(|c| c.service.id.clone())
                .filter(|id| id != &descriptor.id)
                .collect(),
            pinned,
        });
        stages.push(Composition::Invoke(ServiceInvocation {
            service_id: descriptor.id.clone(),
            params,
        }));
    }
    Ok(ProceduralModel {
        campaign: spec.name.clone(),
        composition: Composition::Sequence(stages),
        choices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declarative::Goal;
    use toreador_catalog::builtin::standard_catalog;
    use toreador_catalog::descriptor::Capability;
    use toreador_catalog::matching::Preferences;

    fn spec() -> CampaignSpec {
        CampaignSpec::new("t", "clicks")
            .goal(Goal::new(Capability::Filtering).param("predicate", "price > 1"))
            .goal(
                Goal::new(Capability::Classification)
                    .param("target", "label")
                    .param("features", "a,b"),
            )
    }

    #[test]
    fn plan_resolves_each_goal_in_order() {
        let r = standard_catalog();
        let m = plan(&spec(), &r).unwrap();
        let ids = m.composition.service_ids();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], "processing.filter");
        assert!(ids[1].starts_with("analytics."));
        assert_eq!(m.choices.len(), 2);
        assert!(!m.choices[1].pinned);
        assert!(
            !m.choices[1].alternatives.is_empty(),
            "classification has alternatives"
        );
    }

    #[test]
    fn preferences_change_the_chosen_service() {
        let r = standard_catalog();
        let quality = plan(&spec().prefer(Preferences::quality_first()), &r).unwrap();
        let cost = plan(&spec().prefer(Preferences::cost_first()), &r).unwrap();
        assert_eq!(quality.composition.service_ids()[1], "analytics.tree");
        assert_eq!(cost.composition.service_ids()[1], "analytics.naivebayes");
    }

    #[test]
    fn pinning_overrides_preferences() {
        let r = standard_catalog();
        let s = CampaignSpec::new("t", "d")
            .prefer(Preferences::quality_first())
            .goal(Goal::new(Capability::Classification).pin("analytics.naivebayes"));
        let m = plan(&s, &r).unwrap();
        assert_eq!(m.composition.service_ids()[0], "analytics.naivebayes");
        assert!(m.choices[0].pinned);
        // Capability mismatch still rejected.
        let s = CampaignSpec::new("t", "d")
            .goal(Goal::new(Capability::Clustering).pin("analytics.naivebayes"));
        assert!(plan(&s, &r).is_err());
    }

    #[test]
    fn defaults_merge_under_goal_params() {
        let r = standard_catalog();
        let s = CampaignSpec::new("t", "d").goal(
            Goal::new(Capability::Clustering)
                .param("features", "x,y")
                .param("k", "7"),
        );
        let m = plan(&s, &r).unwrap();
        let Composition::Sequence(stages) = &m.composition else {
            panic!()
        };
        let Composition::Invoke(inv) = &stages[0] else {
            panic!()
        };
        assert_eq!(inv.param("k"), Some("7"), "goal overrides default");
        assert_eq!(inv.param("features"), Some("x,y"));
    }

    #[test]
    fn streaming_mode_restricts_candidates() {
        let r = standard_catalog();
        let s = CampaignSpec::new("t", "d")
            .mode(ProcessingMode::Stream { window_ms: 1000 })
            .goal(Goal::new(Capability::AssociationRules));
        assert!(plan(&s, &r).is_err(), "apriori is batch-only");
    }

    #[test]
    fn display_renders_composition() {
        let r = standard_catalog();
        let m = plan(&spec(), &r).unwrap();
        let s = m.composition.to_string();
        assert!(s.contains("sequence"));
        assert!(s.contains("processing.filter"));
        assert!(s.contains("predicate="));
    }

    #[test]
    fn required_param_errors_cleanly() {
        let inv = ServiceInvocation {
            service_id: "x".to_owned(),
            params: BTreeMap::new(),
        };
        let err = inv.required_param("k").unwrap_err();
        assert!(err.to_string().contains("missing required parameter"));
    }
}
