//! The deployment model: binding a procedural composition to a platform.
//!
//! The last transformation before execution: pick a platform descriptor,
//! derive the engine configuration (threads, partitions, retries), and
//! estimate the campaign's cost from the catalogue annotations — the number
//! the "as-a-Service" customer sees before committing.

use serde::{Deserialize, Serialize};

use toreador_catalog::registry::Registry;
use toreador_dataflow::fault::ChaosPlan;
use toreador_dataflow::optimizer::OptimizerConfig;
use toreador_dataflow::resilience::{ResilienceConfig, RetryPolicy, TaskDeadline};
use toreador_dataflow::session::EngineConfig;

use crate::declarative::{CampaignSpec, ProcessingMode};
use crate::error::{CoreError, Result};
use crate::procedural::ProceduralModel;

/// A (simulated) execution platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformDescriptor {
    pub name: String,
    /// Worker threads available.
    pub workers: usize,
    /// Default data partitions.
    pub default_partitions: usize,
    pub supports_streaming: bool,
    /// Abstract cost units per worker per campaign run (platform rent).
    pub rent: f64,
    /// Per-run memory budget for wide operators. When set, the derived
    /// engine configuration spills shuffle and aggregation runs to paged
    /// files beyond this many bytes instead of holding them resident —
    /// how a small rented tier runs campaigns bigger than its RAM.
    /// Absent (`None`) in older descriptors: unbounded, never spills.
    #[serde(default)]
    pub memory_budget_bytes: Option<u64>,
}

/// The built-in platform menu.
pub fn builtin_platforms() -> Vec<PlatformDescriptor> {
    vec![
        PlatformDescriptor {
            name: "lab-free-tier".to_owned(),
            workers: 2,
            default_partitions: 4,
            supports_streaming: true,
            rent: 0.0,
            // The free tier is the one platform small enough for its
            // budget to matter: campaigns beyond 256 MiB of working set
            // spill instead of failing.
            memory_budget_bytes: Some(256 << 20),
        },
        PlatformDescriptor {
            name: "batch-cluster".to_owned(),
            workers: 8,
            default_partitions: 16,
            supports_streaming: false,
            rent: 8.0,
            memory_budget_bytes: None,
        },
        PlatformDescriptor {
            name: "stream-cluster".to_owned(),
            workers: 4,
            default_partitions: 8,
            supports_streaming: true,
            rent: 6.0,
            memory_budget_bytes: None,
        },
    ]
}

/// The deployment model: platform + derived engine configuration + cost.
#[derive(Debug, Clone)]
pub struct DeploymentModel {
    pub platform: PlatformDescriptor,
    pub engine_config: EngineConfig,
    pub mode: ProcessingMode,
    /// Estimated abstract cost for `estimated_rows` input rows.
    pub estimated_cost: f64,
    pub estimated_rows: usize,
}

/// Pick the cheapest platform compatible with the campaign mode and
/// requested parallelism, then derive the engine configuration.
pub fn bind(
    spec: &CampaignSpec,
    procedural: &ProceduralModel,
    registry: &Registry,
    platforms: &[PlatformDescriptor],
    estimated_rows: usize,
) -> Result<DeploymentModel> {
    let needs_stream = matches!(spec.mode, ProcessingMode::Stream { .. });
    let wanted_workers = spec.parallelism.unwrap_or(1);
    let mut feasible: Vec<&PlatformDescriptor> = platforms
        .iter()
        .filter(|p| !needs_stream || p.supports_streaming)
        .filter(|p| p.workers >= wanted_workers)
        .collect();
    feasible.sort_by(|a, b| a.rent.total_cmp(&b.rent).then_with(|| a.name.cmp(&b.name)));
    let platform = feasible
        .first()
        .ok_or_else(|| {
            CoreError::Catalog(format!(
                "no platform supports mode {:?} with {wanted_workers} workers",
                spec.mode
            ))
        })?
        .to_owned()
        .clone();

    let threads = spec
        .parallelism
        .unwrap_or(platform.workers)
        .min(platform.workers);
    let resilience = match spec.max_task_retries {
        // The Labs platform injects a small background fault rate so the
        // retry budget is a real design decision, not dead configuration.
        // Retried attempts back off exponentially (seeded jitter keeps the
        // schedule reproducible per campaign) and a generous per-task
        // deadline turns hung tasks into retryable timeouts.
        Some(retries) if retries > 0 => ResilienceConfig::none()
            .with_retry(
                RetryPolicy::exponential(retries + 1, 500, 20_000).with_jitter(0.25, spec.seed),
            )
            .with_deadline(TaskDeadline::from_millis(30_000))
            .with_chaos(ChaosPlan::crashes(0.02, spec.seed)),
        _ => ResilienceConfig::none(),
    };
    // Resilience is not free: every budgeted retry reserves standby
    // capacity, so alternatives with deeper retry budgets price higher and
    // the Labs comparison surfaces the robustness/cost trade-off.
    let retry_budget = resilience.retry.max_attempts.saturating_sub(1);
    let mut engine_config = EngineConfig::default()
        .with_threads(threads)
        .with_partitions(platform.default_partitions)
        .with_optimizer(OptimizerConfig::default())
        .with_resilience(resilience);
    if let Some(budget) = platform.memory_budget_bytes {
        engine_config = engine_config.with_memory_budget(budget);
    }

    let service_cost: f64 = procedural
        .composition
        .service_ids()
        .iter()
        .map(|id| {
            registry
                .get(id)
                .map(|d| d.estimate_cost(estimated_rows))
                .unwrap_or(0.0)
        })
        .sum();
    let resilience_premium = platform.rent * 0.05 * retry_budget as f64;
    let estimated_cost = service_cost + platform.rent * threads as f64 + resilience_premium;

    Ok(DeploymentModel {
        platform,
        engine_config,
        mode: spec.mode,
        estimated_cost,
        estimated_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::declarative::Goal;
    use crate::procedural::plan;
    use toreador_catalog::builtin::standard_catalog;
    use toreador_catalog::descriptor::Capability;

    fn spec() -> CampaignSpec {
        CampaignSpec::new("t", "d")
            .goal(Goal::new(Capability::Filtering).param("predicate", "x > 1"))
    }

    #[test]
    fn picks_cheapest_feasible_platform() {
        let r = standard_catalog();
        let p = plan(&spec(), &r).unwrap();
        let d = bind(&spec(), &p, &r, &builtin_platforms(), 10_000).unwrap();
        assert_eq!(d.platform.name, "lab-free-tier", "free tier wins on rent");
        // Asking for 8 workers forces the batch cluster.
        let s8 = spec().with_parallelism(8);
        let d = bind(&s8, &p, &r, &builtin_platforms(), 10_000).unwrap();
        assert_eq!(d.platform.name, "batch-cluster");
        assert_eq!(d.engine_config.threads, 8);
    }

    #[test]
    fn stream_mode_excludes_batch_platforms() {
        let r = standard_catalog();
        let s = CampaignSpec::new("t", "d")
            .mode(ProcessingMode::Stream { window_ms: 1000 })
            .with_parallelism(8)
            .goal(Goal::new(Capability::Filtering).param("predicate", "x > 1"));
        let p = plan(&s, &r).unwrap();
        // batch-cluster has 8 workers but no streaming; nothing else has 8.
        assert!(bind(&s, &p, &r, &builtin_platforms(), 1000).is_err());
        let s4 = CampaignSpec::new("t", "d")
            .mode(ProcessingMode::Stream { window_ms: 1000 })
            .with_parallelism(4)
            .goal(Goal::new(Capability::Filtering).param("predicate", "x > 1"));
        let p = plan(&s4, &r).unwrap();
        let d = bind(&s4, &p, &r, &builtin_platforms(), 1000).unwrap();
        assert_eq!(d.platform.name, "stream-cluster");
    }

    #[test]
    fn cost_scales_with_rows_and_services() {
        let r = standard_catalog();
        let small_spec = spec();
        let p1 = plan(&small_spec, &r).unwrap();
        let cheap = bind(&small_spec, &p1, &r, &builtin_platforms(), 1_000).unwrap();
        let dear = bind(&small_spec, &p1, &r, &builtin_platforms(), 1_000_000).unwrap();
        assert!(dear.estimated_cost > cheap.estimated_cost);
        // More services, more cost.
        let big_spec = spec().goal(Goal::new(Capability::Clustering).param("features", "x"));
        let p2 = plan(&big_spec, &r).unwrap();
        let more = bind(&big_spec, &p2, &r, &builtin_platforms(), 1_000).unwrap();
        assert!(more.estimated_cost > cheap.estimated_cost);
    }

    #[test]
    fn retries_enable_resilience_policy() {
        let r = standard_catalog();
        let s = spec().with_retries(3);
        let p = plan(&s, &r).unwrap();
        let d = bind(&s, &p, &r, &builtin_platforms(), 1000).unwrap();
        let res = &d.engine_config.resilience;
        assert!(res.chaos.crash_rate > 0.0, "background faults are on");
        assert_eq!(res.retry.max_attempts, 4);
        assert!(res.retry.jitter > 0.0);
        assert!(res.deadline.is_some(), "hung tasks get a deadline");
        let s0 = spec();
        let d0 = bind(&s0, &plan(&s0, &r).unwrap(), &r, &builtin_platforms(), 1000).unwrap();
        let calm = &d0.engine_config.resilience;
        assert!(calm.chaos.is_none());
        assert_eq!(calm.retry.max_attempts, 1);
    }

    #[test]
    fn platform_memory_budget_reaches_the_engine_config() {
        let r = standard_catalog();
        let p = plan(&spec(), &r).unwrap();
        let d = bind(&spec(), &p, &r, &builtin_platforms(), 1000).unwrap();
        assert_eq!(d.platform.name, "lab-free-tier");
        assert_eq!(d.engine_config.memory_budget_bytes, Some(256 << 20));
        // Unbudgeted platforms leave the engine unbounded.
        let s8 = spec().with_parallelism(8);
        let d8 = bind(&s8, &p, &r, &builtin_platforms(), 1000).unwrap();
        assert_eq!(d8.platform.name, "batch-cluster");
        assert_eq!(d8.engine_config.memory_budget_bytes, None);
        // Older serialized descriptors (no budget field) still parse.
        let legacy = r#"{"name":"old","workers":2,"default_partitions":4,
            "supports_streaming":true,"rent":1.0}"#;
        let old: PlatformDescriptor = serde_json::from_str(legacy).unwrap();
        assert_eq!(old.memory_budget_bytes, None);
    }

    #[test]
    fn deeper_retry_budgets_cost_more() {
        let r = standard_catalog();
        // lab-free-tier has zero rent, so force a rented platform where the
        // premium is visible.
        let s0 = spec().with_parallelism(8);
        let s3 = spec().with_parallelism(8).with_retries(3);
        let s6 = spec().with_parallelism(8).with_retries(6);
        let p = plan(&s0, &r).unwrap();
        let d0 = bind(&s0, &p, &r, &builtin_platforms(), 1000).unwrap();
        let d3 = bind(&s3, &p, &r, &builtin_platforms(), 1000).unwrap();
        let d6 = bind(&s6, &p, &r, &builtin_platforms(), 1000).unwrap();
        assert!(d3.estimated_cost > d0.estimated_cost);
        assert!(d6.estimated_cost > d3.estimated_cost);
    }
}
