//! The BDAaaS function: declarative model in, executed campaign out.
//!
//! §2 of the paper: "BDAaaS can be seen as a function that takes as input
//! users' Big Data goals and preferences, and returns as output a
//! ready-to-be-executed Big Data pipeline." [`Bdaas::compile`] is that
//! function; [`Bdaas::run`] executes the result and measures every declared
//! indicator, so objectives become checkable facts.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::Instant;

use toreador_catalog::builtin::standard_catalog;
use toreador_catalog::registry::Registry;
use toreador_data::schema::Schema;
use toreador_data::table::Table;
use toreador_privacy::audit::AuditEvent;
use toreador_privacy::checker::{check_manifest, check_output, PrivacyManifest, Verdict};
use toreador_privacy::policy::{DataClass, Policy};

use crate::consistency;
use crate::declarative::{CampaignSpec, Indicator, Objective, ProcessingMode};
use crate::deployment::{bind, builtin_platforms, DeploymentModel, PlatformDescriptor};
use crate::dsl::{parse_campaign, parse_column_list};
use crate::error::{CoreError, Result};
use crate::procedural::{plan, Composition, ProceduralModel};
use crate::service_impl::{execute_composition, PipelineState, ServiceContext};

/// The BDAaaS entry point: a catalogue, a platform menu, and named
/// policies.
pub struct Bdaas {
    registry: Registry,
    platforms: Vec<PlatformDescriptor>,
    policies: HashMap<String, Policy>,
}

impl Default for Bdaas {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdaas {
    /// The standard configuration: built-in catalogue, built-in platforms,
    /// and the healthcare GDPR policy registered as "healthcare".
    pub fn new() -> Self {
        let mut policies = HashMap::new();
        policies.insert(
            "healthcare".to_owned(),
            toreador_privacy::policy::healthcare_default(),
        );
        Bdaas {
            registry: standard_catalog(),
            platforms: builtin_platforms(),
            policies,
        }
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn platforms(&self) -> &[PlatformDescriptor] {
        &self.platforms
    }

    /// Register a named policy for DSL `policy <name>` statements.
    pub fn add_policy(&mut self, name: impl Into<String>, policy: Policy) {
        self.policies.insert(name.into(), policy);
    }

    /// Parse DSL text into a declarative model (policies resolve against
    /// the registered names).
    pub fn parse(&self, text: &str) -> Result<CampaignSpec> {
        parse_campaign(text, &|name| self.policies.get(name).cloned())
    }

    /// The BDAaaS function: validate, plan, bind, and compliance-check.
    pub fn compile(
        &self,
        spec: &CampaignSpec,
        schema: &Schema,
        estimated_rows: usize,
    ) -> Result<CompiledCampaign> {
        let findings = consistency::check(spec, &self.registry, Some(schema));
        if !consistency::is_consistent(&findings) {
            return Err(CoreError::Inconsistent(consistency::render(&findings)));
        }
        let procedural = plan(spec, &self.registry)?;
        let deployment = bind(
            spec,
            &procedural,
            &self.registry,
            &self.platforms,
            estimated_rows,
        )?;
        let manifest = infer_manifest(spec, &procedural, schema);
        if let Some(policy) = &spec.policy {
            let verdict = check_manifest(policy, &manifest);
            if !verdict.compliant {
                let detail = verdict
                    .violations
                    .iter()
                    .map(|v| format!("{}: {}", v.requirement, v.detail))
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(CoreError::NonCompliant(detail));
            }
        }
        Ok(CompiledCampaign {
            spec: spec.clone(),
            warnings: findings,
            procedural,
            deployment,
            manifest,
        })
    }

    /// Execute a compiled campaign on the given input (plus any auxiliary
    /// datasets joins need).
    pub fn run(
        &self,
        compiled: &CompiledCampaign,
        input: Table,
        auxiliary: &HashMap<String, Table>,
    ) -> Result<CampaignOutcome> {
        match compiled.deployment.mode {
            ProcessingMode::Batch => self.run_batch(compiled, input, auxiliary, None),
            ProcessingMode::Stream { window_ms } => {
                self.run_stream(compiled, input, auxiliary, window_ms)
            }
        }
    }

    /// [`Self::run`] with stage-boundary checkpointing: every processing
    /// stage's shuffle waves are durably checkpointed under the spec's run
    /// id, and a resuming spec restores completed waves instead of
    /// recomputing them. Batch campaigns only — streaming windows carry
    /// cross-batch state that per-wave checkpoints cannot capture.
    pub fn run_with_recovery(
        &self,
        compiled: &CompiledCampaign,
        input: Table,
        auxiliary: &HashMap<String, Table>,
        recovery: &RecoverySpec,
    ) -> Result<CampaignOutcome> {
        match compiled.deployment.mode {
            ProcessingMode::Batch => self.run_batch(compiled, input, auxiliary, Some(recovery)),
            ProcessingMode::Stream { .. } => Err(CoreError::Execution(
                "checkpointed recovery supports batch campaigns only".to_owned(),
            )),
        }
    }

    fn run_batch(
        &self,
        compiled: &CompiledCampaign,
        input: Table,
        auxiliary: &HashMap<String, Table>,
        recovery: Option<&RecoverySpec>,
    ) -> Result<CampaignOutcome> {
        let started = Instant::now();
        let mut state = PipelineState::new(input);
        state.audit.record(AuditEvent::DatasetAccess {
            dataset: compiled.spec.dataset.clone(),
            pipeline: compiled.spec.name.clone(),
        });
        let ctx = ServiceContext {
            pipeline: &compiled.spec.name,
            engine_config: compiled.deployment.engine_config.clone(),
            auxiliary,
            seed: compiled.spec.seed,
            recovery,
        };
        execute_composition(&compiled.procedural.composition, &ctx, &mut state)?;
        let runtime_ms = started.elapsed().as_secs_f64() * 1e3;
        self.finish(compiled, state, runtime_ms, None)
    }

    fn run_stream(
        &self,
        compiled: &CompiledCampaign,
        input: Table,
        auxiliary: &HashMap<String, Table>,
        window_ms: i64,
    ) -> Result<CampaignOutcome> {
        use toreador_dataflow::error::FlowError;
        use toreador_dataflow::streaming::{
            run_continuous_with, ArrivalSource, BatchOutput, LatePolicy, StreamConfig,
        };
        let started = Instant::now();
        // Arrival-order cutting: batches break at event-window boundaries but
        // rows are never re-sorted, so out-of-order arrivals reach the
        // watermark as late data instead of being quietly absorbed into
        // earlier windows. For non-decreasing timestamps this produces the
        // same non-empty windows as event-time tumbling.
        let mut source = ArrivalSource::windows(&input, "ts", window_ms)
            .map_err(|e| CoreError::Execution(e.to_string()))?;
        let late_policy = match compiled.spec.stream.late_policy {
            crate::declarative::LateDataPolicy::Absorb => LatePolicy::Absorb,
            crate::declarative::LateDataPolicy::SideChannel => LatePolicy::SideChannel,
            crate::declarative::LateDataPolicy::Drop => LatePolicy::Drop,
        };
        let config = StreamConfig::default()
            .with_engine(compiled.deployment.engine_config.clone())
            .with_ts_column("ts")
            .with_allowed_lateness(compiled.spec.stream.allowed_lateness_ms)
            .with_late_policy(late_policy)
            .with_buffer(compiled.spec.stream.buffer)
            .with_pipeline_id(&compiled.spec.name);
        let mut merged: Option<PipelineState> = None;
        let mut outputs: Vec<Table> = Vec::new();
        let mut batch_latencies = Vec::new();
        let run = run_continuous_with(&mut source, &config, None, &mut |_, batch| {
            let batch_started = Instant::now();
            let mut state = PipelineState::new(batch.clone());
            let ctx = ServiceContext {
                pipeline: &compiled.spec.name,
                engine_config: compiled.deployment.engine_config.clone(),
                auxiliary,
                seed: compiled.spec.seed,
                recovery: None,
            };
            execute_composition(&compiled.procedural.composition, &ctx, &mut state)
                .map_err(|e| FlowError::Stream(e.to_string()))?;
            batch_latencies.push(batch_started.elapsed().as_secs_f64() * 1e3);
            outputs.push(state.table.clone());
            let table = state.table.clone();
            merged = Some(match merged.take() {
                None => state,
                Some(mut acc) => {
                    acc.input_rows += state.input_rows;
                    acc.reports.extend(state.reports);
                    acc.measured.extend(state.measured);
                    acc.engine_metrics.extend(state.engine_metrics);
                    acc.engine_traces.extend(state.engine_traces);
                    acc.suppressed_rows += state.suppressed_rows;
                    acc.dp_spent += state.dp_spent;
                    acc.kanon_applied = acc.kanon_applied.or(state.kanon_applied);
                    acc.record_level &= state.record_level;
                    acc.ldiv_applied = acc.ldiv_applied.or(state.ldiv_applied);
                    for e in state.audit.entries() {
                        acc.audit.record(e.event.clone());
                    }
                    acc
                }
            });
            Ok(BatchOutput {
                table,
                metrics: None,
                trace: None,
            })
        })
        .map_err(|e| CoreError::Execution(e.to_string()))?;
        let mut state = merged.ok_or_else(|| {
            CoreError::Execution("stream produced no non-empty batches".to_owned())
        })?;
        // The continuous loop's own journal (backpressure, watermarks, late
        // data, acks) joins the campaign's trace set, so stream totals
        // surface in run records and comparisons.
        state.engine_traces.push(run.stream_trace);
        state.table = Table::concat(&outputs).map_err(|e| CoreError::Data(e.to_string()))?;
        state.audit.record(AuditEvent::DatasetAccess {
            dataset: compiled.spec.dataset.clone(),
            pipeline: compiled.spec.name.clone(),
        });
        let runtime_ms = started.elapsed().as_secs_f64() * 1e3;
        let mean_latency = if batch_latencies.is_empty() {
            0.0
        } else {
            batch_latencies.iter().sum::<f64>() / batch_latencies.len() as f64
        };
        self.finish(compiled, state, runtime_ms, Some(mean_latency))
    }

    fn finish(
        &self,
        compiled: &CompiledCampaign,
        mut state: PipelineState,
        runtime_ms: f64,
        batch_latency_ms: Option<f64>,
    ) -> Result<CampaignOutcome> {
        let mut indicators: BTreeMap<String, f64> = BTreeMap::new();
        indicators.insert(Indicator::RuntimeMs.name().to_owned(), runtime_ms);
        let throughput = if runtime_ms > 0.0 {
            state.input_rows as f64 / (runtime_ms / 1e3)
        } else {
            0.0
        };
        indicators.insert(Indicator::Throughput.name().to_owned(), throughput);
        // Cost: the deployment estimate re-scaled to the actual input size.
        let cost = if compiled.deployment.estimated_rows > 0 {
            compiled.deployment.estimated_cost * state.input_rows as f64
                / compiled.deployment.estimated_rows as f64
        } else {
            compiled.deployment.estimated_cost
        };
        indicators.insert(Indicator::Cost.name().to_owned(), cost);
        // Accuracy: mean of the analytics services' held-out quality.
        let accs: Vec<f64> = state
            .measured
            .iter()
            .filter(|(i, _)| *i == Indicator::Accuracy)
            .map(|(_, v)| *v)
            .collect();
        if !accs.is_empty() {
            indicators.insert(
                Indicator::Accuracy.name().to_owned(),
                accs.iter().sum::<f64>() / accs.len() as f64,
            );
        }
        // Coverage: record-level rows that survive to the release. An
        // aggregate-only release (DP) covers zero individual records — that
        // is exactly its trade against anonymised record releases.
        let coverage = if !state.record_level {
            0.0
        } else if state.input_rows == 0 {
            1.0
        } else {
            1.0 - state.suppressed_rows as f64 / state.input_rows as f64
        };
        indicators.insert(Indicator::Coverage.name().to_owned(), coverage);
        // Privacy risk: 1/k for k-anonymous releases, ε-scaled for DP, 1
        // for raw record-level output.
        let risk = if state.dp_spent > 0.0 {
            (state.dp_spent / 10.0).min(1.0)
        } else if let Some(k) = state.kanon_applied {
            1.0 / k as f64
        } else {
            1.0
        };
        indicators.insert(Indicator::PrivacyRisk.name().to_owned(), risk);
        if let Some(lat) = batch_latency_ms {
            indicators.insert(Indicator::BatchLatencyMs.name().to_owned(), lat);
        }

        // Objective evaluation.
        let objectives: Vec<ObjectiveOutcome> = compiled
            .spec
            .all_objectives()
            .into_iter()
            .map(|objective| {
                let measured = indicators.get(objective.indicator.name()).copied();
                let satisfied = measured.map(|v| objective.target.satisfied_by(v));
                ObjectiveOutcome {
                    objective,
                    measured,
                    satisfied,
                }
            })
            .collect();

        // Post-hoc dynamic compliance check.
        let post_verdict = match &compiled.spec.policy {
            None => None,
            Some(policy) => {
                let qi: Vec<String> = policy
                    .columns_of(DataClass::QuasiIdentifier)
                    .into_iter()
                    .map(str::to_owned)
                    .collect();
                let sensitive = policy
                    .columns_of(DataClass::Sensitive)
                    .first()
                    .map(|s| s.to_string());
                let verdict = check_output(policy, &state.table, &qi, sensitive.as_deref())
                    .map_err(|e| CoreError::Privacy(e.to_string()))?;
                state.audit.record(AuditEvent::ComplianceCheck {
                    pipeline: compiled.spec.name.clone(),
                    policy: policy.name.clone(),
                    passed: verdict.compliant,
                });
                Some(verdict)
            }
        };

        Ok(CampaignOutcome {
            output: state.table,
            reports: state.reports,
            indicators,
            objectives,
            engine_metrics: state.engine_metrics,
            engine_traces: state.engine_traces,
            audit: state.audit,
            post_verdict,
        })
    }
}

/// Infer the privacy manifest of a composition statically by walking the
/// services' schema effects.
fn infer_manifest(
    spec: &CampaignSpec,
    procedural: &ProceduralModel,
    schema: &Schema,
) -> PrivacyManifest {
    let mut columns: Vec<String> = schema.names().iter().map(|s| s.to_string()).collect();
    let mut manifest = PrivacyManifest {
        columns_read: columns.clone(),
        ..Default::default()
    };
    fn walk(comp: &Composition, columns: &mut Vec<String>, manifest: &mut PrivacyManifest) {
        match comp {
            Composition::Sequence(parts) | Composition::Parallel(parts) => {
                for p in parts {
                    walk(p, columns, manifest);
                }
            }
            Composition::Invoke(inv) => match inv.service_id.as_str() {
                "processing.aggregate" => {
                    let mut next = inv
                        .param("group_by")
                        .map(parse_column_list)
                        .unwrap_or_default();
                    if let Some(aggs) = inv.param("agg") {
                        for part in aggs.split(',') {
                            if let Some(alias) = part.trim().split(':').nth(2) {
                                next.push(alias.to_owned());
                            }
                        }
                    }
                    *columns = next;
                }
                "privacy.dp.aggregate" => {
                    *columns = vec![
                        "group".to_owned(),
                        "noisy_count".to_owned(),
                        "noisy_sum".to_owned(),
                    ];
                    if let Some(eps) = inv.param("epsilon").and_then(|e| e.parse::<f64>().ok()) {
                        manifest.dp_epsilon = Some(manifest.dp_epsilon.unwrap_or(0.0) + eps);
                    }
                }
                "privacy.kanon" => {
                    if let Some(k) = inv.param("k").and_then(|k| k.parse().ok()) {
                        manifest.k_anonymity = Some(k);
                    }
                }
                "privacy.ldiv" => {
                    if let Some(l) = inv.param("l").and_then(|l| l.parse().ok()) {
                        manifest.l_diversity = Some(l);
                    }
                }
                "prep.encode.onehot" => {
                    if let Some(c) = inv.param("column") {
                        columns.retain(|x| x != c);
                    }
                }
                "analytics.kmeans" => columns.push("cluster".to_owned()),
                "analytics.anomaly.zscore" | "analytics.anomaly.rolling" => {
                    columns.push("is_anomaly".to_owned())
                }
                _ => {}
            },
        }
    }
    walk(&procedural.composition, &mut columns, &mut manifest);
    let _ = spec;
    manifest.columns_output = columns;
    manifest
}

/// How a campaign run interacts with the checkpoint store. A campaign may
/// run several dataflow engines in sequence (one per processing stage);
/// each gets its own checkpoint subdirectory `<run_id>/engine-NNN`, keyed
/// by its ordinal in execution order.
#[derive(Debug, Clone)]
pub struct RecoverySpec {
    /// Root checkpoint directory.
    pub root: PathBuf,
    /// Campaign-level run identity.
    pub run_id: String,
    /// When true, restore completed waves before executing.
    pub resume: bool,
    /// Deterministic process-kill point for the crash-recovery harness.
    pub kill: Option<BoundaryKillSpec>,
}

impl RecoverySpec {
    /// Checkpoint a fresh campaign run.
    pub fn new(root: impl Into<PathBuf>, run_id: impl Into<String>) -> Self {
        RecoverySpec {
            root: root.into(),
            run_id: run_id.into(),
            resume: false,
            kill: None,
        }
    }

    /// Resume a previously checkpointed campaign run. Kill-free by design:
    /// the kill point belongs to the run being killed, not its resume, so a
    /// single resume always completes.
    pub fn resume(root: impl Into<PathBuf>, run_id: impl Into<String>) -> Self {
        RecoverySpec {
            root: root.into(),
            run_id: run_id.into(),
            resume: true,
            kill: None,
        }
    }

    pub fn with_kill(mut self, kill: BoundaryKillSpec) -> Self {
        self.kill = Some(kill);
        self
    }
}

/// Kill the process (or halt the run) when shuffle wave `wave` of the
/// campaign's `engine`-th dataflow run completes — after that wave's
/// checkpoint is durable.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryKillSpec {
    /// Zero-based ordinal of the engine run within the campaign.
    pub engine: usize,
    /// Zero-based shuffle-wave index within that engine run.
    pub wave: usize,
    pub mode: toreador_dataflow::fault::KillMode,
}

/// A compiled, ready-to-run campaign.
#[derive(Debug, Clone)]
pub struct CompiledCampaign {
    pub spec: CampaignSpec,
    /// Non-fatal consistency findings (warnings).
    pub warnings: Vec<consistency::Finding>,
    pub procedural: ProceduralModel,
    pub deployment: DeploymentModel,
    pub manifest: PrivacyManifest,
}

/// One objective with its measured value.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveOutcome {
    pub objective: Objective,
    /// None when the run produced no value for the indicator.
    pub measured: Option<f64>,
    pub satisfied: Option<bool>,
}

/// Everything a campaign run produces.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    pub output: Table,
    pub reports: Vec<(String, String)>,
    /// Indicator name -> measured value.
    pub indicators: BTreeMap<String, f64>,
    pub objectives: Vec<ObjectiveOutcome>,
    pub engine_metrics: Vec<toreador_dataflow::metrics::RunMetrics>,
    /// Flight-recorder journals, aligned with `engine_metrics`.
    pub engine_traces: Vec<toreador_dataflow::trace::RunTrace>,
    pub audit: toreador_privacy::audit::AuditLog,
    /// Post-hoc compliance verdict (None when no policy attached).
    pub post_verdict: Option<Verdict>,
}

impl CampaignOutcome {
    pub fn indicator(&self, indicator: Indicator) -> Option<f64> {
        self.indicators.get(indicator.name()).copied()
    }

    /// All objectives satisfied (unmeasured objectives count as failures).
    pub fn all_objectives_met(&self) -> bool {
        self.objectives.iter().all(|o| o.satisfied == Some(true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::generate::{clickstream, health_records, telemetry};

    fn aux() -> HashMap<String, Table> {
        HashMap::new()
    }

    #[test]
    fn dsl_to_outcome_end_to_end() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                r#"
campaign revenue on clicks
prefer cost
seed 7
goal filtering predicate="action == 'purchase'"
goal aggregation group_by=country agg=sum:price:revenue,count:event_id:n
goal reporting using viz.report.table limit=5
objective runtime_ms <= 600000
"#,
            )
            .unwrap();
        let data = clickstream(2_000, 42);
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        assert_eq!(compiled.procedural.composition.len(), 3);
        let outcome = bdaas.run(&compiled, data, &aux()).unwrap();
        assert_eq!(
            outcome.output.schema().names(),
            vec!["country", "revenue", "n"]
        );
        assert!(outcome.indicator(Indicator::RuntimeMs).unwrap() > 0.0);
        assert!(outcome.indicator(Indicator::Throughput).unwrap() > 0.0);
        assert!(outcome.indicator(Indicator::Cost).unwrap() > 0.0);
        assert!(outcome.all_objectives_met(), "{:?}", outcome.objectives);
        assert!(!outcome.reports.is_empty());
    }

    #[test]
    fn inconsistent_spec_refused_at_compile_time() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                "campaign bad on clicks\ngoal aggregation group_by=galaxy agg=count:event_id:n\n",
            )
            .unwrap();
        let data = clickstream(100, 1);
        let err = bdaas.compile(&spec, data.schema(), 100).unwrap_err();
        assert!(matches!(err, CoreError::Inconsistent(_)));
        assert!(err.to_string().contains("galaxy"));
    }

    #[test]
    fn non_compliant_campaign_refused_at_compile_time() {
        let bdaas = Bdaas::new();
        // Outputs quasi-identifiers under the healthcare policy without
        // anonymisation: must be rejected before any data is touched.
        let spec = bdaas
            .parse(
                "campaign leak on health\npolicy healthcare\ngoal reporting using viz.report.table\n",
            )
            .unwrap();
        let data = health_records(200, 1);
        let err = bdaas.compile(&spec, data.schema(), 200).unwrap_err();
        assert!(matches!(err, CoreError::NonCompliant(_)), "{err}");
    }

    #[test]
    fn compliant_campaign_compiles_and_passes_posthoc() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                r#"
campaign safe on health
policy healthcare
seed 3
goal anonymization using privacy.kanon k=5 quasi=age,zip,sex
goal anonymization using privacy.ldiv l=2 quasi=age,zip,sex sensitive=diagnosis
goal reporting using viz.report.summary
"#,
            )
            .unwrap();
        let data = health_records(500, 2);
        // The identifier column must not flow in: drop it first (as the
        // Labs scenario does).
        let data = data.without_column("patient_id").unwrap();
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        assert_eq!(compiled.manifest.k_anonymity, Some(5));
        let outcome = bdaas.run(&compiled, data, &aux()).unwrap();
        let verdict = outcome.post_verdict.as_ref().unwrap();
        assert!(verdict.compliant, "{:?}", verdict.violations);
        assert!(outcome.indicator(Indicator::PrivacyRisk).unwrap() <= 0.2);
        assert!(outcome.indicator(Indicator::Coverage).unwrap() <= 1.0);
        assert!(outcome.audit.len() >= 2, "access + anonymisation + check");
    }

    #[test]
    fn dp_campaign_is_compliant_without_kanon() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                r#"
campaign dp_stats on health
policy healthcare
goal private_aggregation epsilon=1.0 column=cost group_by=sex
"#,
            )
            .unwrap();
        let data = health_records(400, 3).without_column("patient_id").unwrap();
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        assert_eq!(compiled.manifest.dp_epsilon, Some(1.0));
        let outcome = bdaas.run(&compiled, data, &aux()).unwrap();
        assert_eq!(
            outcome.output.schema().names(),
            vec!["group", "noisy_count", "noisy_sum"]
        );
        assert!(outcome.post_verdict.as_ref().unwrap().compliant);
        assert!(outcome.indicator(Indicator::PrivacyRisk).unwrap() <= 0.1 + 1e-9);
    }

    #[test]
    fn streaming_campaign_measures_batch_latency() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                r#"
campaign stream_kwh on telemetry
mode stream window=7200000
goal aggregation group_by=region agg=sum:kwh:total
"#,
            )
            .unwrap();
        let data = telemetry(3_000, 10, 5);
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        let outcome = bdaas.run(&compiled, data, &aux()).unwrap();
        assert!(outcome.indicator(Indicator::BatchLatencyMs).unwrap() > 0.0);
        // Concatenated per-window aggregates: more rows than one global agg.
        assert!(outcome.output.num_rows() > 4);
    }

    #[test]
    fn accuracy_objective_evaluated_against_heldout() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                r#"
campaign classify on health
seed 11
goal classification target=sex features=age,visits,cost expect accuracy >= 0.1
"#,
            )
            .unwrap();
        let data = health_records(600, 4);
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        let outcome = bdaas.run(&compiled, data, &aux()).unwrap();
        let acc = outcome.indicator(Indicator::Accuracy).unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert_eq!(outcome.objectives.len(), 1);
        assert_eq!(outcome.objectives[0].satisfied, Some(true));
    }

    #[test]
    fn unmeasured_objective_is_not_satisfied() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                "campaign t on clicks\ngoal filtering predicate=\"price > 1\"\nobjective accuracy >= 0.5\n",
            )
            .unwrap();
        let data = clickstream(200, 1);
        let compiled = bdaas.compile(&spec, data.schema(), 200).unwrap();
        let outcome = bdaas.run(&compiled, data, &aux()).unwrap();
        assert_eq!(outcome.objectives[0].satisfied, None);
        assert!(!outcome.all_objectives_met());
    }

    #[test]
    fn warnings_surface_on_compiled_campaign() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                r#"
campaign tension on health
seed 2
goal anonymization using privacy.kanon k=10 quasi=age,zip,sex
goal classification target=sex features=cost,visits expect accuracy >= 0.95
"#,
            )
            .unwrap();
        let data = health_records(300, 9);
        let compiled = bdaas.compile(&spec, data.schema(), 300).unwrap();
        assert!(
            !compiled.warnings.is_empty(),
            "privacy/accuracy tension warning expected"
        );
    }

    fn revenue_campaign(bdaas: &Bdaas) -> CampaignSpec {
        bdaas
            .parse(
                r#"
campaign revenue on clicks
seed 7
goal filtering predicate="action == 'purchase'"
goal aggregation group_by=country agg=sum:price:revenue,count:event_id:n
goal reporting using viz.report.table limit=5
"#,
            )
            .unwrap()
    }

    fn recovery_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("toreador-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tasks_started(trace: &toreador_dataflow::trace::RunTrace) -> usize {
        use toreador_dataflow::trace::TraceEventKind;
        trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::TaskStarted { .. }))
            .count()
    }

    #[test]
    fn killed_campaign_resumes_to_an_identical_outcome() {
        use toreador_dataflow::fault::KillMode;
        use toreador_dataflow::trace::TraceEventKind;

        let bdaas = Bdaas::new();
        let spec = revenue_campaign(&bdaas);
        let data = clickstream(2_000, 42);
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        let baseline = bdaas.run(&compiled, data.clone(), &aux()).unwrap();
        assert!(
            baseline.engine_metrics.len() >= 2,
            "filtering + aggregation should each drive an engine run"
        );

        // Kill the campaign at the second engine's first stage boundary:
        // engine 0 has fully completed and checkpointed by then.
        let root = recovery_root("kill");
        let rec = RecoverySpec::new(root.clone(), "camp").with_kill(BoundaryKillSpec {
            engine: 1,
            wave: 0,
            mode: KillMode::Halt,
        });
        let err = bdaas
            .run_with_recovery(&compiled, data.clone(), &aux(), &rec)
            .unwrap_err();
        assert!(
            err.to_string().contains("killed at stage boundary"),
            "{err}"
        );

        // One kill-free resume completes the whole campaign, byte-identical.
        let resumed = bdaas
            .run_with_recovery(
                &compiled,
                data,
                &aux(),
                &RecoverySpec::resume(root.clone(), "camp"),
            )
            .unwrap();
        assert_eq!(resumed.output, baseline.output);
        assert_eq!(resumed.engine_metrics.len(), baseline.engine_metrics.len());

        // Engine 0 was fully checkpointed before the kill: its resumed
        // trace restores every wave and starts zero tasks.
        let t0 = &resumed.engine_traces[0];
        assert_eq!(tasks_started(t0), 0, "engine 0 must be restored, not rerun");
        assert!(t0
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::StageRestored { .. })));
        // Engine 1 restored its killed-after wave 0 and recomputed the rest.
        let t1 = &resumed.engine_traces[1];
        assert!(t1
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::StageRestored { .. })));
        assert!(tasks_started(t1) < tasks_started(&baseline.engine_traces[1]) + 1);

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn campaign_resume_refuses_changed_inputs() {
        use toreador_dataflow::fault::KillMode;

        let bdaas = Bdaas::new();
        let spec = revenue_campaign(&bdaas);
        let data = clickstream(1_000, 5);
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        let root = recovery_root("stale");
        let rec = RecoverySpec::new(root.clone(), "camp").with_kill(BoundaryKillSpec {
            engine: 0,
            wave: 0,
            mode: KillMode::Halt,
        });
        bdaas
            .run_with_recovery(&compiled, data, &aux(), &rec)
            .unwrap_err();

        // Resume against different input data: classified refusal, not a
        // silent wrong answer.
        let other = clickstream(1_000, 6);
        let err = bdaas
            .run_with_recovery(
                &compiled,
                other,
                &aux(),
                &RecoverySpec::resume(root.clone(), "camp"),
            )
            .unwrap_err();
        match err {
            CoreError::StaleCheckpoint { mismatch, .. } => assert_eq!(mismatch, "inputs"),
            other => panic!("expected StaleCheckpoint, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stream_campaigns_refuse_checkpointed_recovery() {
        let bdaas = Bdaas::new();
        let spec = bdaas
            .parse(
                "campaign live on clicks\nmode stream window=7200000\ngoal filtering predicate=\"action == 'purchase'\"\n",
            )
            .unwrap();
        let data = clickstream(400, 1);
        let compiled = bdaas
            .compile(&spec, data.schema(), data.num_rows())
            .unwrap();
        let root = recovery_root("stream");
        let err = bdaas
            .run_with_recovery(&compiled, data, &aux(), &RecoverySpec::new(root, "camp"))
            .unwrap_err();
        assert!(err.to_string().contains("batch campaigns only"), "{err}");
    }
}
