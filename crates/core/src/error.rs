//! Error type for the model-driven compiler.

use std::fmt;

/// Errors raised while parsing, checking, compiling, or running a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// DSL parse error with a line number.
    Parse { line: usize, message: String },
    /// The declarative model is internally inconsistent (conflicting
    /// objectives, impossible mode, ...). Carries the findings rendered.
    Inconsistent(String),
    /// Goal matching failed (no service satisfies a goal).
    Catalog(String),
    /// Compile-time compliance check failed. Carries the violations rendered.
    NonCompliant(String),
    /// A service parameter is missing or malformed.
    Parameter { service: String, message: String },
    /// Execution failed in the dataflow engine.
    Execution(String),
    /// A resume was refused: the checkpointed run no longer matches the
    /// recompiled campaign (`mismatch` names what changed). Kept as its own
    /// variant so callers can tell "refuse to serve stale data" apart from
    /// a run that failed.
    StaleCheckpoint { run_id: String, mismatch: String },
    /// Analytics failure while running a service.
    Analytics(String),
    /// Privacy enforcement failure while running a service.
    Privacy(String),
    /// Anything schema/data shaped.
    Data(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            CoreError::Inconsistent(m) => write!(f, "inconsistent campaign: {m}"),
            CoreError::Catalog(m) => write!(f, "catalogue matching failed: {m}"),
            CoreError::NonCompliant(m) => write!(f, "compliance check failed: {m}"),
            CoreError::Parameter { service, message } => {
                write!(f, "bad parameter for {service}: {message}")
            }
            CoreError::Execution(m) => write!(f, "execution failed: {m}"),
            CoreError::StaleCheckpoint { run_id, mismatch } => write!(
                f,
                "stale checkpoint for run {run_id:?}: {mismatch} changed since the checkpoint was written"
            ),
            CoreError::Analytics(m) => write!(f, "analytics failed: {m}"),
            CoreError::Privacy(m) => write!(f, "privacy enforcement failed: {m}"),
            CoreError::Data(m) => write!(f, "data error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<toreador_catalog::registry::CatalogError> for CoreError {
    fn from(e: toreador_catalog::registry::CatalogError) -> Self {
        CoreError::Catalog(e.to_string())
    }
}

impl From<toreador_dataflow::error::FlowError> for CoreError {
    fn from(e: toreador_dataflow::error::FlowError) -> Self {
        match e {
            toreador_dataflow::error::FlowError::StaleCheckpoint { run_id, mismatch } => {
                CoreError::StaleCheckpoint { run_id, mismatch }
            }
            other => CoreError::Execution(other.to_string()),
        }
    }
}

impl From<toreador_analytics::error::AnalyticsError> for CoreError {
    fn from(e: toreador_analytics::error::AnalyticsError) -> Self {
        CoreError::Analytics(e.to_string())
    }
}

impl From<toreador_privacy::error::PrivacyError> for CoreError {
    fn from(e: toreador_privacy::error::PrivacyError) -> Self {
        CoreError::Privacy(e.to_string())
    }
}

impl From<toreador_data::error::DataError> for CoreError {
    fn from(e: toreador_data::error::DataError) -> Self {
        CoreError::Data(e.to_string())
    }
}

/// Result alias for the core layer.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_messages() {
        let e: CoreError =
            toreador_catalog::registry::CatalogError::UnknownService("x".into()).into();
        assert!(e.to_string().contains("x"));
        let e: CoreError = toreador_data::error::DataError::ColumnNotFound("y".into()).into();
        assert!(e.to_string().contains("y"));
    }

    #[test]
    fn parse_error_reports_line() {
        let e = CoreError::Parse {
            line: 7,
            message: "unknown keyword".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }
}
