//! Daemon lifecycle against the real `toreador` binary: spawn
//! `toreador serve`, drive it over the wire, kill the process with a real
//! signal, and assert the graceful-shutdown contract — exit code 0, every
//! committed attempt intact in the store, the directory lock released.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use toreador_labs::prelude::SessionStore;
use toreador_serve::prelude::*;
use toreador_serve::signal;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("toreador-servekill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawn `toreador serve` on an OS-assigned port and block until it
/// prints its readiness line. Returns the child and the bound address.
fn spawn_serve(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_toreador"))
        .args([
            "serve",
            "--store",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn toreador serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let ready = lines
        .next()
        .expect("daemon printed a readiness line")
        .expect("readable stdout");
    let addr = ready
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected readiness line {ready:?}"))
        .to_owned();
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn open_and_attempt(addr: &str, trainee: &str, attempts: usize) {
    let client = Client::new(addr);
    client
        .open_session(&OpenSessionRequest {
            trainee: trainee.to_owned(),
            quota: None,
            seed: Some(5),
        })
        .expect("open session");
    for _ in 0..attempts {
        let reply = client
            .attempt(&AttemptRequest {
                trainee: trainee.to_owned(),
                challenge: "ecomm-revenue".to_owned(),
                choices: vec!["full".into(), "batch".into()],
                rows: Some(200),
            })
            .expect("attempt");
        assert!(reply.score > 0.0);
    }
}

/// The graceful-shutdown contract under a real `kill(2)`: the daemon
/// drains, autosaves, exits 0, and the next process can open the store.
fn kill_drains_cleanly(sig: i32, tag: &str) {
    let dir = tmp_dir(tag);
    let (mut child, addr) = spawn_serve(&dir);
    open_and_attempt(&addr, "ada", 2);

    assert!(
        signal::send_signal(child.id(), sig),
        "signal {sig} delivered"
    );
    let status = child.wait().expect("daemon reaped");
    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");

    // The store reopens (the dead daemon's lock is gone) with every
    // committed attempt, and shutdown left a compacted snapshot.
    let store = SessionStore::open(&dir).expect("lock released on exit");
    let state = store.trainee("ada").expect("trainee survived");
    assert_eq!(state.runs.len(), 2);
    assert!(state.scores.len() == 2, "scores committed with the runs");
    assert!(store.stats().snapshot_lsn > 0, "shutdown checkpointed");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigterm_drains_and_exits_zero() {
    kill_drains_cleanly(signal::SIGTERM, "term");
}

#[test]
fn sigint_drains_and_exits_zero() {
    kill_drains_cleanly(signal::SIGINT, "int");
}

/// Two processes cannot share one store directory: the CLI refuses with
/// an error naming the holding pid, and serve refuses to even bind.
#[test]
fn second_process_is_locked_out_and_told_who_holds_the_store() {
    let dir = tmp_dir("locked");
    let _holder = SessionStore::open(&dir).unwrap();

    for cmd in [&["sessions"][..], &["serve"][..]] {
        let out = Command::new(env!("CARGO_BIN_EXE_toreador"))
            .args(cmd)
            .args(["--store", dir.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{cmd:?} must refuse a held store");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("already open by pid"),
            "{cmd:?} names the holder: {stderr}"
        );
        assert!(
            stderr.contains(&std::process::id().to_string()),
            "{cmd:?} reports the holding pid: {stderr}"
        );
    }
    drop(_holder);
    std::fs::remove_dir_all(&dir).unwrap();
}
