//! Minimal argument parsing: positionals plus `--key value` flags.
//!
//! Hand-rolled on purpose — the workspace's dependency policy (DESIGN.md)
//! admits no CLI framework, and the surface is small enough not to need one.

use std::collections::BTreeMap;

/// Parsed command line: subcommand, positionals, flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    pub command: String,
    pub positionals: Vec<String>,
    pub flags: BTreeMap<String, String>,
}

/// Flags that take no value: presence means "true". Everything else is
/// `--key value`.
const BOOLEAN_FLAGS: &[&str] = &["json", "quick", "resume", "repair"];

/// Parse raw arguments (without the binary name).
pub fn parse(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = raw.iter().peekable();
    args.command = it.next().cloned().unwrap_or_default();
    while let Some(token) = it.next() {
        if let Some(name) = token.strip_prefix("--") {
            if name.is_empty() {
                return Err("empty flag name".to_owned());
            }
            let value = if BOOLEAN_FLAGS.contains(&name) {
                "true".to_owned()
            } else {
                it.next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?
                    .clone()
            };
            if args.flags.insert(name.to_owned(), value).is_some() {
                return Err(format!("flag --{name} given twice"));
            }
        } else {
            args.positionals.push(token.clone());
        }
    }
    Ok(args)
}

impl Args {
    /// A flag parsed as `T`, or the default.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name} has invalid value {raw:?}")),
        }
    }

    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Whether a boolean flag (see [`BOOLEAN_FLAGS`]) was given.
    pub fn flag_set(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    pub fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positionals
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| format!("missing argument: {what}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_positionals_flags() {
        let a = parse(&v(&["run", "campaign.tdl", "--rows", "500", "--seed", "7"])).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.positionals, vec!["campaign.tdl"]);
        assert_eq!(a.flag("rows"), Some("500"));
        assert_eq!(a.flag_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.flag_or("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(parse(&v(&["run", "--rows"])).is_err(), "flag without value");
        assert!(
            parse(&v(&["run", "--rows", "1", "--rows", "2"])).is_err(),
            "duplicate"
        );
        assert!(parse(&v(&["run", "--", "x"])).is_err(), "empty name");
        let a = parse(&v(&["run"])).unwrap();
        assert!(a.positional(0, "file").is_err());
    }

    #[test]
    fn flag_type_errors_are_readable() {
        let a = parse(&v(&["run", "--rows", "many"])).unwrap();
        let err = a.flag_or("rows", 0usize).unwrap_err();
        assert!(err.contains("rows") && err.contains("many"));
    }

    #[test]
    fn empty_input_gives_empty_command() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.command, "");
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = parse(&v(&["history", "ada", "--json", "--store", "dir"])).unwrap();
        assert!(a.flag_set("json"));
        assert!(!a.flag_set("quick"));
        assert_eq!(a.flag("store"), Some("dir"));
        assert_eq!(a.positionals, vec!["ada"]);
        // Trailing boolean flag needs no value either.
        let a = parse(&v(&["fleet", "--quick"])).unwrap();
        assert!(a.flag_set("quick"));
    }
}
