//! CLI command implementations.
//!
//! Each command returns its output as a `String` (so tests assert on it)
//! and `main` prints it. Data sources are CSV files, JSONL files, or the
//! built-in scenario generators (`generated:<scenario-id>`).

use std::collections::HashMap;

use toreador_core::prelude::*;
use toreador_data::table::Table;
use toreador_dataflow::fault::{ChaosPlan, FaultKind, KillMode, TargetedFault};
use toreador_dataflow::resilience::{
    ResilienceConfig, RetryPolicy, SpeculationPolicy, TaskDeadline,
};
use toreador_dataflow::trace::ResilienceTotals;
use toreador_labs::prelude::*;

use crate::args::Args;

/// Top-level dispatch.
pub fn dispatch(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "catalog" => Ok(catalog()),
        "scenarios" => Ok(scenarios_cmd()),
        "challenges" => challenges_cmd(args),
        "explain" => explain(args),
        "run" => run(args),
        "stream" => stream_cmd(args),
        "resume" => resume_cmd(args),
        "trace" => trace_cmd(args),
        "chaos" => chaos_cmd(args),
        "fsck" => fsck_cmd(args),
        "attempt" => attempt(args),
        "serve" => serve_cmd(args),
        "fleet" => fleet_cmd(args),
        "sessions" => sessions_cmd(args),
        "history" => history_cmd(args),
        "compare" => compare_cmd(args),
        "" | "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

pub fn usage() -> String {
    "toreador — model-driven Big Data campaigns (TOREADOR reproduction)\n\
     \n\
     USAGE:\n\
     \x20 toreador catalog                       list the service catalogue\n\
     \x20 toreador scenarios                     list the vertical scenarios\n\
     \x20 toreador challenges [id]               list challenges / show one\n\
     \x20 toreador explain <campaign.tdl> --data <source> [--rows N]\n\
     \x20                                        compile and show the plan\n\
     \x20 toreador run <campaign.tdl> --data <source> [--rows N] [--seed N]\n\
     \x20                [--store <dir>]         compile, run, report; --store\n\
     \x20                                        persists the run record\n\
     \x20                [--memory-budget B]     cap wide-operator memory at B\n\
     \x20                                        bytes (suffixes k/m/g); runs\n\
     \x20                                        beyond it spill to paged files,\n\
     \x20                                        output unchanged\n\
     \x20                [--checkpoint-dir <dir> --run-id <id>]\n\
     \x20                                        checkpoint every stage boundary\n\
     \x20                                        so the run survives process death\n\
     \x20                [--kill-at E:W] [--kill-mode exit|halt]\n\
     \x20                                        chaos: die at engine E's stage\n\
     \x20                                        boundary W (exit code 42) after\n\
     \x20                                        the wave is durable\n\
     \x20 toreador stream --data <source> --key <col> [--sum <col>]\n\
     \x20                [--rows N] [--seed N] [--window-ms N] [--ts-column C]\n\
     \x20                [--allowed-lateness N] [--late-policy absorb|side-channel|drop]\n\
     \x20                [--buffer N] [--json]   continuous keyed aggregation over\n\
     \x20                                        arrival-order event windows:\n\
     \x20                                        backpressure, watermarks, late\n\
     \x20                                        data; --json emits one ack\n\
     \x20                                        record per batch\n\
     \x20                [--memory-budget B]     spill over-budget batch state\n\
     \x20                [--store <dir>]         durable acked offsets (WAL)\n\
     \x20                [--kill-at-ack N] [--kill-mode exit|halt]\n\
     \x20                                        die right after offset N's ack\n\
     \x20                                        is durable (exit 42)\n\
     \x20                [--resume]              replay the WAL and finish the\n\
     \x20                                        stream; acked batches never\n\
     \x20                                        re-execute\n\
     \x20 toreador resume <run-id> --checkpoint-dir <dir> [--store <dir>]\n\
     \x20                                        resume a killed checkpointed run\n\
     \x20                                        at the first incomplete stage;\n\
     \x20                                        restored stages never recompute\n\
     \x20 toreador trace <campaign.tdl> --data <source> [--rows N] [--seed N]\n\
     \x20                [--format text|json]    run and show the flight\n\
     \x20                [--store <dir>]         recorder: per-stage timings,\n\
     \x20                [--memory-budget B]     critical path, skew, retries,\n\
     \x20                                        spill totals when budgeted\n\
     \x20 toreador chaos <campaign.tdl> --data <source> [--rows N] [--seed N]\n\
     \x20                [--profile P] [--retries N] [--deadline-ms N]\n\
     \x20                [--speculate F]            run once fault-free, once\n\
     \x20                                           under a deterministic chaos\n\
     \x20                                           plan; report resilience cost\n\
     \x20                                           and whether outputs match\n\
     \x20 toreador fsck <dir> [--repair]         offline integrity scrub of\n\
     \x20                                        store / checkpoint / spill\n\
     \x20                                        dirs: CRC-verify every frame,\n\
     \x20                                        page and segment; --repair\n\
     \x20                                        applies only proven-safe\n\
     \x20                                        actions (truncate torn tails,\n\
     \x20                                        sweep orphans) and exits\n\
     \x20                                        non-zero iff unrepairable\n\
     \x20                                        corruption remains\n\
     \x20 toreador attempt <challenge-id> <choice>... [--rows N] [--seed N]\n\
     \x20                  [--session <file>]    one Labs attempt with scoring;\n\
     \x20                  [--store <dir>]       --session persists to a JSON\n\
     \x20                                        file, --store to the crash-safe\n\
     \x20                                        campaign store (WAL + snapshots)\n\
     \x20 toreador serve --store <dir>           run the multi-tenant Labs\n\
     \x20                [--addr host:port]      daemon (HTTP/JSON) over the\n\
     \x20                [--max-inflight N] [--queue N] [--queue-wait-ms N]\n\
     \x20                [--tenant-inflight N] [--threads-per-attempt N]\n\
     \x20                [--quota-runs N] [--quota-rows N] [--quota-cost F]\n\
     \x20                                        store; SIGINT/SIGTERM drains\n\
     \x20                                        in-flight attempts and exits 0\n\
     \x20 toreador fleet [--addr host:port]      drive a trainee fleet against\n\
     \x20                [--trainees N] [--attempts N] [--workers N] [--rows N]\n\
     \x20                [--challenge id] [--quick] [--ramp 4,8,16]\n\
     \x20                [--max-p99-ms N] [--timeout-s N]\n\
     \x20                                        a live daemon: latency\n\
     \x20                                        percentiles, rejection classes,\n\
     \x20                                        lost-record verification\n\
     \x20 toreador sessions --store <dir> [--json]\n\
     \x20                                        list trainees in the store\n\
     \x20                                        with quota headroom\n\
     \x20 toreador history <trainee> --store <dir> [--json]\n\
     \x20                                        one trainee's persisted runs\n\
     \x20 toreador compare <run-a> <run-b> --store <dir> [--trainee <name>]\n\
     \x20                                        diff two persisted runs:\n\
     \x20                                        choices, indicators, operator\n\
     \x20                                        timings, skew\n\
     \n\
     Commands taking --store also accept --trainee <name> (default \"cli\").\n\
     \n\
     CHAOS PROFILES for --profile (default hostile):\n\
     \x20 calm | flaky | lossy | slow | panicky | hostile | diskful\n\
     \x20 targeted:<stage>:<partition>:<attempt>:<crash|panic|delay[:micros]>\n\
     \x20 (diskful injects storage faults — EIO, torn writes — under a\n\
     \x20  spilling run instead of task faults; same oracle: identical\n\
     \x20  output or a classified failure, never silent divergence)\n\
     \n\
     DATA SOURCES for --data:\n\
     \x20 generated:<scenario-id>                a built-in scenario generator\n\
     \x20 <path>.csv | <path>.jsonl              a file on disk\n"
        .to_owned()
}

fn catalog() -> String {
    let registry = toreador_catalog::builtin::standard_catalog();
    let mut out = format!("{} services\n\n", registry.len());
    for area in toreador_catalog::descriptor::Area::all() {
        out.push_str(&format!("[{area}]\n"));
        for s in registry.by_area(area) {
            out.push_str(&format!(
                "  {:<30} {:<22} cost {:>5.1}/k  quality {:.2}{}\n",
                s.id,
                format!("{:?}", s.capability),
                s.cost_per_k_rows,
                s.quality,
                s.privacy.map(|p| format!("  [{p:?}]")).unwrap_or_default(),
            ));
        }
    }
    out
}

fn scenarios_cmd() -> String {
    let mut out = String::new();
    for s in toreador_labs::scenario::scenarios() {
        out.push_str(&format!(
            "{:<22} {:<18} default {} rows\n  {}\n\n",
            s.id,
            s.vertical.name(),
            s.default_rows,
            s.brief
        ));
    }
    out
}

fn challenges_cmd(args: &Args) -> Result<String, String> {
    match args.positionals.first() {
        None => {
            let mut out = String::new();
            for c in challenges() {
                out.push_str(&format!("{:<20} [{}] {}\n", c.id, c.scenario_id, c.title));
            }
            Ok(out)
        }
        Some(id) => {
            let c = challenge(id).map_err(|e| e.to_string())?;
            let mut out = format!("{} — {}\n\n{}\n\n", c.id, c.title, c.brief);
            for (i, p) in c.choice_points.iter().enumerate() {
                out.push_str(&format!("choice {i} [{}]: {}\n", p.id, p.prompt));
                for o in &p.options {
                    out.push_str(&format!("    {:<10} {}\n", o.id, o.label));
                }
            }
            out.push_str(&format!(
                "\nreference solution: {}\n",
                c.reference_vector().join(" ")
            ));
            Ok(out)
        }
    }
}

/// Load a `--data` source.
fn load_data(
    args: &Args,
    rows: usize,
    seed: u64,
) -> Result<(Table, HashMap<String, Table>), String> {
    let source = args
        .flag("data")
        .ok_or_else(|| "missing --data <source> (see `toreador help`)".to_owned())?;
    load_source(source, rows, seed)
}

/// Load a data source by name — shared by `--data` and the resume spec,
/// which replays the source a killed run was started with.
fn load_source(
    source: &str,
    rows: usize,
    seed: u64,
) -> Result<(Table, HashMap<String, Table>), String> {
    if let Some(scenario_id) = source.strip_prefix("generated:") {
        let scen = toreador_labs::scenario::scenario(scenario_id).map_err(|e| e.to_string())?;
        let n = if rows == 0 { scen.default_rows } else { rows };
        return Ok((scen.generate(n, seed), scen.auxiliary()));
    }
    let text =
        std::fs::read_to_string(source).map_err(|e| format!("cannot read {source:?}: {e}"))?;
    let table = if source.ends_with(".jsonl") || source.ends_with(".ndjson") {
        toreador_data::json::read_jsonl(&text).map_err(|e| e.to_string())?
    } else {
        toreador_data::csv::read_csv(&text).map_err(|e| e.to_string())?
    };
    let table = if rows > 0 && rows < table.num_rows() {
        table.slice(0, rows).map_err(|e| e.to_string())?
    } else {
        table
    };
    Ok((table, HashMap::new()))
}

fn compile_from_args(
    args: &Args,
) -> Result<(Bdaas, CompiledCampaign, Table, HashMap<String, Table>), String> {
    let file = args.positional(0, "campaign file")?;
    let dsl = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
    let rows = args.flag_or("rows", 0usize)?;
    let seed = args.flag_or("seed", 0u64)?;
    let (data, aux) = load_data(args, rows, seed)?;
    let bdaas = Bdaas::new();
    let spec = bdaas.parse(&dsl).map_err(|e| e.to_string())?;
    let compiled = bdaas
        .compile(&spec, data.schema(), data.num_rows())
        .map_err(|e| e.to_string())?;
    Ok((bdaas, compiled, data, aux))
}

fn explain(args: &Args) -> Result<String, String> {
    let (_, compiled, data, _) = compile_from_args(args)?;
    let mut out = format!(
        "campaign {:?} on {} rows of {:?}\n\nprocedural model:\n{}",
        compiled.spec.name,
        data.num_rows(),
        compiled.spec.dataset,
        compiled.procedural.composition
    );
    out.push_str(&format!(
        "\ndeployment: platform {} | {} workers | {} partitions | estimated cost {:.1}\n",
        compiled.deployment.platform.name,
        compiled.deployment.engine_config.threads,
        compiled.deployment.engine_config.partitions,
        compiled.deployment.estimated_cost,
    ));
    out.push_str(&format!(
        "privacy manifest: outputs {:?}, k={:?}, l={:?}, ε={:?}\n",
        compiled.manifest.columns_output,
        compiled.manifest.k_anonymity,
        compiled.manifest.l_diversity,
        compiled.manifest.dp_epsilon,
    ));
    for w in &compiled.warnings {
        out.push_str(&format!("warning: {w}\n"));
    }
    Ok(out)
}

/// Open the campaign store named by a required `--store <dir>`.
fn required_store(args: &Args) -> Result<SessionStore, String> {
    let dir = args
        .flag("store")
        .ok_or_else(|| "missing --store <dir> (see `toreador help`)".to_owned())?;
    SessionStore::open(dir).map_err(|e| e.to_string())
}

/// The trainee runs are filed under (`--trainee`, default `cli`).
fn trainee_name(args: &Args) -> &str {
    args.flag("trainee").unwrap_or("cli")
}

/// Persist an ad-hoc (non-challenge) campaign run under `trainee`,
/// registering the trainee with an unmetered quota if the store has not
/// seen them. Returns the run id assigned.
fn persist_adhoc_run(
    store: &mut SessionStore,
    trainee: &str,
    label: &str,
    rows_in: usize,
    compiled: &CompiledCampaign,
    outcome: &CampaignOutcome,
) -> Result<u64, String> {
    let mut meta = match store.trainee(trainee) {
        Some(state) => state.meta.clone(),
        None => {
            let meta = SessionMeta {
                quota: Quota::unlimited(),
                total_cost: 0.0,
                seed: 0,
            };
            store.put_meta(trainee, &meta).map_err(|e| e.to_string())?;
            meta
        }
    };
    let run_id = store.next_run_id(trainee);
    let record = record_outcome(run_id, label, &Vec::new(), rows_in, compiled, outcome);
    store
        .put_run(trainee, run_id, &record)
        .map_err(|e| e.to_string())?;
    meta.total_cost += record.indicator(Indicator::Cost).unwrap_or(0.0);
    store.put_meta(trainee, &meta).map_err(|e| e.to_string())?;
    Ok(run_id)
}

/// Render a campaign outcome the way `run` and `resume` both report it:
/// indicators, objectives, compliance, output sample, reports. Everything
/// from `output (` down is deterministic for a fixed campaign+data, which
/// is what the kill/resume CI matrix diffs.
fn render_outcome(outcome: &CampaignOutcome) -> String {
    let mut out = String::new();
    out.push_str("indicators:\n");
    for (name, value) in &outcome.indicators {
        out.push_str(&format!("  {name:<18} {value:>14.3}\n"));
    }
    if !outcome.objectives.is_empty() {
        out.push_str("objectives:\n");
        for o in &outcome.objectives {
            out.push_str(&format!(
                "  {:<30} {}\n",
                o.objective.to_string(),
                match o.satisfied {
                    Some(true) => "satisfied",
                    Some(false) => "MISSED",
                    None => "unmeasured",
                }
            ));
        }
    }
    if let Some(v) = &outcome.post_verdict {
        out.push_str(&format!(
            "compliance: {}\n",
            if v.compliant { "PASS" } else { "FAIL" }
        ));
    }
    out.push_str(&format!(
        "\noutput ({} rows):\n{}",
        outcome.output.num_rows(),
        outcome.output.show(15)
    ));
    for (service, text) in &outcome.reports {
        out.push_str(&format!("\n[{service}]\n{text}\n"));
    }
    out
}

/// Parse `--memory-budget <bytes>` — plain bytes or with a k/m/g suffix
/// (binary units: `64m` is 64 MiB). `None` when the flag is absent.
fn parse_memory_budget(args: &Args) -> Result<Option<u64>, String> {
    let Some(raw) = args.flag("memory-budget") else {
        return Ok(None);
    };
    let bad = || format!("--memory-budget wants bytes (suffixes k/m/g), got {raw:?}");
    let (digits, shift) = match raw.char_indices().last() {
        Some((i, 'k' | 'K')) => (&raw[..i], 10),
        Some((i, 'm' | 'M')) => (&raw[..i], 20),
        Some((i, 'g' | 'G')) => (&raw[..i], 30),
        Some(_) => (raw, 0),
        None => return Err(bad()),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    n.checked_shl(shift)
        .filter(|v| shift == 0 || *v >> shift == n)
        .map(Some)
        .ok_or_else(bad)
}

/// Parse `--kill-at <engine>:<wave>` plus `--kill-mode exit|halt` into the
/// chaos kill point a checkpointed `run` will die at.
fn parse_kill(args: &Args) -> Result<Option<BoundaryKillSpec>, String> {
    let Some(at) = args.flag("kill-at") else {
        return Ok(None);
    };
    let (engine, wave) = at
        .split_once(':')
        .ok_or_else(|| format!("--kill-at wants <engine>:<wave>, got {at:?}"))?;
    let engine: usize = engine
        .parse()
        .map_err(|_| format!("--kill-at engine must be an integer, got {engine:?}"))?;
    let wave: usize = wave
        .parse()
        .map_err(|_| format!("--kill-at wave must be an integer, got {wave:?}"))?;
    let mode = match args.flag("kill-mode").unwrap_or("exit") {
        // 42: distinguishable from clean exits and from error exit 1, so CI
        // can assert the kill actually fired.
        "exit" => KillMode::Exit { code: 42 },
        "halt" => KillMode::Halt,
        other => return Err(format!("--kill-mode must be exit or halt, got {other:?}")),
    };
    Ok(Some(BoundaryKillSpec { engine, wave, mode }))
}

/// Write `<checkpoint-dir>/<run-id>/campaign.json` — everything `resume`
/// needs to recompile the identical campaign: the DSL text, the data
/// source, and the row/seed knobs. Written before the run starts so the
/// spec survives any kill.
fn write_resume_spec(args: &Args, ckpt_dir: &str, run_id: &str) -> Result<(), String> {
    let file = args.positional(0, "campaign file")?;
    let dsl = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file:?}: {e}"))?;
    let source = args
        .flag("data")
        .ok_or_else(|| "missing --data <source> (see `toreador help`)".to_owned())?;
    let mut spec = std::collections::BTreeMap::new();
    spec.insert("campaign", dsl);
    spec.insert("data", source.to_owned());
    spec.insert("rows", args.flag_or("rows", 0usize)?.to_string());
    spec.insert("seed", args.flag_or("seed", 0u64)?.to_string());
    let dir = std::path::Path::new(ckpt_dir).join(run_id);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let path = dir.join("campaign.json");
    let json = serde_json::to_string(&spec).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("cannot write {path:?}: {e}"))
}

fn run(args: &Args) -> Result<String, String> {
    let (bdaas, mut compiled, data, aux) = compile_from_args(args)?;
    if let Some(budget) = parse_memory_budget(args)? {
        compiled.deployment.engine_config = compiled
            .deployment
            .engine_config
            .clone()
            .with_memory_budget(budget);
    }
    let rows_in = data.num_rows();
    let kill = parse_kill(args)?;
    let outcome = match args.flag("checkpoint-dir") {
        None => {
            if kill.is_some() {
                return Err(
                    "--kill-at needs --checkpoint-dir (kill points only fire on \
                            checkpointed runs, after the wave is durable)"
                        .to_owned(),
                );
            }
            bdaas
                .run(&compiled, data, &aux)
                .map_err(|e| e.to_string())?
        }
        Some(ckpt_dir) => {
            let run_id = args.flag("run-id").unwrap_or("run");
            write_resume_spec(args, ckpt_dir, run_id)?;
            let mut rec = RecoverySpec::new(ckpt_dir, run_id);
            if let Some(kill) = kill {
                rec = rec.with_kill(kill);
            }
            bdaas
                .run_with_recovery(&compiled, data, &aux, &rec)
                .map_err(|e| e.to_string())?
        }
    };
    let mut out = render_outcome(&outcome);
    if args.flag("store").is_some() {
        let mut store = required_store(args)?;
        let trainee = trainee_name(args);
        let run_id = persist_adhoc_run(
            &mut store,
            trainee,
            &compiled.spec.name,
            rows_in,
            &compiled,
            &outcome,
        )?;
        out.push_str(&format!(
            "\nstored as run {run_id} for trainee {trainee:?} (compare with \
             `toreador compare` after any later run)\n"
        ));
    }
    Ok(out)
}

/// The `--json` footer of `toreador stream`: lifetime totals plus the
/// canonical state string (the kill/resume byte-identity witness).
#[derive(serde::Serialize)]
struct StreamFooter {
    totals: toreador_dataflow::trace::StreamTotals,
    cumulative: toreador_dataflow::trace::StreamTotals,
    resumed: bool,
    side_channel_rows: u64,
    mean_ack_latency_us: f64,
    state: String,
}

/// `toreador stream`: run a continuous keyed aggregation over a data source
/// cut into arrival-order event-time windows — backpressure, watermarks,
/// and a late-data policy; with `--store`, durable acked offsets that
/// survive process death. `--kill-at-ack N` dies right after offset N's ack
/// reaches the WAL (exit 42 under the default kill mode); rerunning with
/// `--resume` replays the WAL and finishes the stream without re-executing
/// any acked batch.
fn stream_cmd(args: &Args) -> Result<String, String> {
    use toreador_dataflow::logical::{AggExpr, AggFunc};
    use toreador_dataflow::session::EngineConfig;
    use toreador_dataflow::streaming::{
        run_continuous, ArrivalSource, DurableSpec, LatePolicy, StreamConfig,
    };

    let rows = args.flag_or("rows", 0usize)?;
    let seed = args.flag_or("seed", 42u64)?;
    let (data, _aux) = load_data(args, rows, seed)?;
    let key = args
        .flag("key")
        .ok_or_else(|| "missing --key <column> (see `toreador help`)".to_owned())?
        .to_owned();
    let sum = args.flag("sum").map(str::to_owned);
    let ts_column = args.flag("ts-column").unwrap_or("ts").to_owned();
    let window_ms = args.flag_or("window-ms", 1_000i64)?;
    let lateness = args.flag_or("allowed-lateness", 0i64)?;
    let policy_name = args.flag("late-policy").unwrap_or("absorb");
    let late_policy = match policy_name {
        "absorb" => LatePolicy::Absorb,
        "side-channel" => LatePolicy::SideChannel,
        "drop" => LatePolicy::Drop,
        other => {
            return Err(format!(
                "--late-policy must be absorb, side-channel, or drop, got {other:?}"
            ))
        }
    };
    let buffer = args.flag_or("buffer", 8usize)?;
    if buffer == 0 {
        return Err("--buffer must be positive".to_owned());
    }

    let mut engine_config = EngineConfig::default().with_threads(2);
    if let Some(budget) = parse_memory_budget(args)? {
        engine_config = engine_config.with_memory_budget(budget);
    }
    let mut config = StreamConfig::default()
        .with_engine(engine_config)
        .with_ts_column(&ts_column)
        .with_allowed_lateness(lateness)
        .with_late_policy(late_policy)
        .with_buffer(buffer)
        .with_pipeline_id(format!("cli:{key}"));
    match args.flag("store") {
        Some(dir) => {
            config =
                config.with_durable(DurableSpec::new(dir).with_resume(args.flag_set("resume")));
        }
        None if args.flag_set("resume") => {
            return Err("--resume needs --store <dir> (the WAL to replay)".to_owned());
        }
        None => {}
    }
    if let Some(at) = args.flag("kill-at-ack") {
        if args.flag("store").is_none() {
            return Err(
                "--kill-at-ack needs --store <dir> (kill points only fire once the ack \
                 is durable)"
                    .to_owned(),
            );
        }
        let offset: u64 = at
            .parse()
            .map_err(|_| format!("--kill-at-ack must be an offset, got {at:?}"))?;
        let mode = match args.flag("kill-mode").unwrap_or("exit") {
            "exit" => KillMode::Exit { code: 42 },
            "halt" => KillMode::Halt,
            other => return Err(format!("--kill-mode must be exit or halt, got {other:?}")),
        };
        config = config.with_kill_at_ack(offset, mode);
    }

    let mut source =
        ArrivalSource::windows(&data, &ts_column, window_ms).map_err(|e| e.to_string())?;
    let run = run_continuous(
        &mut source,
        &config,
        &|e, ds| {
            let mut aggs = vec![AggExpr::new(AggFunc::Count, key.as_str(), "n")];
            if let Some(s) = &sum {
                aggs.push(AggExpr::new(AggFunc::Sum, s, "total"));
            }
            e.flow(ds)?.aggregate(&[key.as_str()], aggs)
        },
        &key,
        Some("n"),
        sum.as_ref().map(|_| "total"),
    )
    .map_err(|e| e.to_string())?;

    let totals = run.totals();
    let cumulative = run.cumulative_totals();
    let resumed = run.recovery.as_ref().is_some_and(|r| r.resumed);
    let side_channel_rows: u64 = run.side_channel.iter().map(|t| t.num_rows() as u64).sum();
    if args.flag_set("json") {
        // One wire record per acked batch, then one footer line — JSONL, so
        // scripts stream it.
        let mut out = String::new();
        for a in &run.acked {
            out.push_str(&serde_json::to_string(a).map_err(|e| e.to_string())?);
            out.push('\n');
        }
        let footer = StreamFooter {
            totals,
            cumulative,
            resumed,
            side_channel_rows,
            mean_ack_latency_us: run.mean_ack_latency_us(),
            state: run.canonical_state(),
        };
        out.push_str(&serde_json::to_string(&footer).map_err(|e| e.to_string())?);
        out.push('\n');
        return Ok(out);
    }

    let mut out = format!(
        "stream over {} rows, {} event window(s): {} batch(es) acked, {} rows\n",
        data.num_rows(),
        source.num_batches(),
        totals.batches_acked,
        totals.rows_acked,
    );
    if resumed {
        let r = run.recovery.as_ref().expect("resumed implies recovery");
        out.push_str(&format!(
            "resumed from the WAL at offset {}: {} batch(es) restored without \
             re-execution (lifetime: {} acked, {} rows)\n",
            r.next_offset, r.totals.batches_acked, cumulative.batches_acked, cumulative.rows_acked,
        ));
    }
    match totals.final_watermark_ms {
        Some(w) => out.push_str(&format!(
            "watermark: {w} ms after {} advance(s) (allowed lateness {lateness} ms)\n",
            totals.watermark_advances
        )),
        None => out.push_str("watermark: never advanced (no rows)\n"),
    }
    out.push_str(&format!(
        "late data [{policy_name}]: {} absorbed, {} side-channelled ({} rows diverted), \
         {} dropped\n",
        cumulative.late_absorbed,
        cumulative.late_side_channelled,
        side_channel_rows,
        cumulative.late_dropped,
    ));
    out.push_str(&format!(
        "backpressure: {} stall(s), {} us blocked, max in-flight {} (cap {buffer})\n",
        totals.stalls, totals.stall_us, totals.max_in_flight,
    ));
    out.push_str(&format!(
        "mean ack latency: {:.1} us\n",
        run.mean_ack_latency_us()
    ));
    out.push_str(&format!("state (canonical): {}\n", run.canonical_state()));
    Ok(out)
}

/// `toreador resume <run-id> --checkpoint-dir <dir>`: pick up a killed
/// checkpointed run. The resume spec written by `run` recompiles the
/// identical campaign; every stage the dead process checkpointed is
/// restored from disk (zero tasks started), and execution re-enters at the
/// first incomplete stage. A stale checkpoint — plan, inputs, or engine
/// config changed since the kill — is refused, never silently recomputed.
fn resume_cmd(args: &Args) -> Result<String, String> {
    let run_id = args.positional(0, "run id")?;
    let ckpt_dir = args
        .flag("checkpoint-dir")
        .ok_or_else(|| "missing --checkpoint-dir <dir> (see `toreador help`)".to_owned())?;
    let path = std::path::Path::new(ckpt_dir)
        .join(run_id)
        .join("campaign.json");
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read resume spec {path:?}: {e} (was this run started with --checkpoint-dir?)"
        )
    })?;
    let spec: std::collections::BTreeMap<String, String> =
        serde_json::from_str(&text).map_err(|e| format!("malformed resume spec {path:?}: {e}"))?;
    let field = |name: &str| {
        spec.get(name)
            .ok_or_else(|| format!("resume spec {path:?} is missing {name:?}"))
    };
    let rows: usize = field("rows")?
        .parse()
        .map_err(|_| format!("resume spec {path:?} has a bad row count"))?;
    let seed: u64 = field("seed")?
        .parse()
        .map_err(|_| format!("resume spec {path:?} has a bad seed"))?;
    let (data, aux) = load_source(field("data")?, rows, seed)?;
    let rows_in = data.num_rows();
    let bdaas = Bdaas::new();
    let parsed = bdaas.parse(field("campaign")?).map_err(|e| e.to_string())?;
    let compiled = bdaas
        .compile(&parsed, data.schema(), data.num_rows())
        .map_err(|e| e.to_string())?;
    let outcome = bdaas
        .run_with_recovery(
            &compiled,
            data,
            &aux,
            &RecoverySpec::resume(ckpt_dir, run_id),
        )
        .map_err(|e| e.to_string())?;
    let restored: usize = outcome
        .engine_traces
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| {
            matches!(
                e.kind,
                toreador_dataflow::trace::TraceEventKind::StageRestored { .. }
            )
        })
        .count();
    let mut out = format!(
        "resumed run {run_id:?}: {restored} checkpointed stage(s) restored, \
         {} engine run(s)\n\n",
        outcome.engine_traces.len()
    );
    out.push_str(&render_outcome(&outcome));
    if args.flag("store").is_some() {
        let mut store = required_store(args)?;
        let trainee = trainee_name(args);
        let stored_id = persist_adhoc_run(
            &mut store,
            trainee,
            &compiled.spec.name,
            rows_in,
            &compiled,
            &outcome,
        )?;
        out.push_str(&format!(
            "\nstored as run {stored_id} for trainee {trainee:?} (compare with \
             `toreador compare` after any later run)\n"
        ));
    }
    Ok(out)
}

/// Run a campaign and render its flight-recorder journals: one per-stage
/// summary per engine run (text), or the full trace reports (json).
fn trace_cmd(args: &Args) -> Result<String, String> {
    let format = args.flag("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("--format must be text or json, got {format:?}"));
    }
    let (bdaas, mut compiled, data, aux) = compile_from_args(args)?;
    if let Some(budget) = parse_memory_budget(args)? {
        compiled.deployment.engine_config = compiled
            .deployment
            .engine_config
            .clone()
            .with_memory_budget(budget);
    }
    let rows_in = data.num_rows();
    let outcome = bdaas
        .run(&compiled, data, &aux)
        .map_err(|e| e.to_string())?;
    if outcome.engine_traces.is_empty() {
        return Err("campaign made no engine runs — nothing to trace".to_owned());
    }
    // Persist (with full traces) before rendering, in either format; the
    // note only goes into the text output so json stays parseable.
    let mut stored = None;
    if args.flag("store").is_some() {
        let mut store = required_store(args)?;
        let trainee = trainee_name(args).to_owned();
        let run_id = persist_adhoc_run(
            &mut store,
            &trainee,
            &compiled.spec.name,
            rows_in,
            &compiled,
            &outcome,
        )?;
        stored = Some((trainee, run_id));
    }
    if format == "json" {
        let reports: Vec<toreador_dataflow::trace::TraceReport> =
            outcome.engine_traces.iter().map(|t| t.report()).collect();
        return serde_json::to_string_pretty(&reports).map_err(|e| e.to_string());
    }
    let mut out = format!(
        "campaign {:?}: {} engine run(s)\n",
        compiled.spec.name,
        outcome.engine_traces.len()
    );
    for (i, trace) in outcome.engine_traces.iter().enumerate() {
        let summary = trace.summarize();
        out.push_str(&format!("\nengine run {i}:\n"));
        out.push_str(&summary.render());
        let slowest = trace
            .task_spans()
            .into_iter()
            .max_by_key(|s| s.duration_us());
        if let Some(s) = slowest {
            out.push_str(&format!(
                "slowest task: stage {} partition {} attempt {} ({} us)\n",
                s.stage,
                s.partition,
                s.attempt,
                s.duration_us()
            ));
        }
    }
    if let Some((trainee, run_id)) = stored {
        out.push_str(&format!(
            "\nstored as run {run_id} for trainee {trainee:?}\n"
        ));
    }
    Ok(out)
}

/// Parse a `--profile` value into a deterministic chaos schedule.
///
/// Named profiles are rate-based mixes; `targeted:S:P:A:kind[:micros]`
/// injects exactly one fault at task (stage S, partition P, attempt A).
fn parse_chaos_profile(profile: &str, seed: u64) -> Result<ChaosPlan, String> {
    if let Some(spec) = profile.strip_prefix("targeted:") {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() < 4 {
            return Err(format!(
                "targeted profile needs stage:partition:attempt:kind, got {spec:?}"
            ));
        }
        let coord = |i: usize, what: &str| -> Result<usize, String> {
            parts[i]
                .parse()
                .map_err(|_| format!("targeted {what} must be an integer, got {:?}", parts[i]))
        };
        let stage = coord(0, "stage")?;
        let partition = coord(1, "partition")?;
        let attempt = coord(2, "attempt")? as u32;
        let kind = match parts[3] {
            "crash" => FaultKind::Crash,
            "panic" => FaultKind::Panic,
            "delay" => {
                let micros = match parts.get(4) {
                    None => 1_000,
                    Some(raw) => raw
                        .parse()
                        .map_err(|_| format!("delay micros must be an integer, got {raw:?}"))?,
                };
                FaultKind::Delay { micros }
            }
            other => return Err(format!("unknown fault kind {other:?} (crash|panic|delay)")),
        };
        return Ok(ChaosPlan::none().with_targeted(TargetedFault {
            stage,
            partition,
            attempt,
            kind,
        }));
    }
    match profile {
        "calm" => Ok(ChaosPlan::none()),
        "flaky" => Ok(ChaosPlan::crashes(0.05, seed)),
        "lossy" => Ok(ChaosPlan::crashes(0.25, seed)),
        "slow" => Ok(ChaosPlan::delays(0.25, 2_000, seed)),
        "panicky" => Ok(ChaosPlan::panics(0.05, seed)),
        "hostile" => Ok(ChaosPlan::crashes(0.15, seed)
            .with_panic_rate(0.05)
            .with_delays(0.1, 1_000)),
        other => Err(format!(
            "unknown chaos profile {other:?} \
             (calm|flaky|lossy|slow|panicky|hostile|diskful|targeted:...)"
        )),
    }
}

/// `toreador chaos`: run a campaign twice — once fault-free, once under a
/// deterministic chaos plan with a resilience policy — and report what the
/// faults cost and whether the output survived unchanged. The resilience
/// invariant on display: a chaotic run either completes identical to the
/// fault-free baseline or fails cleanly with a classified error.
fn chaos_cmd(args: &Args) -> Result<String, String> {
    let profile = args.flag("profile").unwrap_or("hostile");
    if profile == "diskful" {
        return disk_chaos_cmd(args);
    }
    let seed = args.flag_or("seed", 0u64)?;
    let retries = args.flag_or("retries", 3u32)?;
    let deadline_ms = args.flag_or("deadline-ms", 0u64)?;
    let speculate = args.flag_or("speculate", 0.0f64)?;
    let chaos = parse_chaos_profile(profile, seed)?;

    let (bdaas, mut compiled, data, aux) = compile_from_args(args)?;
    let baseline = bdaas
        .run(&compiled, data.clone(), &aux)
        .map_err(|e| format!("fault-free baseline failed: {e}"))?;

    let mut resilience = ResilienceConfig::none()
        .with_retry(RetryPolicy::exponential(retries + 1, 500, 20_000).with_jitter(0.25, seed))
        .with_chaos(chaos.clone());
    if deadline_ms > 0 {
        resilience = resilience.with_deadline(TaskDeadline::from_millis(deadline_ms));
    }
    if speculate > 1.0 {
        resilience = resilience.with_speculation(SpeculationPolicy::new(speculate));
    }
    compiled.deployment.engine_config = compiled
        .deployment
        .engine_config
        .clone()
        .with_resilience(resilience);

    let mut out = format!(
        "chaos profile {profile:?} (seed {seed}): crash {:.0}% panic {:.0}% delay {:.0}%, \
         {} targeted fault(s)\n\
         policy: {} attempt(s) per task{}{}\n\n",
        chaos.crash_rate * 100.0,
        chaos.panic_rate * 100.0,
        chaos.delay_rate * 100.0,
        chaos.targeted.len(),
        retries + 1,
        if deadline_ms > 0 {
            format!(", deadline {deadline_ms} ms")
        } else {
            String::new()
        },
        if speculate > 1.0 {
            format!(", speculation at {speculate:.1}x median")
        } else {
            String::new()
        },
    );
    match bdaas.run(&compiled, data, &aux) {
        Ok(outcome) => {
            let totals = outcome
                .engine_traces
                .iter()
                .fold(ResilienceTotals::default(), |acc, t| {
                    acc.merge(&t.resilience_totals())
                });
            out.push_str(&format!(
                "resilience cost: {} retries, {} injected faults, {} us backoff, \
                 {} timeouts, {} panics isolated, {} speculative ({} won), \
                 {} cancellations\n",
                totals.retries,
                totals.faults,
                totals.backoff_us,
                totals.timeouts,
                totals.panics,
                totals.speculative_launched,
                totals.speculative_won,
                totals.cancellations,
            ));
            if outcome.output == baseline.output {
                out.push_str("outputs: IDENTICAL to the fault-free baseline\n");
            } else {
                // A silent wrong answer is the one resilience failure that
                // must not exit 0 — fail the invocation so CI catches it.
                return Err(format!(
                    "{out}outputs: DIFFER from the fault-free baseline (resilience bug!)"
                ));
            }
        }
        Err(e) => {
            out.push_str(&format!(
                "run failed cleanly under chaos (classified, no hang, no stray panic):\n  {e}\n"
            ));
        }
    }
    Ok(out)
}

/// `toreador chaos --profile diskful`: the storage-fault twin of the task
/// chaos oracle. Run once fault-free, then once with a seeded disk-fault
/// injector (EIO on a background rate) registered over the run's spill
/// directory and a memory budget small enough to force spilling through
/// it. The invariant is the same: identical output or a classified
/// failure — never silent divergence, and never a leaked temp file once
/// the injector is disarmed.
fn disk_chaos_cmd(args: &Args) -> Result<String, String> {
    use toreador_store::chaos::{DiskChaos, DiskChaosPlan};

    let seed = args.flag_or("seed", 0u64)?;
    let rate = args.flag_or("eio-rate", 0.02f64)?;
    let budget = parse_memory_budget(args)?.unwrap_or(64 << 10);

    let (bdaas, mut compiled, data, aux) = compile_from_args(args)?;
    let baseline = bdaas
        .run(&compiled, data.clone(), &aux)
        .map_err(|e| format!("fault-free baseline failed: {e}"))?;

    let spill_dir =
        std::env::temp_dir().join(format!("toreador-diskful-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let (chaos, _guard) = DiskChaos::register(&spill_dir, DiskChaosPlan::flaky(seed, rate));
    compiled.deployment.engine_config = compiled
        .deployment
        .engine_config
        .clone()
        .with_memory_budget(budget)
        .with_spill_dir(&spill_dir);

    let mut out = format!(
        "disk-chaos profile \"diskful\" (seed {seed}): {:.1}% EIO on spill I/O, \
         memory budget {budget} bytes\n\n",
        rate * 100.0
    );
    let result = bdaas.run(&compiled, data, &aux);
    chaos.disarm();
    match result {
        Ok(outcome) => {
            if outcome.output == baseline.output {
                out.push_str("outputs: IDENTICAL to the fault-free baseline\n");
            } else {
                return Err(format!(
                    "{out}outputs: DIFFER from the fault-free baseline (storage-fault bug!)"
                ));
            }
        }
        Err(e) => {
            out.push_str(&format!(
                "run failed cleanly under disk chaos (classified, no panic):\n  {e}\n"
            ));
        }
    }
    out.push_str(&format!(
        "storage faults injected: {}\n",
        chaos.faults_injected()
    ));
    // With the injector disarmed, anything left in the spill dir is
    // either scratch a failed run abandoned (its cleanup removal may
    // itself have been injected) — report it, then sweep.
    let leftovers = std::fs::read_dir(&spill_dir)
        .map(|entries| entries.flatten().count())
        .unwrap_or(0);
    if leftovers > 0 {
        out.push_str(&format!(
            "swept {leftovers} abandoned spill artifact(s) left by injected cleanup failures\n"
        ));
    }
    let _ = std::fs::remove_dir_all(&spill_dir);
    Ok(out)
}

/// `toreador fsck`: offline integrity scrub of a directory tree holding
/// stores, checkpoints, or spill scratch. Without `--repair`, report and
/// fail iff anything is non-clean. With `--repair`, apply the proven-safe
/// actions (truncate torn tails, remove orphans), rescan, and fail iff
/// unrepairable corruption remains.
fn fsck_cmd(args: &Args) -> Result<String, String> {
    use toreador_store::fsck::repair;

    let dir = args.positional(0, "directory to scan")?;
    let root = std::path::Path::new(dir);
    if !root.is_dir() {
        return Err(format!("{dir:?} is not a directory"));
    }
    let arts = toreador_dataflow::fsck::scan_tree(root).map_err(|e| e.to_string())?;
    let render = |arts: &[toreador_store::fsck::Artifact]| -> String {
        let mut s = String::new();
        for a in arts {
            s.push_str(&format!(
                "{:<17} {:<12} {}{}\n",
                a.verdict.label(),
                a.kind,
                a.path.display(),
                a.verdict
                    .detail()
                    .map(|d| format!("  ({d})"))
                    .unwrap_or_default(),
            ));
        }
        s
    };
    let mut out = format!("fsck {}: {} artifact(s)\n", root.display(), arts.len());
    out.push_str(&render(&arts));

    if !args.flag_set("repair") {
        let dirty = arts.iter().filter(|a| !a.verdict.is_clean()).count();
        if dirty == 0 {
            out.push_str("clean\n");
            return Ok(out);
        }
        return Err(format!(
            "{out}{dirty} artifact(s) need attention (rerun with --repair to \
             apply proven-safe fixes)"
        ));
    }

    let mut actions = 0usize;
    for a in &arts {
        match repair(a) {
            Ok(None) => {}
            Ok(Some(action)) => {
                actions += 1;
                out.push_str(&format!("repaired {}: {action}\n", a.path.display()));
            }
            Err(e) => out.push_str(&format!("repair {} failed: {e}\n", a.path.display())),
        }
    }
    out.push_str(&format!("{actions} repair(s) applied\n"));
    let after = toreador_dataflow::fsck::scan_tree(root).map_err(|e| e.to_string())?;
    let corrupt: Vec<_> = after.iter().filter(|a| a.verdict.is_corrupt()).collect();
    if corrupt.is_empty() {
        out.push_str("clean after repair\n");
        Ok(out)
    } else {
        Err(format!(
            "{out}{} artifact(s) remain CORRUPT — fsck does not guess; restore from a \
             snapshot or recompute",
            corrupt.len()
        ))
    }
}

fn attempt(args: &Args) -> Result<String, String> {
    let challenge_id = args.positional(0, "challenge id")?.to_owned();
    let choices: ChoiceVector = args.positionals[1..].to_vec();
    let rows = args.flag_or("rows", 0usize)?;
    let seed = args.flag_or("seed", 42u64)?;
    // Attempts accumulate across invocations under the free-tier quota,
    // exactly like a Labs login — either into a JSON file (--session) or
    // into the crash-safe campaign store (--store).
    let session_path = args.flag("session");
    if session_path.is_some() && args.flag("store").is_some() {
        return Err("--session and --store are mutually exclusive".to_owned());
    }
    let mut session = if args.flag("store").is_some() {
        let store = required_store(args)?;
        LabSession::open(store, trainee_name(args), Quota::free_tier(), seed)
            .map_err(|e| e.to_string())?
    } else {
        match session_path {
            Some(path) if std::path::Path::new(path).exists() => {
                let json = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read session {path:?}: {e}"))?;
                LabSession::import(&json).map_err(|e| e.to_string())?
            }
            _ => LabSession::new("cli", Quota::free_tier(), seed),
        }
    };
    let record = session
        .attempt(&challenge_id, &choices, (rows > 0).then_some(rows))
        .map_err(|e| e.to_string())?
        .clone();
    if let Some(path) = session_path {
        std::fs::write(path, session.export())
            .map_err(|e| format!("cannot write session {path:?}: {e}"))?;
    }
    let score = session.score(record.run_id).map_err(|e| e.to_string())?;
    let mut out = format!(
        "challenge {challenge_id}, choices {:?}\nplan: {}\nplatform: {}\n\nindicators:\n",
        record.choices,
        record.plan_services.join(" -> "),
        record.platform,
    );
    for (name, value) in &record.indicators {
        out.push_str(&format!("  {name:<18} {value:>14.3}\n"));
    }
    out.push_str("\nobjectives:\n");
    for (objective, satisfied) in &record.objectives {
        out.push_str(&format!(
            "  {objective:<30} {}\n",
            match satisfied {
                Some(true) => "satisfied",
                Some(false) => "MISSED",
                None => "unmeasured",
            }
        ));
    }
    out.push_str(&format!("\nscore: {:.1}/100\n", score.total));
    for (component, awarded, maximum) in &score.breakdown {
        if *maximum > 0.0 || awarded.abs() > 0.0 {
            out.push_str(&format!("  {component:<22} {awarded:>7.1}\n"));
        }
    }
    if session.runs_used() > 1 {
        out.push_str(&format!(
            "\nsession: {} runs used, {:.1} cost units spent",
            session.runs_used(),
            session.cost_used()
        ));
        if let Some((best, total)) = session.best_run(&challenge_id) {
            out.push_str(&format!(
                "; best run on this challenge: {best} ({total:.1}/100)"
            ));
        }
        out.push('\n');
        // The consequence matrix over everything tried so far.
        if let Ok(matrix) = session.consequences(&challenge_id) {
            if matrix.rows.len() > 1 {
                out.push_str("\nconsequences so far:\n");
                out.push_str(&matrix.render());
            }
        }
    }
    Ok(out)
}

/// `toreador serve --store <dir>`: the long-running multi-tenant Labs
/// daemon. Blocks until SIGINT/SIGTERM (or `POST /v1/shutdown`), drains
/// in-flight attempts through their run controls, checkpoints the store,
/// and exits 0.
fn serve_cmd(args: &Args) -> Result<String, String> {
    use toreador_serve::prelude::*;
    let dir = args
        .flag("store")
        .ok_or_else(|| "missing --store <dir> (see `toreador help`)".to_owned())?;
    let quota = Quota {
        max_runs: args.flag_or("quota-runs", Quota::free_tier().max_runs)?,
        max_rows_per_run: args.flag_or("quota-rows", Quota::free_tier().max_rows_per_run)?,
        max_total_cost: args.flag_or("quota-cost", Quota::free_tier().max_total_cost)?,
    };
    let cfg = ServerConfig {
        addr: args.flag("addr").unwrap_or("127.0.0.1:7411").to_owned(),
        max_inflight: args.flag_or("max-inflight", 4usize)?,
        max_queue: args.flag_or("queue", 64usize)?,
        queue_wait: std::time::Duration::from_millis(args.flag_or("queue-wait-ms", 30_000u64)?),
        hub: HubConfig {
            tenant_inflight: args.flag_or("tenant-inflight", 2usize)?,
            threads_per_attempt: args.flag_or("threads-per-attempt", 2usize)?,
            default_quota: quota,
            default_seed: args.flag_or("seed", 7u64)?,
        },
    };
    let server = Server::bind(std::path::Path::new(dir), cfg)?;
    let summary = server.run()?;
    Ok(format!(
        "serve: drained cleanly — {} request(s), {} attempt(s) completed, \
         {} cancelled on shutdown\n",
        summary.requests, summary.completed, summary.cancelled_on_drain
    ))
}

/// `toreador fleet`: drive simulated trainee load against a live daemon
/// and report latency, rejection classes, and record integrity. Exits
/// nonzero when the run sees protocol errors, lost records, or a p99 over
/// the bound.
fn fleet_cmd(args: &Args) -> Result<String, String> {
    use toreador_serve::prelude::*;
    let mut cfg = FleetConfig {
        addr: args.flag("addr").unwrap_or("127.0.0.1:7411").to_owned(),
        ..FleetConfig::default()
    };
    if args.flag_set("quick") {
        cfg = cfg.quick();
    }
    cfg.trainees = args.flag_or("trainees", cfg.trainees)?;
    cfg.attempts = args.flag_or("attempts", cfg.attempts)?;
    cfg.workers = args.flag_or("workers", cfg.workers)?;
    cfg.rows = args.flag_or("rows", cfg.rows)?;
    cfg.challenge = args.flag("challenge").unwrap_or(&cfg.challenge).to_owned();
    cfg.max_p99_ms = args.flag_or("max-p99-ms", 0u64)?;
    cfg.timeout = std::time::Duration::from_secs(args.flag_or("timeout-s", 120u64)?);
    if let Some(ramp) = args.flag("ramp") {
        cfg.ramp = ramp
            .split(',')
            .map(|w| {
                w.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("--ramp wants comma-separated worker counts, got {w:?}"))
            })
            .collect::<Result<Vec<usize>, String>>()?;
    }
    let report = run_fleet(&cfg);
    let rendered = report.render();
    if report.healthy(cfg.max_p99_ms) {
        Ok(rendered)
    } else {
        Err(format!("{rendered}fleet run FAILED the health checks"))
    }
}

/// `toreador sessions --store <dir>`: every trainee in the store, with
/// usage and quota headroom.
fn sessions_cmd(args: &Args) -> Result<String, String> {
    let store = required_store(args)?;
    if args.flag_set("json") {
        return sessions_json(&store);
    }
    let stats = store.stats();
    let mut out = format!(
        "campaign store: {} segment(s), snapshot at lsn {}, last lsn {}\n\n",
        stats.segments, stats.snapshot_lsn, stats.last_lsn
    );
    let mut any = false;
    for (name, state) in store.trainees() {
        any = true;
        let runs = state.runs.len() as u64;
        let left = state.meta.quota.remaining(runs, state.meta.total_cost);
        let runs_left = if left.runs == u64::MAX {
            "unlimited".to_owned()
        } else {
            left.runs.to_string()
        };
        let cost_left = if left.cost.is_infinite() {
            "unlimited".to_owned()
        } else {
            format!("{:.1}", left.cost)
        };
        out.push_str(&format!(
            "{name:<16} {runs:>3} runs, {:>9.1} cost spent; remaining: {runs_left} runs, \
             {cost_left} cost (seed {})\n",
            state.meta.total_cost, state.meta.seed
        ));
    }
    if !any {
        out.push_str("no trainees yet\n");
    }
    Ok(out)
}

/// One trainee row of `toreador sessions --json`. `None` headroom means
/// unlimited (infinity is not representable in JSON).
#[derive(serde::Serialize)]
struct SessionRow {
    trainee: String,
    runs: u64,
    cost_spent: f64,
    runs_left: Option<u64>,
    cost_left: Option<f64>,
    seed: u64,
    quota: Quota,
}

fn sessions_json(store: &SessionStore) -> Result<String, String> {
    let mut rows = Vec::new();
    for (name, state) in store.trainees() {
        let runs = state.runs.len() as u64;
        let left = state.meta.quota.remaining(runs, state.meta.total_cost);
        rows.push(SessionRow {
            trainee: name.clone(),
            runs,
            cost_spent: state.meta.total_cost,
            runs_left: (left.runs != u64::MAX).then_some(left.runs),
            cost_left: left.cost.is_finite().then_some(left.cost),
            seed: state.meta.seed,
            quota: state.meta.quota,
        });
    }
    serde_json::to_string_pretty(&rows)
        .map(|s| s + "\n")
        .map_err(|e| e.to_string())
}

/// `toreador history <trainee> --store <dir>`: the persisted run log.
fn history_cmd(args: &Args) -> Result<String, String> {
    let trainee = args.positional(0, "trainee name")?;
    let store = required_store(args)?;
    let state = store
        .trainee(trainee)
        .ok_or_else(|| format!("no trainee {trainee:?} in the store"))?;
    if args.flag_set("json") {
        // The wire-protocol history shape, so scripts parse one format
        // whether they ask the store or a live daemon.
        let reply = toreador_serve::proto::HistoryReply {
            trainee: trainee.to_owned(),
            runs: state
                .runs
                .values()
                .map(|r| toreador_serve::proto::HistoryEntry {
                    run_id: r.run_id,
                    challenge: r.challenge_id.clone(),
                    choices: r.choices.clone(),
                    score: state.scores.get(&r.run_id).copied(),
                    rows_in: r.rows_in,
                    rows_out: r.rows_out,
                    cost: r.indicator(Indicator::Cost),
                })
                .collect(),
        };
        return serde_json::to_string_pretty(&reply)
            .map(|s| s + "\n")
            .map_err(|e| e.to_string());
    }
    let mut out = format!("{} run(s) for {trainee:?}\n\n", state.runs.len());
    for (run_id, r) in &state.runs {
        let score = state
            .scores
            .get(run_id)
            .map(|s| format!("{s:>5.1}/100"))
            .unwrap_or_else(|| "   —    ".to_owned());
        out.push_str(&format!(
            "run {run_id:>3}  {score}  {:<20} {:>7} rows  cost {:>7.1}  choices {:?}\n",
            r.challenge_id,
            r.rows_in,
            r.indicator(Indicator::Cost).unwrap_or(0.0),
            r.choices,
        ));
    }
    Ok(out)
}

/// `toreador compare <a> <b> --store <dir>`: diff two persisted runs —
/// choices, indicators, per-operator timings and skew — across process
/// boundaries.
fn compare_cmd(args: &Args) -> Result<String, String> {
    let a: u64 = args
        .positional(0, "first run id")?
        .parse()
        .map_err(|_| "run ids are integers".to_owned())?;
    let b: u64 = args
        .positional(1, "second run id")?
        .parse()
        .map_err(|_| "run ids are integers".to_owned())?;
    let store = required_store(args)?;
    let trainee = trainee_name(args);
    let fetch = |id: u64| {
        store
            .run(trainee, id)
            .ok_or_else(|| format!("no run {id} for trainee {trainee:?} in the store"))
    };
    let diff = RunComparison::diff(fetch(a)?, fetch(b)?).map_err(|e| e.to_string())?;
    Ok(diff.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_cli(items: &[&str]) -> Result<String, String> {
        let raw: Vec<String> = items.iter().map(|s| s.to_string()).collect();
        dispatch(&parse(&raw)?)
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_cli(&["help"]).unwrap().contains("USAGE"));
        assert!(run_cli(&[]).unwrap_or_default().contains("USAGE"));
        let err = run_cli(&["frobnicate"]).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn catalog_lists_all_areas() {
        let out = run_cli(&["catalog"]).unwrap();
        for area in ["preparation", "analytics", "processing", "visualization"] {
            assert!(out.contains(&format!("[{area}]")), "{out}");
        }
        assert!(out.contains("analytics.kmeans"));
    }

    #[test]
    fn scenarios_and_challenges_list() {
        let out = run_cli(&["scenarios"]).unwrap();
        assert!(out.contains("ecommerce-clicks"));
        let out = run_cli(&["challenges"]).unwrap();
        assert!(out.contains("health-compliance"));
        let out = run_cli(&["challenges", "ecomm-revenue"]).unwrap();
        assert!(out.contains("reference solution"));
        assert!(run_cli(&["challenges", "nope"]).is_err());
    }

    #[test]
    fn run_campaign_from_file_and_generated_data() {
        let dir = std::env::temp_dir().join("toreador-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("revenue.tdl");
        std::fs::write(
            &file,
            "campaign revenue on clicks\nseed 3\ngoal filtering predicate=\"action == 'purchase'\"\ngoal aggregation group_by=country agg=sum:price:revenue\n",
        )
        .unwrap();
        let out = run_cli(&[
            "run",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "500",
        ])
        .unwrap();
        assert!(out.contains("indicators:"));
        assert!(out.contains("revenue"));
        // Explain on the same file.
        let out = run_cli(&[
            "explain",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
        ])
        .unwrap();
        assert!(out.contains("processing.filter"));
        assert!(out.contains("deployment"));
    }

    #[test]
    fn run_campaign_from_csv_file() {
        let dir = std::env::temp_dir().join("toreador-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("data.csv");
        let table = toreador_data::generate::clickstream(300, 5);
        std::fs::write(&csv_path, toreador_data::csv::write_csv(&table)).unwrap();
        let dsl_path = dir.join("count.tdl");
        std::fs::write(
            &dsl_path,
            "campaign count on clicks\ngoal aggregation group_by=action agg=count:event_id:n\n",
        )
        .unwrap();
        let out = run_cli(&[
            "run",
            dsl_path.to_str().unwrap(),
            "--data",
            csv_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("purchase"), "{out}");
    }

    fn write_trace_campaign() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("toreador-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("trace.tdl");
        std::fs::write(
            &file,
            "campaign traced on clicks\nseed 3\ngoal filtering predicate=\"action == 'purchase'\"\ngoal aggregation group_by=country agg=sum:price:revenue\n",
        )
        .unwrap();
        file
    }

    #[test]
    fn trace_renders_critical_path_and_skew() {
        let file = write_trace_campaign();
        let out = run_cli(&[
            "trace",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "500",
        ])
        .unwrap();
        assert!(out.contains("engine run 0"), "{out}");
        assert!(out.contains("critical path"), "{out}");
        assert!(out.contains("skew"), "{out}");
        assert!(out.contains("slowest task"), "{out}");
    }

    #[test]
    fn trace_json_exports_full_reports() {
        let file = write_trace_campaign();
        let out = run_cli(&[
            "trace",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "500",
            "--format",
            "json",
        ])
        .unwrap();
        let reports: Vec<toreador_dataflow::trace::TraceReport> =
            serde_json::from_str(&out).unwrap();
        assert!(!reports.is_empty());
        assert!(!reports[0].events.is_empty());
        assert!(reports[0].summary.total_tasks > 0);
        // Unknown format is rejected.
        let err = run_cli(&[
            "trace",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--format",
            "xml",
        ])
        .unwrap_err();
        assert!(err.contains("--format"));
    }

    #[test]
    fn memory_budget_flag_parses_suffixes_and_rejects_junk() {
        let budget_of = |raw: &str| {
            let a = parse(&[
                "run".to_owned(),
                "--memory-budget".to_owned(),
                raw.to_owned(),
            ])
            .unwrap();
            parse_memory_budget(&a)
        };
        assert_eq!(budget_of("4096").unwrap(), Some(4096));
        assert_eq!(budget_of("64k").unwrap(), Some(64 << 10));
        assert_eq!(budget_of("16M").unwrap(), Some(16 << 20));
        assert_eq!(budget_of("2g").unwrap(), Some(2 << 30));
        for junk in ["", "m", "ten", "4t", "99999999999999999999g"] {
            assert!(budget_of(junk).is_err(), "{junk:?} must be rejected");
        }
        let none = parse(&["run".to_owned()]).unwrap();
        assert_eq!(parse_memory_budget(&none).unwrap(), None);
    }

    #[test]
    fn budgeted_trace_reports_spill_totals_and_matches_unbudgeted_run() {
        let dir = std::env::temp_dir().join("toreador-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("spill.tdl");
        // High-cardinality group key so a small budget forces spills.
        std::fs::write(
            &file,
            "campaign spilled on clicks\nseed 3\ngoal aggregation group_by=event_id agg=count:event_id:n\n",
        )
        .unwrap();
        let base = [
            "run",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "3000",
        ];
        let calm = run_cli(&base).unwrap();
        let mut tight: Vec<&str> = base.to_vec();
        tight.extend(["--memory-budget", "16k"]);
        let spilled = run_cli(&tight).unwrap();
        // Everything from `output (` down is deterministic (wall-clock
        // indicators above it are not) — that part must be identical.
        let deterministic = |s: &str| s[s.find("output (").unwrap()..].to_owned();
        assert_eq!(
            deterministic(&calm),
            deterministic(&spilled),
            "a budgeted run must render the identical outcome"
        );
        // The flight recorder shows the spills.
        let mut trace: Vec<&str> = tight.clone();
        trace[0] = "trace";
        let out = run_cli(&trace).unwrap();
        assert!(out.contains("spill:"), "{out}");
        assert!(out.contains("run(s) spilled"), "{out}");
    }

    #[test]
    fn attempt_scores_a_challenge() {
        let out = run_cli(&["attempt", "ecomm-revenue", "full", "batch", "--rows", "400"]).unwrap();
        assert!(out.contains("score:"));
        assert!(out.contains("processing.filter"));
        // Wrong arity errors usefully.
        let err = run_cli(&["attempt", "ecomm-revenue", "full"]).unwrap_err();
        assert!(err.contains("choice points"));
    }

    #[test]
    fn attempt_session_persists_across_invocations() {
        let dir = std::env::temp_dir().join("toreador-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let session = dir.join("session.json");
        let _ = std::fs::remove_file(&session);
        let s = session.to_str().unwrap();
        run_cli(&[
            "attempt",
            "ecomm-revenue",
            "full",
            "batch",
            "--rows",
            "300",
            "--session",
            s,
        ])
        .unwrap();
        let out = run_cli(&[
            "attempt",
            "ecomm-revenue",
            "sample",
            "batch",
            "--rows",
            "300",
            "--session",
            s,
        ])
        .unwrap();
        assert!(out.contains("2 runs used"), "{out}");
        assert!(out.contains("consequences so far"), "{out}");
    }

    #[test]
    fn attempt_store_round_trip_survives_process_boundaries() {
        let dir = std::env::temp_dir().join(format!("toreador-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.to_str().unwrap().to_owned();
        // Each dispatch opens the store fresh, replays the WAL, and commits
        // its attempt — exactly what separate process invocations do.
        run_cli(&[
            "attempt",
            "ecomm-revenue",
            "full",
            "batch",
            "--rows",
            "300",
            "--store",
            &store,
        ])
        .unwrap();
        run_cli(&[
            "attempt",
            "ecomm-revenue",
            "sample",
            "batch",
            "--rows",
            "300",
            "--store",
            &store,
        ])
        .unwrap();
        // The store knows the trainee and both runs.
        let out = run_cli(&["sessions", "--store", &store]).unwrap();
        assert!(out.contains("cli"), "{out}");
        assert!(out.contains("2 runs"), "{out}");
        let out = run_cli(&["history", "cli", "--store", &store]).unwrap();
        assert!(out.contains("run   1"), "{out}");
        assert!(out.contains("run   2"), "{out}");
        assert!(out.contains("/100"), "scores persisted: {out}");
        // Cross-invocation comparison, per-operator trace deltas intact.
        let out = run_cli(&["compare", "1", "2", "--store", &store]).unwrap();
        assert!(out.contains("run 1 vs run 2"), "{out}");
        assert!(out.contains("choice 0: full -> sample"), "{out}");
        assert!(out.contains("operator"), "{out}");
        // Errors name the problem.
        assert!(run_cli(&["compare", "1", "99", "--store", &store]).is_err());
        assert!(run_cli(&["history", "nobody", "--store", &store]).is_err());
        assert!(run_cli(&["sessions"]).unwrap_err().contains("--store"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_and_trace_persist_adhoc_records_into_the_store() {
        let dir = std::env::temp_dir().join(format!("toreador-cli-adhoc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.to_str().unwrap().to_owned();
        let file = write_trace_campaign();
        let f = file.to_str().unwrap();
        let out = run_cli(&[
            "run",
            f,
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "400",
            "--store",
            &store,
        ])
        .unwrap();
        assert!(out.contains("stored as run 1"), "{out}");
        let out = run_cli(&[
            "trace",
            f,
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "400",
            "--store",
            &store,
        ])
        .unwrap();
        assert!(out.contains("stored as run 2"), "{out}");
        // Two invocations, one comparison: operator deltas from the traces.
        let out = run_cli(&["compare", "1", "2", "--store", &store]).unwrap();
        assert!(out.contains("operator"), "{out}");
        // A named trainee is filed separately from the default.
        run_cli(&[
            "run",
            f,
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "200",
            "--store",
            &store,
            "--trainee",
            "ada",
        ])
        .unwrap();
        let out = run_cli(&["history", "ada", "--store", &store]).unwrap();
        assert!(out.contains("run   1"), "{out}");
        assert!(!out.contains("run   2"), "{out}");
        // --session and --store cannot be combined.
        let err = run_cli(&[
            "attempt",
            "ecomm-revenue",
            "full",
            "batch",
            "--store",
            &store,
            "--session",
            "x.json",
        ])
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sessions_and_history_emit_json() {
        let dir = std::env::temp_dir().join(format!("toreador-cli-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.to_str().unwrap().to_owned();
        for design in [&["full", "batch"][..], &["sample", "batch"][..]] {
            run_cli(
                &[
                    &["attempt", "ecomm-revenue"],
                    design,
                    &["--rows", "300", "--store", &store],
                ]
                .concat(),
            )
            .unwrap();
        }
        // sessions --json: a parseable array with the quota headroom.
        let out = run_cli(&["sessions", "--store", &store, "--json"]).unwrap();
        let rows: serde_json::Value = serde_json::from_str(&out).unwrap();
        let rows = rows.as_array().expect("array of trainees");
        assert_eq!(rows.len(), 1);
        let row = rows[0].as_object().expect("object per trainee");
        assert_eq!(row.get("trainee").and_then(|v| v.as_str()), Some("cli"));
        assert_eq!(row.get("runs").and_then(|v| v.as_u64()), Some(2));
        // history --json speaks the wire-protocol history shape.
        let out = run_cli(&["history", "cli", "--store", &store, "--json"]).unwrap();
        let reply: toreador_serve::proto::HistoryReply = serde_json::from_str(&out).unwrap();
        assert_eq!(reply.trainee, "cli");
        assert_eq!(reply.runs.len(), 2);
        assert!(reply.runs.iter().all(|r| r.score.is_some()));
        assert!(reply
            .runs
            .iter()
            .any(|r| r.choices == vec!["sample", "batch"]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_reports_watermarks_late_data_and_backpressure() {
        let out = run_cli(&[
            "stream",
            "--data",
            "generated:fraud-stream",
            "--rows",
            "2000",
            "--seed",
            "11",
            "--key",
            "channel",
            "--sum",
            "amount",
            "--window-ms",
            "2000",
            "--allowed-lateness",
            "500",
            "--late-policy",
            "drop",
            "--buffer",
            "4",
        ])
        .unwrap();
        assert!(out.contains("batch(es) acked"), "{out}");
        assert!(out.contains("watermark:"), "{out}");
        assert!(out.contains("late data [drop]:"), "{out}");
        assert!(out.contains("state (canonical):"), "{out}");
        // The fraud generator plants late rows; under `drop` they are
        // counted, not absorbed.
        assert!(!out.contains("0 dropped"), "{out}");
        // Flag validation names the problem.
        for bad in [
            &["stream", "--data", "generated:fraud-stream"][..],
            &[
                "stream",
                "--data",
                "generated:fraud-stream",
                "--key",
                "channel",
                "--late-policy",
                "sometimes",
            ][..],
            &[
                "stream",
                "--data",
                "generated:fraud-stream",
                "--key",
                "channel",
                "--buffer",
                "0",
            ][..],
            &[
                "stream",
                "--data",
                "generated:fraud-stream",
                "--key",
                "channel",
                "--resume",
            ][..],
            &[
                "stream",
                "--data",
                "generated:fraud-stream",
                "--key",
                "channel",
                "--kill-at-ack",
                "2",
            ][..],
        ] {
            assert!(run_cli(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn stream_json_emits_one_ack_record_per_batch() {
        let out = run_cli(&[
            "stream",
            "--data",
            "generated:fraud-stream",
            "--rows",
            "1500",
            "--key",
            "channel",
            "--window-ms",
            "2000",
            "--json",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() > 2, "{out}");
        let (acks, footer) = lines.split_at(lines.len() - 1);
        let mut last_offset = None;
        for line in acks {
            let a: toreador_dataflow::streaming::AckSummary = serde_json::from_str(line).unwrap();
            assert_eq!(a.offset, last_offset.map_or(0, |o: u64| o + 1), "{line}");
            last_offset = Some(a.offset);
        }
        let footer: serde_json::Value = serde_json::from_str(footer[0]).unwrap();
        let footer = footer.as_object().expect("footer object");
        let acked = footer
            .get("totals")
            .and_then(|t| t.as_object())
            .and_then(|t| t.get("batches_acked"))
            .and_then(|v| v.as_u64());
        assert_eq!(acked, Some(acks.len() as u64));
        let state = footer.get("state").and_then(|v| v.as_str()).unwrap();
        assert!(state.starts_with("{\"counts\""), "{state}");
    }

    #[test]
    fn stream_kill_at_ack_then_resume_matches_the_unkilled_state() {
        let dir = std::env::temp_dir().join(format!("toreador-cli-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.to_str().unwrap().to_owned();
        let base = [
            "stream",
            "--data",
            "generated:fraud-stream",
            "--rows",
            "1500",
            "--key",
            "channel",
            "--sum",
            "amount",
            "--window-ms",
            "2000",
            "--allowed-lateness",
            "500",
        ];
        let state_line = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("state (canonical):"))
                .expect("state line")
                .to_owned()
        };
        // Unkilled oracle (no store): the state the stream should reach.
        let oracle = state_line(&run_cli(&base).unwrap());
        // Kill in-process (halt mode errors instead of exiting) right
        // after offset 2's ack is durable...
        let err = run_cli(
            &[
                &base[..],
                &[
                    "--store",
                    &store,
                    "--kill-at-ack",
                    "2",
                    "--kill-mode",
                    "halt",
                ],
            ]
            .concat(),
        )
        .unwrap_err();
        assert!(err.contains("killed at ack boundary"), "{err}");
        // ...resume replays the WAL and finishes byte-identically.
        let out = run_cli(&[&base[..], &["--store", &store, "--resume"]].concat()).unwrap();
        assert!(out.contains("resumed from the WAL at offset 3"), "{out}");
        assert_eq!(state_line(&out), oracle, "{out}");
        // A fresh (non-resume) run on a used store is refused, not clobbered.
        let err = run_cli(&[&base[..], &["--store", &store]].concat()).unwrap_err();
        assert!(err.contains("--resume") || err.contains("resume"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fleet_validates_flags_and_fails_loud_with_no_daemon() {
        // Nothing listens on port 9: every open is a protocol error, and
        // the health checks make the command fail rather than exit 0.
        let err = run_cli(&[
            "fleet",
            "--addr",
            "127.0.0.1:9",
            "--trainees",
            "1",
            "--attempts",
            "1",
            "--workers",
            "1",
            "--timeout-s",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("FAILED"), "{err}");
        assert!(err.contains("protocol-errors 1"), "{err}");
        let err = run_cli(&["fleet", "--ramp", "4,huge"]).unwrap_err();
        assert!(err.contains("--ramp"), "{err}");
    }

    #[test]
    fn chaos_calm_profile_matches_baseline_at_no_cost() {
        let file = write_trace_campaign();
        let out = run_cli(&[
            "chaos",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "400",
            "--profile",
            "calm",
        ])
        .unwrap();
        assert!(out.contains("IDENTICAL"), "{out}");
        assert!(out.contains("0 retries"), "{out}");
    }

    #[test]
    fn chaos_targeted_crash_is_retried_and_output_survives() {
        let file = write_trace_campaign();
        // Exactly one crash at (stage 0, partition 0, attempt 0): the retry
        // budget absorbs it deterministically, whatever the seed.
        let out = run_cli(&[
            "chaos",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "400",
            "--profile",
            "targeted:0:0:0:crash",
        ])
        .unwrap();
        assert!(out.contains("1 targeted fault(s)"), "{out}");
        assert!(out.contains("IDENTICAL"), "{out}");
        assert!(!out.contains("0 retries"), "{out}");
    }

    #[test]
    fn chaos_with_no_retry_budget_fails_cleanly() {
        let file = write_trace_campaign();
        let out = run_cli(&[
            "chaos",
            file.to_str().unwrap(),
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "400",
            "--profile",
            "targeted:0:0:0:crash",
            "--retries",
            "0",
        ])
        .unwrap();
        assert!(out.contains("failed cleanly"), "{out}");
        assert!(out.contains("stage 0"), "{out}");
    }

    #[test]
    fn chaos_rejects_malformed_profiles() {
        let file = write_trace_campaign();
        let run_profile = |p: &str| {
            run_cli(&[
                "chaos",
                file.to_str().unwrap(),
                "--data",
                "generated:ecommerce-clicks",
                "--profile",
                p,
            ])
        };
        assert!(run_profile("mayhem").unwrap_err().contains("mayhem"));
        assert!(run_profile("targeted:0:0")
            .unwrap_err()
            .contains("targeted"));
        assert!(run_profile("targeted:0:0:0:melt")
            .unwrap_err()
            .contains("melt"));
        assert!(run_profile("targeted:x:0:0:crash")
            .unwrap_err()
            .contains("stage"));
        // Delay kind accepts explicit microseconds.
        let out = run_profile("targeted:0:1:0:delay:500").unwrap();
        assert!(out.contains("1 targeted fault(s)"), "{out}");
        assert!(out.contains("IDENTICAL"), "{out}");
    }

    /// Everything from `output (` down — the deterministic section a
    /// kill/resume comparison may legitimately diff.
    fn output_section(s: &str) -> &str {
        let at = s
            .find("\noutput (")
            .expect("rendered outcome has an output section");
        &s[at..]
    }

    #[test]
    fn run_killed_at_a_boundary_resumes_byte_identical() {
        let dir = std::env::temp_dir().join(format!("toreador-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = dir.to_str().unwrap().to_owned();
        let file = write_trace_campaign();
        let f = file.to_str().unwrap();
        let data = ["--data", "generated:ecommerce-clicks", "--rows", "400"];

        // Unkilled checkpointed baseline fixes the expected output.
        let baseline = run_cli(
            &[
                &["run", f],
                &data[..],
                &["--checkpoint-dir", &ckpt, "--run-id", "base"],
            ]
            .concat(),
        )
        .unwrap();

        // Kill at engine 0's first boundary. Halt mode keeps the death
        // in-process (the CI matrix exercises exit-mode 42 for real).
        let err = run_cli(
            &[
                &["run", f],
                &data[..],
                &[
                    "--checkpoint-dir",
                    &ckpt,
                    "--run-id",
                    "killed",
                    "--kill-at",
                    "0:0",
                    "--kill-mode",
                    "halt",
                ],
            ]
            .concat(),
        )
        .unwrap_err();
        assert!(err.contains("killed at stage boundary"), "{err}");

        // One resume completes the campaign, identical to the baseline.
        let resumed = run_cli(&["resume", "killed", "--checkpoint-dir", &ckpt]).unwrap();
        assert!(resumed.contains("stage(s) restored"), "{resumed}");
        assert_eq!(output_section(&resumed), output_section(&baseline));

        // Resuming the now-complete run restores everything and recomputes
        // nothing — still the same answer.
        let again = run_cli(&["resume", "killed", "--checkpoint-dir", &ckpt]).unwrap();
        assert_eq!(output_section(&again), output_section(&baseline));

        // Guard rails: kill points need a checkpoint, malformed kill specs
        // and unknown run ids name the problem.
        let err = run_cli(&[&["run", f], &data[..], &["--kill-at", "0:0"]].concat()).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");
        let err = run_cli(
            &[
                &["run", f],
                &data[..],
                &["--checkpoint-dir", &ckpt, "--kill-at", "nope"],
            ]
            .concat(),
        )
        .unwrap_err();
        assert!(err.contains("<engine>:<wave>"), "{err}");
        let err = run_cli(&["resume", "ghost", "--checkpoint-dir", &ckpt]).unwrap_err();
        assert!(err.contains("resume spec"), "{err}");
        let err = run_cli(&["resume", "killed"]).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_refuses_stale_checkpoints_end_to_end() {
        let dir = std::env::temp_dir().join(format!("toreador-cli-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = dir.to_str().unwrap().to_owned();
        let file = write_trace_campaign();
        let f = file.to_str().unwrap();
        run_cli(&[
            "run",
            f,
            "--data",
            "generated:ecommerce-clicks",
            "--rows",
            "400",
            "--checkpoint-dir",
            &ckpt,
            "--run-id",
            "victim",
            "--kill-at",
            "0:0",
            "--kill-mode",
            "halt",
        ])
        .unwrap_err();

        // Shrink the input between kill and resume: the checkpoint no
        // longer matches the data, so the resume is a classified refusal —
        // not a silently wrong answer.
        let spec_path = dir.join("victim").join("campaign.json");
        let spec = std::fs::read_to_string(&spec_path).unwrap();
        std::fs::write(&spec_path, spec.replace("\"400\"", "\"300\"")).unwrap();
        let err = run_cli(&["resume", "victim", "--checkpoint-dir", &ckpt]).unwrap_err();
        assert!(err.contains("stale checkpoint"), "{err}");
        assert!(err.contains("inputs"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compare_diffs_a_clean_run_against_a_killed_and_resumed_run() {
        let dir = std::env::temp_dir().join(format!("toreador-cli-rstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = dir.join("ckpt").to_str().unwrap().to_owned();
        let store = dir.join("store").to_str().unwrap().to_owned();
        let file = write_trace_campaign();
        let f = file.to_str().unwrap();
        let data = ["--data", "generated:ecommerce-clicks", "--rows", "400"];

        // Clean run into the store (run 1).
        run_cli(&[&["run", f], &data[..], &["--store", &store]].concat()).unwrap();
        // Killed checkpointed run, then a resume persisted as run 2: the
        // LabSession history now holds clean vs killed-and-resumed.
        run_cli(
            &[
                &["run", f],
                &data[..],
                &[
                    "--checkpoint-dir",
                    &ckpt,
                    "--run-id",
                    "k",
                    "--kill-at",
                    "0:0",
                    "--kill-mode",
                    "halt",
                ],
            ]
            .concat(),
        )
        .unwrap_err();
        let out = run_cli(&["resume", "k", "--checkpoint-dir", &ckpt, "--store", &store]).unwrap();
        assert!(out.contains("stored as run 2"), "{out}");
        // The persisted traces diff like any two runs — restored stages
        // simply contribute no task time.
        let out = run_cli(&["compare", "1", "2", "--store", &store]).unwrap();
        assert!(out.contains("run 1 vs run 2"), "{out}");
        assert!(out.contains("operator"), "{out}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_data_flag_is_a_clear_error() {
        let dir = std::env::temp_dir().join("toreador-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("x.tdl");
        std::fs::write(
            &file,
            "campaign x on d\ngoal filtering predicate=\"a > 1\"\n",
        )
        .unwrap();
        let err = run_cli(&["run", file.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("--data"));
    }
}
