//! `toreador` — the command-line front-end of the reproduction.
//!
//! The original TOREADOR Labs exposed the platform through a web UI; this
//! CLI is the equivalent surface for a terminal: browse the catalogue and
//! the challenge library, compile-and-explain campaigns, run them against
//! generated or on-disk data, and make scored Labs attempts.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::usage());
            std::process::exit(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
