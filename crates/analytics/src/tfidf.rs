//! TF-IDF vectorisation and cosine similarity.

use std::collections::HashMap;

use crate::error::{AnalyticsError, Result};

/// Lowercase, split on non-alphanumerics, drop empty tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect()
}

/// A fitted TF-IDF vocabulary.
#[derive(Debug, Clone)]
pub struct TfIdf {
    /// term -> (vocabulary index, inverse document frequency).
    vocab: HashMap<String, (usize, f64)>,
}

impl TfIdf {
    /// Fit the vocabulary and IDF weights over a corpus.
    ///
    /// `idf = ln((1 + N) / (1 + df)) + 1` (the smoothed variant, so terms in
    /// every document still carry weight).
    pub fn fit(corpus: &[&str]) -> Result<TfIdf> {
        if corpus.is_empty() {
            return Err(AnalyticsError::InvalidInput("empty corpus".to_owned()));
        }
        let n = corpus.len() as f64;
        let mut df: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            let mut seen: Vec<String> = tokenize(doc);
            seen.sort();
            seen.dedup();
            for t in seen {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        let mut terms: Vec<(String, usize)> = df.into_iter().collect();
        terms.sort(); // deterministic vocabulary order
        let vocab = terms
            .into_iter()
            .enumerate()
            .map(|(i, (term, d))| {
                let idf = ((1.0 + n) / (1.0 + d as f64)).ln() + 1.0;
                (term, (i, idf))
            })
            .collect();
        Ok(TfIdf { vocab })
    }

    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Sparse TF-IDF vector (index, weight), L2-normalised. Out-of-vocabulary
    /// terms are ignored.
    pub fn transform(&self, text: &str) -> Vec<(usize, f64)> {
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for t in &tokens {
            *counts.entry(t).or_insert(0) += 1;
        }
        let total = tokens.len() as f64;
        let mut vec: Vec<(usize, f64)> = counts
            .into_iter()
            .filter_map(|(term, c)| {
                self.vocab
                    .get(term)
                    .map(|&(idx, idf)| (idx, (c as f64 / total) * idf))
            })
            .collect();
        vec.sort_by_key(|&(i, _)| i);
        let norm: f64 = vec.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut vec {
                *w /= norm;
            }
        }
        vec
    }
}

/// Cosine similarity of two sparse vectors (assumed index-sorted).
pub fn cosine(a: &[(usize, f64)], b: &[(usize, f64)]) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    for &(_, w) in a {
        na += w * w;
    }
    for &(_, w) in b {
        nb += w * w;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_lowercases_and_splits() {
        assert_eq!(tokenize("Hello, World! 42"), vec!["hello", "world", "42"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn idf_downweights_ubiquitous_terms() {
        let corpus = ["the cat sat", "the dog ran", "the bird flew away"];
        let model = TfIdf::fit(&corpus).unwrap();
        let v = model.transform("the cat");
        // Both terms present; "cat" (df=1) outweighs "the" (df=3).
        assert_eq!(v.len(), 2);
        let weight = |term: &str| {
            let (idx, _) = model.vocab[term];
            v.iter()
                .find(|(i, _)| *i == idx)
                .map(|(_, w)| *w)
                .unwrap_or(0.0)
        };
        assert!(weight("cat") > weight("the"));
    }

    #[test]
    fn vectors_are_normalised() {
        let corpus = ["a b c", "b c d"];
        let model = TfIdf::fit(&corpus).unwrap();
        let v = model.transform("a b b c");
        let norm: f64 = v.iter().map(|(_, w)| w * w).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_ranks_related_documents_higher() {
        let corpus = [
            "energy consumption smart meter forecast",
            "clickstream purchase funnel conversion",
            "meter reading energy grid load",
        ];
        let model = TfIdf::fit(&corpus).unwrap();
        let q = model.transform("energy meter load");
        let sims: Vec<f64> = corpus
            .iter()
            .map(|d| cosine(&q, &model.transform(d)))
            .collect();
        assert!(sims[2] > sims[1], "energy doc beats clickstream doc");
        assert!(sims[0] > sims[1]);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[], &[(0, 1.0)]), 0.0);
        assert_eq!(cosine(&[(0, 1.0)], &[(1, 1.0)]), 0.0);
        assert!((cosine(&[(0, 2.0)], &[(0, 3.0)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oov_terms_ignored() {
        let model = TfIdf::fit(&["alpha beta"]).unwrap();
        let v = model.transform("gamma delta");
        assert!(v.is_empty());
        assert_eq!(model.vocab_size(), 2);
    }

    #[test]
    fn empty_corpus_rejected() {
        assert!(TfIdf::fit(&[]).is_err());
    }
}
