//! CART decision trees (classification, Gini impurity).

use std::collections::HashMap;

use crate::error::{AnalyticsError, Result};
use crate::matrix::Matrix;

/// Hyper-parameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_split: 4,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: String,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted binary decision tree over numeric features and string labels.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    dims: usize,
    depth: usize,
    leaves: usize,
}

fn gini(counts: &HashMap<&str, usize>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut g = 1.0;
    for &c in counts.values() {
        let p = c as f64 / total as f64;
        g -= p * p;
    }
    g
}

fn majority<'a>(labels: impl Iterator<Item = &'a str>) -> String {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(l, _)| l.to_owned())
        .expect("non-empty labels")
}

impl DecisionTree {
    pub fn fit(x: &Matrix, labels: &[String], config: TreeConfig) -> Result<DecisionTree> {
        if x.rows() != labels.len() {
            return Err(AnalyticsError::DimensionMismatch {
                expected: x.rows(),
                found: labels.len(),
            });
        }
        if x.rows() == 0 {
            return Err(AnalyticsError::InvalidInput(
                "empty training set".to_owned(),
            ));
        }
        if config.max_depth == 0 {
            return Err(AnalyticsError::InvalidConfig(
                "max_depth must be >= 1".to_owned(),
            ));
        }
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut depth = 0;
        let mut leaves = 0;
        let root = build(x, labels, &idx, &config, 1, &mut depth, &mut leaves);
        Ok(DecisionTree {
            root,
            dims: x.cols(),
            depth,
            leaves,
        })
    }

    pub fn depth(&self) -> usize {
        self.depth
    }

    pub fn num_leaves(&self) -> usize {
        self.leaves
    }

    pub fn predict_one(&self, features: &[f64]) -> Result<String> {
        if features.len() != self.dims {
            return Err(AnalyticsError::DimensionMismatch {
                expected: self.dims,
                found: features.len(),
            });
        }
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return Ok(label.clone()),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    pub fn predict(&self, x: &Matrix) -> Result<Vec<String>> {
        (0..x.rows()).map(|i| self.predict_one(x.row(i))).collect()
    }
}

fn build(
    x: &Matrix,
    labels: &[String],
    idx: &[usize],
    config: &TreeConfig,
    level: usize,
    depth: &mut usize,
    leaves: &mut usize,
) -> Node {
    *depth = (*depth).max(level);
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for &i in idx {
        *counts.entry(labels[i].as_str()).or_insert(0) += 1;
    }
    let node_gini = gini(&counts, idx.len());
    // Stopping: pure, too small, or too deep.
    if node_gini == 0.0 || idx.len() < config.min_samples_split || level >= config.max_depth {
        *leaves += 1;
        return Node::Leaf {
            label: majority(idx.iter().map(|&i| labels[i].as_str())),
        };
    }
    // Best split: scan every feature, candidate thresholds at midpoints of
    // consecutive distinct sorted values.
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
    for f in 0..x.cols() {
        let mut vals: Vec<(f64, &str)> = idx
            .iter()
            .map(|&i| (x.get(i, f), labels[i].as_str()))
            .collect();
        vals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total = vals.len();
        let mut left_counts: HashMap<&str, usize> = HashMap::new();
        let mut right_counts: HashMap<&str, usize> = HashMap::new();
        for (_, l) in &vals {
            *right_counts.entry(l).or_insert(0) += 1;
        }
        for split_at in 1..total {
            let (v_prev, l_prev) = vals[split_at - 1];
            *left_counts.entry(l_prev).or_insert(0) += 1;
            let rc = right_counts.get_mut(l_prev).expect("label counted");
            *rc -= 1;
            let v_cur = vals[split_at].0;
            if v_cur == v_prev {
                continue; // cannot split between equal values
            }
            let g = (split_at as f64 * gini(&left_counts, split_at)
                + (total - split_at) as f64 * gini(&right_counts, total - split_at))
                / total as f64;
            if best.map_or(true, |(_, _, bg)| g < bg) {
                best = Some((f, (v_prev + v_cur) / 2.0, g));
            }
        }
    }
    // Split on any valid candidate, even at zero gain: XOR-like data has
    // symmetric nodes where no single split reduces Gini yet the children
    // become separable (standard CART behaviour). Termination is still
    // guaranteed — both sides of a midpoint threshold are non-empty and
    // `max_depth` bounds recursion.
    match best {
        Some((feature, threshold, _)) => {
            let (l_idx, r_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| x.get(i, feature) <= threshold);
            let left = build(x, labels, &l_idx, config, level + 1, depth, leaves);
            let right = build(x, labels, &r_idx, config, level + 1, depth, leaves);
            Node::Split {
                feature,
                threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        _ => {
            *leaves += 1;
            Node::Leaf {
                label: majority(idx.iter().map(|&i| labels[i].as_str())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn learns_axis_aligned_rule() {
        // label = "pos" iff x0 > 2.5.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 8.0, 0.0]).collect();
        let labels: Vec<String> = rows
            .iter()
            .map(|r| {
                if r[0] > 2.5 {
                    "pos".to_owned()
                } else {
                    "neg".to_owned()
                }
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let t = DecisionTree::fit(&x, &labels, TreeConfig::default()).unwrap();
        assert_eq!(t.predict_one(&[0.0, 0.0]).unwrap(), "neg");
        assert_eq!(t.predict_one(&[4.9, 0.0]).unwrap(), "pos");
        // A single split suffices.
        assert_eq!(t.num_leaves(), 2);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn learns_xor_with_depth() {
        // XOR of sign(x0), sign(x1) — needs depth >= 2.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            if a.abs() < 0.1 || b.abs() < 0.1 {
                continue;
            }
            rows.push(vec![a, b]);
            labels.push(if (a > 0.0) ^ (b > 0.0) {
                "odd".to_owned()
            } else {
                "even".to_owned()
            });
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let shallow = DecisionTree::fit(
            &x,
            &labels,
            TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
            },
        )
        .unwrap();
        let deep = DecisionTree::fit(
            &x,
            &labels,
            TreeConfig {
                max_depth: 4,
                min_samples_split: 2,
            },
        )
        .unwrap();
        let acc = |t: &DecisionTree| {
            let p = t.predict(&x).unwrap();
            p.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64
        };
        assert!(acc(&shallow) < 0.8, "depth-1 cannot solve XOR");
        assert!(acc(&deep) > 0.95, "depth-4 solves XOR, got {}", acc(&deep));
    }

    #[test]
    fn pure_node_becomes_leaf_immediately() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let labels = vec!["a".to_owned(); 3];
        let t = DecisionTree::fit(&x, &labels, TreeConfig::default()).unwrap();
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn identical_features_different_labels_yield_majority_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let labels = vec!["a".to_owned(), "a".to_owned(), "b".to_owned()];
        let t = DecisionTree::fit(&x, &labels, TreeConfig::default()).unwrap();
        assert_eq!(t.predict_one(&[1.0]).unwrap(), "a");
    }

    #[test]
    fn validates_inputs() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(DecisionTree::fit(&x, &[], TreeConfig::default()).is_err());
        assert!(DecisionTree::fit(
            &x,
            &["a".to_owned()],
            TreeConfig {
                max_depth: 0,
                min_samples_split: 2
            }
        )
        .is_err());
        let t = DecisionTree::fit(&x, &["a".to_owned()], TreeConfig::default()).unwrap();
        assert!(t.predict_one(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn min_samples_split_limits_growth() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<String> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    "a".to_owned()
                } else {
                    "b".to_owned()
                }
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let unconstrained = DecisionTree::fit(
            &x,
            &labels,
            TreeConfig {
                max_depth: 20,
                min_samples_split: 2,
            },
        )
        .unwrap();
        let constrained = DecisionTree::fit(
            &x,
            &labels,
            TreeConfig {
                max_depth: 20,
                min_samples_split: 15,
            },
        )
        .unwrap();
        assert!(constrained.num_leaves() < unconstrained.num_leaves());
    }
}
