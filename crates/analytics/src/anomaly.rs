//! Anomaly detection: global z-score and rolling-window detectors.

use toreador_data::stats::Welford;

use crate::error::{AnalyticsError, Result};

/// A detected anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    pub index: usize,
    pub value: f64,
    /// How many standard deviations from the expectation.
    pub score: f64,
}

/// Flag points more than `threshold` standard deviations from the global
/// mean. Suited to stationary series.
pub fn zscore_detect(series: &[f64], threshold: f64) -> Result<Vec<Anomaly>> {
    if threshold <= 0.0 {
        return Err(AnalyticsError::InvalidConfig(
            "threshold must be positive".to_owned(),
        ));
    }
    if series.len() < 2 {
        return Ok(Vec::new());
    }
    let mut acc = Welford::new();
    for &x in series {
        acc.push(x);
    }
    let sd = acc.variance().sqrt();
    if sd == 0.0 {
        return Ok(Vec::new()); // constant series has no outliers
    }
    let mean = acc.mean();
    Ok(series
        .iter()
        .enumerate()
        .filter_map(|(i, &x)| {
            let score = (x - mean) / sd;
            (score.abs() > threshold).then_some(Anomaly {
                index: i,
                value: x,
                score,
            })
        })
        .collect())
}

/// Flag points more than `threshold` standard deviations from the mean of
/// the preceding `window` points. Suited to series with trend/seasonality
/// (the smart-meter challenge) — the global detector would flag the whole
/// evening peak, the rolling one only genuine spikes.
pub fn rolling_detect(series: &[f64], window: usize, threshold: f64) -> Result<Vec<Anomaly>> {
    if window < 2 {
        return Err(AnalyticsError::InvalidConfig(
            "window must be >= 2".to_owned(),
        ));
    }
    if threshold <= 0.0 {
        return Err(AnalyticsError::InvalidConfig(
            "threshold must be positive".to_owned(),
        ));
    }
    let mut out = Vec::new();
    for i in window..series.len() {
        let mut acc = Welford::new();
        for &x in &series[i - window..i] {
            acc.push(x);
        }
        let sd = acc.variance().sqrt();
        if sd == 0.0 {
            // A departure from a perfectly flat window is anomalous by any
            // threshold; score it as infinite-like but finite.
            if series[i] != acc.mean() {
                out.push(Anomaly {
                    index: i,
                    value: series[i],
                    score: f64::MAX,
                });
            }
            continue;
        }
        let score = (series[i] - acc.mean()) / sd;
        if score.abs() > threshold {
            out.push(Anomaly {
                index: i,
                value: series[i],
                score,
            });
        }
    }
    Ok(out)
}

/// Detection quality against known anomaly positions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionQuality {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
}

impl DetectionQuality {
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score detections against ground truth indices.
pub fn evaluate_detection(detected: &[Anomaly], truth: &[usize]) -> DetectionQuality {
    let detected_idx: std::collections::HashSet<usize> = detected.iter().map(|a| a.index).collect();
    let truth_idx: std::collections::HashSet<usize> = truth.iter().copied().collect();
    DetectionQuality {
        true_positives: detected_idx.intersection(&truth_idx).count(),
        false_positives: detected_idx.difference(&truth_idx).count(),
        false_negatives: truth_idx.difference(&detected_idx).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_finds_planted_spike() {
        let mut series = vec![1.0; 100];
        series[40] = 50.0;
        let found = zscore_detect(&series, 3.0).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].index, 40);
        assert!(found[0].score > 3.0);
    }

    #[test]
    fn zscore_constant_series_has_no_anomalies() {
        assert!(zscore_detect(&[5.0; 50], 2.0).unwrap().is_empty());
        assert!(zscore_detect(&[1.0], 2.0).unwrap().is_empty());
    }

    #[test]
    fn zscore_threshold_monotone() {
        let series: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64 / 10.0).collect();
        let loose = zscore_detect(&series, 1.0).unwrap();
        let strict = zscore_detect(&series, 2.5).unwrap();
        assert!(loose.len() >= strict.len());
        assert!(zscore_detect(&series, 0.0).is_err());
    }

    #[test]
    fn rolling_tolerates_trend_that_fools_global() {
        // Steep ramp + one local spike. The global detector flags ramp ends;
        // the rolling detector flags only the spike.
        let mut series: Vec<f64> = (0..300).map(|i| i as f64).collect();
        series[150] = 400.0;
        let rolling = rolling_detect(&series, 20, 4.0).unwrap();
        assert!(rolling.iter().any(|a| a.index == 150), "spike found");
        // The point after the spike may also trip (window contaminated);
        // everything else must be clean.
        for a in &rolling {
            assert!(
                (150..=151).contains(&a.index),
                "unexpected anomaly at {}",
                a.index
            );
        }
        let global = zscore_detect(&series, 4.0).unwrap();
        assert!(
            !global.iter().any(|a| a.index == 150),
            "global misses in-trend spike"
        );
    }

    #[test]
    fn rolling_flat_window_flags_any_departure() {
        let mut series = vec![2.0; 50];
        series[30] = 2.1;
        let found = rolling_detect(&series, 10, 3.0).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].index, 30);
    }

    #[test]
    fn rolling_validates_config() {
        assert!(rolling_detect(&[1.0, 2.0], 1, 2.0).is_err());
        assert!(rolling_detect(&[1.0, 2.0], 5, 0.0).is_err());
    }

    #[test]
    fn detection_quality_metrics() {
        let detected = vec![
            Anomaly {
                index: 3,
                value: 0.0,
                score: 5.0,
            },
            Anomaly {
                index: 9,
                value: 0.0,
                score: 4.0,
            },
        ];
        let q = evaluate_detection(&detected, &[3, 7]);
        assert_eq!(q.true_positives, 1);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, 1);
        assert_eq!(q.precision(), 0.5);
        assert_eq!(q.recall(), 0.5);
        assert_eq!(q.f1(), 0.5);
        let empty = evaluate_detection(&[], &[]);
        assert_eq!(empty.f1(), 0.0);
    }
}
