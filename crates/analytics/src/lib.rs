//! # toreador-analytics
//!
//! The analytics/ML service implementations behind the TOREADOR service
//! catalogue — the reproduction's substitute for the MLlib-style services
//! the original platform composed into pipelines (DESIGN.md §2).
//!
//! Modules map to catalogue service families:
//!
//! * [`prep`] — Data Preparation: scaling, imputation, one-hot encoding,
//!   train/test splitting (fit/apply split throughout);
//! * [`kmeans`] — clustering (k-means++ / Lloyd);
//! * [`regression`] — linear (ridge normal equations) and logistic (GD);
//! * [`naive_bayes`] — Gaussian naive Bayes;
//! * [`tree`] — CART decision trees (Gini);
//! * [`apriori`] — frequent itemsets + association rules;
//! * [`tfidf`] — text vectorisation + cosine similarity;
//! * [`anomaly`] — global and rolling z-score detectors;
//! * [`forecast`] — seasonal-naive and exponential-smoothing forecasters;
//! * [`evaluate`] — accuracy / confusion / F1 / RMSE / R² / silhouette;
//! * [`matrix`] — dense matrices, a pivoting solver, and feature extraction
//!   from [`toreador_data::table::Table`]s.
//!
//! ## Example
//!
//! ```
//! use toreador_analytics::kmeans::{KMeans, KMeansConfig};
//! use toreador_analytics::matrix::Matrix;
//!
//! let data = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.2, 0.1], vec![9.0, 9.0], vec![9.1, 8.9],
//! ]).unwrap();
//! let model = KMeans::fit(&data, KMeansConfig { k: 2, ..Default::default() }).unwrap();
//! assert_ne!(model.predict(&[0.0, 0.1]).unwrap(), model.predict(&[9.0, 9.0]).unwrap());
//! ```

pub mod anomaly;
pub mod apriori;
pub mod error;
pub mod evaluate;
pub mod forecast;
pub mod kmeans;
pub mod matrix;
pub mod naive_bayes;
pub mod prep;
pub mod regression;
pub mod tfidf;
pub mod tree;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::anomaly::{rolling_detect, zscore_detect, Anomaly};
    pub use crate::apriori::{association_rules, frequent_itemsets, Itemset, Rule};
    pub use crate::error::{AnalyticsError, Result as AnalyticsResult};
    pub use crate::evaluate::{accuracy, mae, r2, rmse, silhouette, ConfusionMatrix};
    pub use crate::forecast::{backtest_rmse, seasonal_naive, Holt, Ses};
    pub use crate::kmeans::{KMeans, KMeansConfig};
    pub use crate::matrix::{features, labels, target, Matrix};
    pub use crate::naive_bayes::GaussianNb;
    pub use crate::prep::{train_test_split, ImputeKind, Imputer, OneHot, Scaler, ScalingKind};
    pub use crate::regression::{LinearRegression, LogisticConfig, LogisticRegression};
    pub use crate::tfidf::{cosine, tokenize, TfIdf};
    pub use crate::tree::{DecisionTree, TreeConfig};
}
