//! Time-series forecasting: seasonal-naive and exponential smoothing.
//!
//! The smart-energy vertical's "forecast tomorrow's load" requirement has
//! two natural baselines besides regression-on-covariates: repeat the last
//! season (seasonal-naive) and exponentially-weighted level tracking
//! (simple and Holt's double smoothing). All are one-pass and deterministic.

use crate::error::{AnalyticsError, Result};

/// Forecast horizon values by repeating the last observed season.
///
/// `period` is the season length in samples (e.g. 96 for a day of
/// 15-minute readings).
pub fn seasonal_naive(series: &[f64], period: usize, horizon: usize) -> Result<Vec<f64>> {
    if period == 0 {
        return Err(AnalyticsError::InvalidConfig(
            "period must be >= 1".to_owned(),
        ));
    }
    if series.len() < period {
        return Err(AnalyticsError::InvalidInput(format!(
            "need at least one full season ({period}), got {}",
            series.len()
        )));
    }
    let last_season = &series[series.len() - period..];
    Ok((0..horizon).map(|h| last_season[h % period]).collect())
}

/// Simple exponential smoothing: fitted level after the last observation,
/// repeated over the horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Ses {
    pub alpha: f64,
    pub level: f64,
    /// One-step-ahead in-sample errors (for evaluation).
    pub fitted_errors: Vec<f64>,
}

impl Ses {
    /// Fit with smoothing factor `alpha` in (0, 1].
    pub fn fit(series: &[f64], alpha: f64) -> Result<Ses> {
        if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
            return Err(AnalyticsError::InvalidConfig(format!(
                "alpha {alpha} must be in (0, 1]"
            )));
        }
        let first = *series
            .first()
            .ok_or_else(|| AnalyticsError::InvalidInput("empty series".to_owned()))?;
        let mut level = first;
        let mut fitted_errors = Vec::with_capacity(series.len().saturating_sub(1));
        for &x in &series[1..] {
            fitted_errors.push(x - level);
            level = alpha * x + (1.0 - alpha) * level;
        }
        Ok(Ses {
            alpha,
            level,
            fitted_errors,
        })
    }

    /// Flat forecast at the fitted level.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        vec![self.level; horizon]
    }

    /// In-sample one-step RMSE.
    pub fn rmse(&self) -> f64 {
        if self.fitted_errors.is_empty() {
            return 0.0;
        }
        (self.fitted_errors.iter().map(|e| e * e).sum::<f64>() / self.fitted_errors.len() as f64)
            .sqrt()
    }
}

/// Holt's double exponential smoothing (level + trend).
#[derive(Debug, Clone, PartialEq)]
pub struct Holt {
    pub alpha: f64,
    pub beta: f64,
    pub level: f64,
    pub trend: f64,
}

impl Holt {
    /// Fit with level factor `alpha` and trend factor `beta`, both (0, 1].
    pub fn fit(series: &[f64], alpha: f64, beta: f64) -> Result<Holt> {
        for (name, v) in [("alpha", alpha), ("beta", beta)] {
            if !(0.0..=1.0).contains(&v) || v == 0.0 {
                return Err(AnalyticsError::InvalidConfig(format!(
                    "{name} {v} must be in (0, 1]"
                )));
            }
        }
        if series.len() < 2 {
            return Err(AnalyticsError::InvalidInput(
                "Holt smoothing needs >= 2 observations".to_owned(),
            ));
        }
        let mut level = series[0];
        let mut trend = series[1] - series[0];
        for &x in &series[1..] {
            let prev_level = level;
            level = alpha * x + (1.0 - alpha) * (level + trend);
            trend = beta * (level - prev_level) + (1.0 - beta) * trend;
        }
        Ok(Holt {
            alpha,
            beta,
            level,
            trend,
        })
    }

    /// Linear forecast from the fitted level and trend.
    pub fn forecast(&self, horizon: usize) -> Vec<f64> {
        (1..=horizon)
            .map(|h| self.level + h as f64 * self.trend)
            .collect()
    }
}

/// Hold out the last `horizon` points, forecast them, and return the RMSE
/// of the chosen forecaster (a convenience for the energy challenge).
pub fn backtest_rmse(
    series: &[f64],
    horizon: usize,
    forecast: impl Fn(&[f64], usize) -> Result<Vec<f64>>,
) -> Result<f64> {
    if horizon == 0 || series.len() <= horizon {
        return Err(AnalyticsError::InvalidInput(format!(
            "cannot hold out {horizon} of {} points",
            series.len()
        )));
    }
    let (train, test) = series.split_at(series.len() - horizon);
    let preds = forecast(train, horizon)?;
    if preds.len() != horizon {
        return Err(AnalyticsError::InvalidInput(format!(
            "forecaster returned {} points for horizon {horizon}",
            preds.len()
        )));
    }
    crate::evaluate::rmse(&preds, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_wave(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 / period as f64 * 2.0 * std::f64::consts::PI).sin())
            .collect()
    }

    #[test]
    fn seasonal_naive_repeats_the_last_season() {
        let series = vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        let f = seasonal_naive(&series, 3, 7).unwrap();
        assert_eq!(f, vec![10.0, 20.0, 30.0, 10.0, 20.0, 30.0, 10.0]);
        assert!(seasonal_naive(&series, 0, 3).is_err());
        assert!(seasonal_naive(&[1.0], 3, 3).is_err());
    }

    #[test]
    fn seasonal_naive_is_exact_on_perfectly_periodic_data() {
        let series = sine_wave(200, 20);
        let err = backtest_rmse(&series, 20, |train, h| seasonal_naive(train, 20, h)).unwrap();
        assert!(err < 1e-9, "periodic data forecasts exactly, rmse {err}");
    }

    #[test]
    fn ses_converges_to_constant_level() {
        let series = vec![5.0; 50];
        let m = Ses::fit(&series, 0.3).unwrap();
        assert!((m.level - 5.0).abs() < 1e-12);
        assert_eq!(m.forecast(3), vec![5.0; 3]);
        assert_eq!(m.rmse(), 0.0);
    }

    #[test]
    fn ses_tracks_level_shifts_faster_with_higher_alpha() {
        let mut series = vec![0.0; 30];
        series.extend(vec![10.0; 30]);
        let slow = Ses::fit(&series, 0.05).unwrap();
        let fast = Ses::fit(&series, 0.8).unwrap();
        assert!(
            fast.level > slow.level,
            "fast {} vs slow {}",
            fast.level,
            slow.level
        );
        assert!((fast.level - 10.0).abs() < 0.1);
    }

    #[test]
    fn ses_validates_inputs() {
        assert!(Ses::fit(&[], 0.5).is_err());
        assert!(Ses::fit(&[1.0], 0.0).is_err());
        assert!(Ses::fit(&[1.0], 1.5).is_err());
        // Single observation: level = that observation.
        let m = Ses::fit(&[7.0], 0.5).unwrap();
        assert_eq!(m.level, 7.0);
    }

    #[test]
    fn holt_extrapolates_linear_trends() {
        let series: Vec<f64> = (0..60).map(|i| 3.0 + 2.0 * i as f64).collect();
        let m = Holt::fit(&series, 0.5, 0.3).unwrap();
        let f = m.forecast(5);
        for (h, v) in f.iter().enumerate() {
            let expected = 3.0 + 2.0 * (60 + h) as f64;
            assert!((v - expected).abs() < 0.5, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn holt_beats_ses_on_trending_data() {
        let series: Vec<f64> = (0..80).map(|i| i as f64 * 1.5).collect();
        let holt_err = backtest_rmse(&series, 10, |train, h| {
            Ok(Holt::fit(train, 0.5, 0.3)?.forecast(h))
        })
        .unwrap();
        let ses_err = backtest_rmse(
            &series,
            10,
            |train, h| Ok(Ses::fit(train, 0.5)?.forecast(h)),
        )
        .unwrap();
        assert!(
            holt_err < ses_err / 2.0,
            "holt {holt_err} should beat ses {ses_err} on a trend"
        );
    }

    #[test]
    fn holt_validates_inputs() {
        assert!(Holt::fit(&[1.0], 0.5, 0.5).is_err());
        assert!(Holt::fit(&[1.0, 2.0], 0.0, 0.5).is_err());
        assert!(Holt::fit(&[1.0, 2.0], 0.5, 2.0).is_err());
    }

    #[test]
    fn backtest_guards_degenerate_holdouts() {
        assert!(backtest_rmse(&[1.0, 2.0], 2, |t, h| seasonal_naive(t, 1, h)).is_err());
        assert!(backtest_rmse(&[1.0, 2.0, 3.0], 0, |t, h| seasonal_naive(t, 1, h)).is_err());
    }
}
