//! K-means clustering with k-means++ initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{AnalyticsError, Result};
use crate::matrix::Matrix;

/// Hyper-parameters for [`KMeans::fit`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    pub k: usize,
    pub max_iters: usize,
    /// Stop when total centroid movement falls below this threshold.
    pub tolerance: f64,
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 3,
            max_iters: 100,
            tolerance: 1e-6,
            seed: 0,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their assigned centroid.
    inertia: f64,
    iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fit on the rows of `data`.
    pub fn fit(data: &Matrix, config: KMeansConfig) -> Result<KMeans> {
        let n = data.rows();
        let d = data.cols();
        if config.k == 0 {
            return Err(AnalyticsError::InvalidConfig("k must be >= 1".to_owned()));
        }
        if n < config.k {
            return Err(AnalyticsError::InvalidInput(format!(
                "{n} points cannot form {} clusters",
                config.k
            )));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        // k-means++ seeding: first centroid uniform, the rest proportional
        // to squared distance from the nearest chosen centroid.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.k);
        centroids.push(data.row(rng.gen_range(0..n)).to_vec());
        let mut dists: Vec<f64> = (0..n)
            .map(|i| sq_dist(data.row(i), &centroids[0]))
            .collect();
        while centroids.len() < config.k {
            let total: f64 = dists.iter().sum();
            let chosen = if total <= 0.0 {
                rng.gen_range(0..n) // all points identical: pick any
            } else {
                let mut u = rng.gen_range(0.0..total);
                let mut pick = n - 1;
                for (i, &w) in dists.iter().enumerate() {
                    if u < w {
                        pick = i;
                        break;
                    }
                    u -= w;
                }
                pick
            };
            let c = data.row(chosen).to_vec();
            for (i, d) in dists.iter_mut().enumerate() {
                *d = d.min(sq_dist(data.row(i), &c));
            }
            centroids.push(c);
        }

        // Lloyd iterations.
        let mut assignment = vec![0usize; n];
        let mut iterations = 0;
        for iter in 0..config.max_iters {
            iterations = iter + 1;
            // Assign.
            for (i, a) in assignment.iter_mut().enumerate() {
                let row = data.row(i);
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let dist = sq_dist(row, centroid);
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                *a = best;
            }
            // Update.
            let mut sums = vec![vec![0.0; d]; config.k];
            let mut counts = vec![0usize; config.k];
            for (i, &a) in assignment.iter().enumerate() {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(data.row(i)) {
                    *s += x;
                }
            }
            let mut movement = 0.0;
            for (c, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
                if count == 0 {
                    // Empty cluster: re-seed at the farthest point.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            sq_dist(data.row(a), &centroids[assignment[a]])
                                .total_cmp(&sq_dist(data.row(b), &centroids[assignment[b]]))
                        })
                        .expect("n >= k >= 1");
                    movement += sq_dist(&centroids[c], data.row(far));
                    centroids[c] = data.row(far).to_vec();
                    continue;
                }
                let new: Vec<f64> = sum.iter().map(|s| s / count as f64).collect();
                movement += sq_dist(&centroids[c], &new);
                centroids[c] = new;
            }
            if movement < config.tolerance {
                break;
            }
        }
        let inertia = (0..n)
            .map(|i| sq_dist(data.row(i), &centroids[assignment[i]]))
            .sum();
        Ok(KMeans {
            centroids,
            inertia,
            iterations,
        })
    }

    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Cluster index of a point.
    pub fn predict(&self, point: &[f64]) -> Result<usize> {
        let d = self.centroids[0].len();
        if point.len() != d {
            return Err(AnalyticsError::DimensionMismatch {
                expected: d,
                found: point.len(),
            });
        }
        Ok(self
            .centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| sq_dist(point, a).total_cmp(&sq_dist(point, b)))
            .map(|(i, _)| i)
            .expect("k >= 1"))
    }

    /// Cluster index for every row of `data`.
    pub fn predict_all(&self, data: &Matrix) -> Result<Vec<usize>> {
        (0..data.rows())
            .map(|i| self.predict(data.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for _ in 0..30 {
                rows.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs();
        let model = KMeans::fit(
            &data,
            KMeansConfig {
                k: 3,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(model.k(), 3);
        // Each blob must map to a single cluster, and distinct blobs to
        // distinct clusters.
        let assign = model.predict_all(&data).unwrap();
        let c0 = assign[0];
        let c1 = assign[30];
        let c2 = assign[60];
        assert!(assign[..30].iter().all(|&a| a == c0));
        assert!(assign[30..60].iter().all(|&a| a == c1));
        assert!(assign[60..].iter().all(|&a| a == c2));
        assert!(c0 != c1 && c1 != c2 && c0 != c2);
        // Tight clusters: inertia far below the k=1 inertia.
        let k1 = KMeans::fit(
            &data,
            KMeansConfig {
                k: 1,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(model.inertia() < k1.inertia() / 10.0);
    }

    #[test]
    fn inertia_never_increases_with_k() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let m = KMeans::fit(
                &data,
                KMeansConfig {
                    k,
                    seed: 3,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                m.inertia() <= prev + 1e-9,
                "k={k}: {} > {prev}",
                m.inertia()
            );
            prev = m.inertia();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let data = blobs();
        let a = KMeans::fit(
            &data,
            KMeansConfig {
                k: 3,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let b = KMeans::fit(
            &data,
            KMeansConfig {
                k: 3,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn rejects_bad_configs() {
        let data = blobs();
        assert!(KMeans::fit(
            &data,
            KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &data,
            KMeansConfig {
                k: 1000,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn identical_points_are_handled() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 10]).unwrap();
        let m = KMeans::fit(
            &data,
            KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(m.inertia(), 0.0);
    }

    #[test]
    fn predict_validates_dimensions() {
        let data = blobs();
        let m = KMeans::fit(
            &data,
            KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.predict(&[1.0]).is_err());
        assert!(m.predict(&[0.0, 0.0]).is_ok());
    }
}
