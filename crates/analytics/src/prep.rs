//! Data preparation transforms — the TOREADOR "Data Preparation" area.
//!
//! Every transform follows a fit/apply split so the Labs can apply the same
//! preparation (fitted on training data) to held-out data, and so pipelines
//! can serialise their fitted state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use toreador_data::column::Column;
use toreador_data::schema::Field;
use toreador_data::stats::summarize;
use toreador_data::table::Table;
use toreador_data::value::{DataType, Value};

use crate::error::{AnalyticsError, Result};

/// Normalisation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingKind {
    /// `(x - mean) / std_dev`.
    ZScore,
    /// `(x - min) / (max - min)` into [0, 1].
    MinMax,
}

/// A fitted per-column scaler.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    kind: ScalingKind,
    /// (column, offset, scale) triples: output = (x - offset) / scale.
    params: Vec<(String, f64, f64)>,
}

impl Scaler {
    /// Fit on the named numeric columns of `table`.
    pub fn fit(table: &Table, columns: &[&str], kind: ScalingKind) -> Result<Scaler> {
        let mut params = Vec::with_capacity(columns.len());
        for &c in columns {
            let s = summarize(table.column(c)?)?;
            let (offset, scale) = match kind {
                ScalingKind::ZScore => {
                    let sd = s.std_dev();
                    (s.mean, if sd == 0.0 { 1.0 } else { sd })
                }
                ScalingKind::MinMax => {
                    let span = s.max - s.min;
                    (s.min, if span == 0.0 { 1.0 } else { span })
                }
            };
            params.push((c.to_owned(), offset, scale));
        }
        Ok(Scaler { kind, params })
    }

    pub fn kind(&self) -> ScalingKind {
        self.kind
    }

    /// Replace each fitted column with its scaled version (type Float).
    /// Nulls pass through.
    pub fn apply(&self, table: &Table) -> Result<Table> {
        let mut out = table.clone();
        for (name, offset, scale) in &self.params {
            let col = out.column(name)?;
            let mut scaled = Column::with_capacity(DataType::Float, col.len());
            for v in col.iter_values() {
                if v.is_null() {
                    scaled.push_null();
                } else {
                    scaled.push(&Value::Float((v.as_float()? - offset) / scale))?;
                }
            }
            let nullable = out.schema().field(name)?.nullable;
            let tmp_name = format!("__scaled_{name}");
            let with_new = out.with_column(
                Field {
                    name: tmp_name.clone(),
                    data_type: DataType::Float,
                    nullable,
                },
                scaled,
            )?;
            let without_old = with_new.without_column(name)?;
            // Rename back by projecting in original column order.
            let names: Vec<String> = table
                .schema()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut builder_cols = Vec::with_capacity(names.len());
            let mut fields = Vec::with_capacity(names.len());
            for n in &names {
                if n == name {
                    builder_cols.push(without_old.column(&tmp_name)?.clone());
                    fields.push(Field {
                        name: name.clone(),
                        data_type: DataType::Float,
                        nullable,
                    });
                } else {
                    builder_cols.push(without_old.column(n)?.clone());
                    fields.push(without_old.schema().field(n)?.clone());
                }
            }
            out = Table::new(toreador_data::schema::Schema::new(fields)?, builder_cols)?;
        }
        Ok(out)
    }
}

/// Imputation strategies for missing values.
#[derive(Debug, Clone, PartialEq)]
pub enum ImputeKind {
    Mean,
    Median,
    Constant(Value),
}

/// A fitted per-column imputer.
#[derive(Debug, Clone, PartialEq)]
pub struct Imputer {
    fills: Vec<(String, Value)>,
}

impl Imputer {
    /// Fit fills for the named columns.
    pub fn fit(table: &Table, columns: &[&str], kind: ImputeKind) -> Result<Imputer> {
        let mut fills = Vec::with_capacity(columns.len());
        for &c in columns {
            let col = table.column(c)?;
            let fill = match &kind {
                ImputeKind::Constant(v) => v.clone(),
                ImputeKind::Mean => {
                    let s = summarize(col)?;
                    Value::Float(s.mean)
                }
                ImputeKind::Median => {
                    let xs: Vec<f64> = col
                        .iter_values()
                        .filter(|v| !v.is_null())
                        .map(|v| v.as_float())
                        .collect::<std::result::Result<_, _>>()?;
                    if xs.is_empty() {
                        return Err(AnalyticsError::InvalidInput(format!(
                            "column {c:?} is all null; cannot fit median"
                        )));
                    }
                    Value::Float(toreador_data::stats::quantile(&xs, 0.5)?)
                }
            };
            fills.push((c.to_owned(), fill));
        }
        Ok(Imputer { fills })
    }

    /// Replace nulls with the fitted fill values.
    pub fn apply(&self, table: &Table) -> Result<Table> {
        let mut columns: Vec<Column> = Vec::with_capacity(table.num_columns());
        let mut fields = Vec::with_capacity(table.num_columns());
        for (field, col) in table.schema().fields().iter().zip(table.columns()) {
            match self.fills.iter().find(|(n, _)| n == &field.name) {
                None => {
                    columns.push(col.clone());
                    fields.push(field.clone());
                }
                Some((_, fill)) => {
                    // Imputed numeric columns become Float (mean/median are
                    // fractional); constant fills keep the fill's type if it
                    // matches, else coerce.
                    let target_ty = match fill {
                        Value::Float(_) => DataType::Float,
                        _ => field.data_type,
                    };
                    let mut new_col = Column::with_capacity(target_ty, col.len());
                    for v in col.iter_values() {
                        let v = if v.is_null() { fill.clone() } else { v };
                        new_col.push(&v.coerce(target_ty)?)?;
                    }
                    fields.push(Field {
                        name: field.name.clone(),
                        data_type: target_ty,
                        nullable: false,
                    });
                    columns.push(new_col);
                }
            }
        }
        Ok(Table::new(
            toreador_data::schema::Schema::new(fields)?,
            columns,
        )?)
    }
}

/// One-hot encode a categorical (string) column: the column is replaced by
/// one `name=value` Bool column per distinct fitted value.
#[derive(Debug, Clone, PartialEq)]
pub struct OneHot {
    column: String,
    categories: Vec<String>,
}

impl OneHot {
    pub fn fit(table: &Table, column: &str) -> Result<OneHot> {
        let col = table.column(column)?;
        let mut categories: Vec<String> = Vec::new();
        for v in col.iter_values() {
            if v.is_null() {
                continue;
            }
            let s = v.as_str()?.to_owned();
            if !categories.contains(&s) {
                categories.push(s);
            }
        }
        categories.sort();
        if categories.is_empty() {
            return Err(AnalyticsError::InvalidInput(format!(
                "column {column:?} has no non-null values to encode"
            )));
        }
        Ok(OneHot {
            column: column.to_owned(),
            categories,
        })
    }

    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Apply: unseen categories encode as all-false.
    pub fn apply(&self, table: &Table) -> Result<Table> {
        let col = table.column(&self.column)?.clone();
        let mut out = table.without_column(&self.column)?;
        for cat in &self.categories {
            let mut flags = Column::with_capacity(DataType::Bool, col.len());
            for v in col.iter_values() {
                let hit = !v.is_null() && v.as_str()? == cat;
                flags.push(&Value::Bool(hit))?;
            }
            out = out.with_column(
                Field::required(format!("{}={}", self.column, cat), DataType::Bool),
                flags,
            )?;
        }
        Ok(out)
    }
}

/// Deterministic shuffled train/test split.
pub fn train_test_split(table: &Table, test_fraction: f64, seed: u64) -> Result<(Table, Table)> {
    if !(0.0..=1.0).contains(&test_fraction) {
        return Err(AnalyticsError::InvalidConfig(format!(
            "test fraction {test_fraction} outside [0,1]"
        )));
    }
    let n = table.num_rows();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
    let test_n = ((n as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = indices.split_at(test_n.min(n));
    Ok((table.take(train_idx)?, table.take(test_idx)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::Schema;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("cat", DataType::Str),
            Field::new("y", DataType::Int),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec![Value::Float(1.0), Value::Str("a".into()), Value::Int(10)],
                vec![Value::Float(2.0), Value::Str("b".into()), Value::Int(20)],
                vec![Value::Float(3.0), Value::Str("a".into()), Value::Null],
                vec![Value::Float(4.0), Value::Str("c".into()), Value::Int(40)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn zscore_scaling_centres_and_unit_scales() {
        let t = table();
        let s = Scaler::fit(&t, &["x"], ScalingKind::ZScore).unwrap();
        let out = s.apply(&t).unwrap();
        let c = out.column("x").unwrap();
        let sum: f64 = c.iter_values().map(|v| v.as_float().unwrap()).sum();
        assert!(sum.abs() < 1e-12, "centred");
        let stats = summarize(c).unwrap();
        assert!((stats.std_dev() - 1.0).abs() < 1e-12, "unit variance");
        // Column order preserved.
        assert_eq!(out.schema().names(), vec!["x", "cat", "y"]);
    }

    #[test]
    fn minmax_scaling_hits_bounds() {
        let t = table();
        let s = Scaler::fit(&t, &["x"], ScalingKind::MinMax).unwrap();
        let out = s.apply(&t).unwrap();
        let c = out.column("x").unwrap();
        assert_eq!(c.min(), Value::Float(0.0));
        assert_eq!(c.max(), Value::Float(1.0));
    }

    #[test]
    fn scaler_constant_column_is_safe() {
        let schema = Schema::new(vec![Field::new("k", DataType::Float)]).unwrap();
        let t = Table::from_rows(schema, vec![vec![Value::Float(5.0)]; 3]).unwrap();
        let s = Scaler::fit(&t, &["k"], ScalingKind::ZScore).unwrap();
        let out = s.apply(&t).unwrap();
        assert_eq!(
            out.column("k").unwrap().value(0).unwrap(),
            Value::Float(0.0)
        );
    }

    #[test]
    fn scaler_transfers_to_new_data() {
        let t = table();
        let s = Scaler::fit(&t, &["x"], ScalingKind::MinMax).unwrap();
        let schema = t.schema().clone();
        let fresh = Table::from_rows(
            schema,
            vec![vec![
                Value::Float(7.0),
                Value::Str("a".into()),
                Value::Int(1),
            ]],
        )
        .unwrap();
        let out = s.apply(&fresh).unwrap();
        // (7 - 1) / (4 - 1) = 2.0 — outside [0,1], as transfer should allow.
        assert_eq!(
            out.column("x").unwrap().value(0).unwrap(),
            Value::Float(2.0)
        );
    }

    #[test]
    fn mean_imputation_fills_nulls() {
        let t = table();
        let imp = Imputer::fit(&t, &["y"], ImputeKind::Mean).unwrap();
        let out = imp.apply(&t).unwrap();
        let c = out.column("y").unwrap();
        assert_eq!(c.null_count(), 0);
        // mean of 10, 20, 40.
        assert!((c.value(2).unwrap().as_float().unwrap() - 70.0 / 3.0).abs() < 1e-12);
        assert!(!out.schema().field("y").unwrap().nullable);
    }

    #[test]
    fn median_and_constant_imputation() {
        let t = table();
        let imp = Imputer::fit(&t, &["y"], ImputeKind::Median).unwrap();
        let out = imp.apply(&t).unwrap();
        assert_eq!(
            out.column("y").unwrap().value(2).unwrap(),
            Value::Float(20.0)
        );
        let imp = Imputer::fit(&t, &["y"], ImputeKind::Constant(Value::Int(-1))).unwrap();
        let out = imp.apply(&t).unwrap();
        assert_eq!(out.column("y").unwrap().value(2).unwrap(), Value::Int(-1));
    }

    #[test]
    fn one_hot_encodes_and_handles_unseen() {
        let t = table();
        let oh = OneHot::fit(&t, "cat").unwrap();
        assert_eq!(oh.categories(), &["a", "b", "c"]);
        let out = oh.apply(&t).unwrap();
        assert!(out.schema().contains("cat=a"));
        assert!(!out.schema().contains("cat"));
        assert_eq!(out.value(0, "cat=a").unwrap(), Value::Bool(true));
        assert_eq!(out.value(1, "cat=a").unwrap(), Value::Bool(false));
        // Unseen category encodes all-false.
        let fresh = Table::from_rows(
            t.schema().clone(),
            vec![vec![
                Value::Float(1.0),
                Value::Str("zzz".into()),
                Value::Int(1),
            ]],
        )
        .unwrap();
        let out = oh.apply(&fresh).unwrap();
        for cat in ["a", "b", "c"] {
            assert_eq!(
                out.value(0, &format!("cat={cat}")).unwrap(),
                Value::Bool(false)
            );
        }
    }

    #[test]
    fn split_is_deterministic_and_partitions() {
        let t = toreador_data::generate::random_table(100, 3, 5);
        let (train_a, test_a) = train_test_split(&t, 0.3, 9).unwrap();
        let (train_b, test_b) = train_test_split(&t, 0.3, 9).unwrap();
        assert_eq!(train_a, train_b);
        assert_eq!(test_a, test_b);
        assert_eq!(train_a.num_rows(), 70);
        assert_eq!(test_a.num_rows(), 30);
        let (_, all_test) = train_test_split(&t, 1.0, 9).unwrap();
        assert_eq!(all_test.num_rows(), 100);
        assert!(train_test_split(&t, 1.5, 0).is_err());
    }
}
