//! Model evaluation metrics: classification, regression, clustering.

use std::collections::HashMap;

use crate::error::{AnalyticsError, Result};
use crate::matrix::Matrix;

/// Fraction of exact label matches.
pub fn accuracy(predicted: &[String], truth: &[String]) -> Result<f64> {
    check_len(predicted.len(), truth.len())?;
    if truth.is_empty() {
        return Err(AnalyticsError::InvalidInput(
            "empty evaluation set".to_owned(),
        ));
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    Ok(hits as f64 / truth.len() as f64)
}

/// A labelled confusion matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    /// Sorted distinct labels (row = truth, column = prediction).
    pub labels: Vec<String>,
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    pub fn build(predicted: &[String], truth: &[String]) -> Result<ConfusionMatrix> {
        check_len(predicted.len(), truth.len())?;
        let mut labels: Vec<String> = truth.iter().chain(predicted).cloned().collect();
        labels.sort();
        labels.dedup();
        let index: HashMap<&str, usize> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.as_str(), i))
            .collect();
        let mut counts = vec![vec![0usize; labels.len()]; labels.len()];
        for (p, t) in predicted.iter().zip(truth) {
            counts[index[t.as_str()]][index[p.as_str()]] += 1;
        }
        Ok(ConfusionMatrix { labels, counts })
    }

    /// Precision for one class: TP / (TP + FP).
    pub fn precision(&self, label: &str) -> Result<f64> {
        let i = self.label_index(label)?;
        let tp = self.counts[i][i];
        let predicted: usize = self.counts.iter().map(|row| row[i]).sum();
        Ok(if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        })
    }

    /// Recall for one class: TP / (TP + FN).
    pub fn recall(&self, label: &str) -> Result<f64> {
        let i = self.label_index(label)?;
        let tp = self.counts[i][i];
        let actual: usize = self.counts[i].iter().sum();
        Ok(if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        })
    }

    /// Per-class F1.
    pub fn f1(&self, label: &str) -> Result<f64> {
        let p = self.precision(label)?;
        let r = self.recall(label)?;
        Ok(if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        })
    }

    /// Unweighted mean F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        let sum: f64 = self
            .labels
            .iter()
            .map(|l| self.f1(l).expect("label exists"))
            .sum();
        sum / self.labels.len() as f64
    }

    fn label_index(&self, label: &str) -> Result<usize> {
        self.labels
            .iter()
            .position(|l| l == label)
            .ok_or_else(|| AnalyticsError::InvalidInput(format!("unknown label {label:?}")))
    }
}

/// Root mean squared error.
pub fn rmse(predicted: &[f64], truth: &[f64]) -> Result<f64> {
    check_len(predicted.len(), truth.len())?;
    if truth.is_empty() {
        return Err(AnalyticsError::InvalidInput(
            "empty evaluation set".to_owned(),
        ));
    }
    let mse: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / truth.len() as f64;
    Ok(mse.sqrt())
}

/// Mean absolute error.
pub fn mae(predicted: &[f64], truth: &[f64]) -> Result<f64> {
    check_len(predicted.len(), truth.len())?;
    if truth.is_empty() {
        return Err(AnalyticsError::InvalidInput(
            "empty evaluation set".to_owned(),
        ));
    }
    Ok(predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / truth.len() as f64)
}

/// Coefficient of determination (1 = perfect, 0 = mean-predictor, < 0 worse).
pub fn r2(predicted: &[f64], truth: &[f64]) -> Result<f64> {
    check_len(predicted.len(), truth.len())?;
    if truth.len() < 2 {
        return Err(AnalyticsError::InvalidInput(
            "r2 needs >= 2 points".to_owned(),
        ));
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return Err(AnalyticsError::InvalidInput(
            "r2 undefined for constant truth".to_owned(),
        ));
    }
    let ss_res: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Mean silhouette coefficient of a clustering (O(n²); meant for the
/// Labs-scale datasets).
pub fn silhouette(data: &Matrix, assignment: &[usize]) -> Result<f64> {
    check_len(data.rows(), assignment.len())?;
    let n = data.rows();
    if n < 2 {
        return Err(AnalyticsError::InvalidInput(
            "silhouette needs >= 2 points".to_owned(),
        ));
    }
    let k = assignment.iter().max().map(|m| m + 1).unwrap_or(0);
    if k < 2 {
        return Err(AnalyticsError::InvalidInput(
            "silhouette needs >= 2 clusters".to_owned(),
        ));
    }
    let dist = |a: usize, b: usize| -> f64 {
        data.row(a)
            .iter()
            .zip(data.row(b))
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let own = assignment[i];
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[assignment[j]] += dist(i, j);
            counts[assignment[j]] += 1;
        }
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined, skip
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_infinite() {
            continue;
        }
        total += (b - a) / a.max(b);
        counted += 1;
    }
    if counted == 0 {
        return Err(AnalyticsError::InvalidInput(
            "no scorable points".to_owned(),
        ));
    }
    Ok(total / counted as f64)
}

fn check_len(a: usize, b: usize) -> Result<()> {
    if a != b {
        Err(AnalyticsError::DimensionMismatch {
            expected: a,
            found: b,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(items: &[&str]) -> Vec<String> {
        items.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn accuracy_counts_matches() {
        let acc = accuracy(&s(&["a", "b", "a"]), &s(&["a", "a", "a"])).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert!(accuracy(&s(&["a"]), &s(&[])).is_err());
        assert!(accuracy(&[], &[]).is_err());
    }

    #[test]
    fn confusion_matrix_and_per_class_metrics() {
        let truth = s(&["cat", "cat", "dog", "dog", "dog"]);
        let pred = s(&["cat", "dog", "dog", "dog", "cat"]);
        let cm = ConfusionMatrix::build(&pred, &truth).unwrap();
        assert_eq!(cm.labels, vec!["cat", "dog"]);
        // truth cat: 1 cat, 1 dog; truth dog: 1 cat, 2 dog.
        assert_eq!(cm.counts, vec![vec![1, 1], vec![1, 2]]);
        assert_eq!(cm.precision("cat").unwrap(), 0.5);
        assert_eq!(cm.recall("cat").unwrap(), 0.5);
        assert!((cm.recall("dog").unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.f1("cat").unwrap(), 0.5);
        assert!(cm.macro_f1() > 0.0);
        assert!(cm.precision("bird").is_err());
    }

    #[test]
    fn perfect_predictions_score_one() {
        let truth = s(&["a", "b"]);
        let cm = ConfusionMatrix::build(&truth, &truth).unwrap();
        assert_eq!(cm.macro_f1(), 1.0);
        assert_eq!(accuracy(&truth, &truth).unwrap(), 1.0);
    }

    #[test]
    fn regression_metrics() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&pred, &truth).unwrap(), 0.0);
        assert_eq!(mae(&pred, &truth).unwrap(), 0.0);
        assert_eq!(r2(&pred, &truth).unwrap(), 1.0);
        let off = [2.0, 3.0, 4.0];
        assert_eq!(rmse(&off, &truth).unwrap(), 1.0);
        assert_eq!(mae(&off, &truth).unwrap(), 1.0);
        // Mean predictor has r2 = 0.
        let mean_pred = [2.0, 2.0, 2.0];
        assert_eq!(r2(&mean_pred, &truth).unwrap(), 0.0);
        assert!(r2(&[1.0, 1.0], &[3.0, 3.0]).is_err());
    }

    #[test]
    fn silhouette_prefers_tight_separated_clusters() {
        let tight = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]).unwrap();
        let good = silhouette(&tight, &[0, 0, 1, 1]).unwrap();
        let bad = silhouette(&tight, &[0, 1, 0, 1]).unwrap();
        assert!(good > 0.9, "good {good}");
        assert!(bad < 0.0, "bad {bad}");
        assert!(silhouette(&tight, &[0, 0, 0, 0]).is_err());
    }

    #[test]
    fn length_mismatches_rejected_everywhere() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mae(&[1.0], &[]).is_err());
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(silhouette(&m, &[0]).is_err());
    }
}
