//! Dense row-major matrices and feature extraction from tables.

use toreador_data::table::Table;

use crate::error::{AnalyticsError, Result};

/// A dense row-major f64 matrix.
///
/// Deliberately minimal: the algorithms in this crate need row access, a
/// transpose-multiply, and a linear solver — not a BLAS.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Build from row-major data. Fails if `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(AnalyticsError::InvalidInput(format!(
                "matrix data length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { data, rows, cols })
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a slice of rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(AnalyticsError::InvalidInput("ragged rows".to_owned()));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            data,
            rows: r,
            cols: c,
        })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// `self^T * self` (Gram matrix), used by the normal equations.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for row in self.iter_rows() {
            for (i, &ri) in row.iter().enumerate() {
                if ri == 0.0 {
                    continue;
                }
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    out.data[i * n + j] += ri * rj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                out.data[i * n + j] = out.data[j * n + i];
            }
        }
        out
    }

    /// `self^T * y`.
    pub fn t_vec_mul(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.rows {
            return Err(AnalyticsError::DimensionMismatch {
                expected: self.rows,
                found: y.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (row, &yi) in self.iter_rows().zip(y) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x * yi;
            }
        }
        Ok(out)
    }
}

/// Solve `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting. `A` is consumed as a workspace.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(AnalyticsError::InvalidInput(
            "solve needs square A and matching b".to_owned(),
        ));
    }
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if a.get(r, col).abs() > a.get(pivot, col).abs() {
                pivot = r;
            }
        }
        if a.get(pivot, col).abs() < 1e-12 {
            return Err(AnalyticsError::Degenerate("singular system".to_owned()));
        }
        if pivot != col {
            for c in 0..n {
                let tmp = a.get(col, c);
                a.set(col, c, a.get(pivot, c));
                a.set(pivot, c, tmp);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for r in col + 1..n {
            let factor = a.get(r, col) / a.get(col, col);
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.get(r, c) - factor * a.get(col, c);
                a.set(r, c, v);
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut acc = b[r];
        for (c, &xc) in x.iter().enumerate().skip(r + 1) {
            acc -= a.get(r, c) * xc;
        }
        x[r] = acc / a.get(r, r);
    }
    Ok(x)
}

/// Extract named numeric columns from a table into a feature matrix.
///
/// Nulls are rejected — run imputation ([`crate::prep::Imputer`]) first;
/// this mirrors the TOREADOR pipeline ordering (preparation before
/// analytics).
pub fn features(table: &Table, columns: &[&str]) -> Result<Matrix> {
    let mut data = Vec::with_capacity(table.num_rows() * columns.len());
    let cols: Vec<&toreador_data::column::Column> = columns
        .iter()
        .map(|c| table.column(c).map_err(AnalyticsError::Data))
        .collect::<Result<Vec<_>>>()?;
    for r in 0..table.num_rows() {
        for (name, col) in columns.iter().zip(&cols) {
            let v = col.value(r)?;
            if v.is_null() {
                return Err(AnalyticsError::InvalidInput(format!(
                    "null in feature column {name:?} at row {r}; impute first"
                )));
            }
            data.push(v.as_float()?);
        }
    }
    Matrix::new(table.num_rows(), columns.len(), data)
}

/// Extract one numeric column as the target vector (nulls rejected).
pub fn target(table: &Table, column: &str) -> Result<Vec<f64>> {
    let col = table.column(column)?;
    let mut out = Vec::with_capacity(table.num_rows());
    for r in 0..table.num_rows() {
        let v = col.value(r)?;
        if v.is_null() {
            return Err(AnalyticsError::InvalidInput(format!(
                "null in target column {column:?} at row {r}"
            )));
        }
        out.push(v.as_float()?);
    }
    Ok(out)
}

/// Extract a string column as class labels (nulls rejected).
pub fn labels(table: &Table, column: &str) -> Result<Vec<String>> {
    let col = table.column(column)?;
    let mut out = Vec::with_capacity(table.num_rows());
    for r in 0..table.num_rows() {
        let v = col.value(r)?;
        if v.is_null() {
            return Err(AnalyticsError::InvalidInput(format!(
                "null in label column {column:?} at row {r}"
            )));
        }
        out.push(v.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::schema::{Field, Schema};
    use toreador_data::value::{DataType, Value};

    #[test]
    fn construction_validates_shape() {
        assert!(Matrix::new(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::new(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.iter_rows().count(), 2);
    }

    #[test]
    fn gram_and_tvec() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = m.gram();
        // X^T X = [[35, 44], [44, 56]]
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 0), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        let v = m.t_vec_mul(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(v, vec![9.0, 12.0]);
        assert!(m.t_vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn solve_recovers_known_solution() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            solve(a, vec![1.0, 2.0]),
            Err(AnalyticsError::Degenerate(_))
        ));
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the initial pivot position.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    fn table_with_null() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Int),
            Field::new("label", DataType::Str),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec![Value::Float(1.0), Value::Int(2), Value::Str("a".into())],
                vec![Value::Null, Value::Int(4), Value::Str("b".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn feature_extraction_rejects_nulls() {
        let t = table_with_null();
        let err = features(&t, &["x", "y"]).unwrap_err();
        assert!(err.to_string().contains("impute first"));
        // Column y alone works (no nulls) and widens ints.
        let m = features(&t, &["y"]).unwrap();
        assert_eq!(m.get(1, 0), 4.0);
        assert!(features(&t, &["missing"]).is_err());
    }

    #[test]
    fn target_and_labels() {
        let t = table_with_null();
        assert_eq!(target(&t, "y").unwrap(), vec![2.0, 4.0]);
        assert!(target(&t, "x").is_err());
        assert_eq!(labels(&t, "label").unwrap(), vec!["a", "b"]);
    }
}
