//! Error type for the analytics library.

use std::fmt;

use toreador_data::error::DataError;

/// Errors raised while preparing data or fitting/applying models.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyticsError {
    /// Bubbled up from the data layer.
    Data(DataError),
    /// The input shape is unusable (empty, mismatched dimensions, ...).
    InvalidInput(String),
    /// Model hyper-parameters are out of range.
    InvalidConfig(String),
    /// Training did not converge / produced a degenerate model.
    Degenerate(String),
    /// Predict was called with a feature width different from training.
    DimensionMismatch { expected: usize, found: usize },
}

impl fmt::Display for AnalyticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticsError::Data(e) => write!(f, "data error: {e}"),
            AnalyticsError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            AnalyticsError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            AnalyticsError::Degenerate(m) => write!(f, "degenerate model: {m}"),
            AnalyticsError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "dimension mismatch: model expects {expected} features, got {found}"
                )
            }
        }
    }
}

impl std::error::Error for AnalyticsError {}

impl From<DataError> for AnalyticsError {
    fn from(e: DataError) -> Self {
        AnalyticsError::Data(e)
    }
}

/// Result alias for the analytics layer.
pub type Result<T> = std::result::Result<T, AnalyticsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AnalyticsError::DimensionMismatch {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("expects 3"));
        let e: AnalyticsError = DataError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("column not found"));
    }
}
