//! Gaussian naive Bayes classification.

use std::collections::HashMap;

use crate::error::{AnalyticsError, Result};
use crate::matrix::Matrix;

/// A fitted Gaussian naive Bayes classifier over string class labels.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    classes: Vec<ClassModel>,
    dims: usize,
}

#[derive(Debug, Clone)]
struct ClassModel {
    label: String,
    log_prior: f64,
    means: Vec<f64>,
    /// Variances, floored to avoid zero-variance blowups.
    vars: Vec<f64>,
}

const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// Fit per-class feature Gaussians.
    pub fn fit(x: &Matrix, labels: &[String]) -> Result<GaussianNb> {
        if x.rows() != labels.len() {
            return Err(AnalyticsError::DimensionMismatch {
                expected: x.rows(),
                found: labels.len(),
            });
        }
        if x.rows() == 0 {
            return Err(AnalyticsError::InvalidInput(
                "empty training set".to_owned(),
            ));
        }
        let mut by_class: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, l) in labels.iter().enumerate() {
            by_class.entry(l).or_default().push(i);
        }
        let n = x.rows() as f64;
        let d = x.cols();
        let mut classes: Vec<ClassModel> = Vec::with_capacity(by_class.len());
        let mut names: Vec<&&str> = by_class.keys().collect();
        names.sort(); // deterministic class order
        for &label in names {
            let idx = &by_class[label];
            let m = idx.len() as f64;
            let mut means = vec![0.0; d];
            for &i in idx {
                for (mu, &v) in means.iter_mut().zip(x.row(i)) {
                    *mu += v;
                }
            }
            for mu in &mut means {
                *mu /= m;
            }
            let mut vars = vec![0.0; d];
            for &i in idx {
                for ((var, mu), &v) in vars.iter_mut().zip(&means).zip(x.row(i)) {
                    *var += (v - mu) * (v - mu);
                }
            }
            for var in &mut vars {
                *var = (*var / m).max(VAR_FLOOR);
            }
            classes.push(ClassModel {
                label: label.to_owned(),
                log_prior: (m / n).ln(),
                means,
                vars,
            });
        }
        Ok(GaussianNb { classes, dims: d })
    }

    pub fn class_labels(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.label.as_str()).collect()
    }

    /// Per-class log joint likelihood of a point (unnormalised posterior).
    pub fn log_scores(&self, features: &[f64]) -> Result<Vec<(String, f64)>> {
        if features.len() != self.dims {
            return Err(AnalyticsError::DimensionMismatch {
                expected: self.dims,
                found: features.len(),
            });
        }
        Ok(self
            .classes
            .iter()
            .map(|c| {
                let mut score = c.log_prior;
                for ((&x, &mu), &var) in features.iter().zip(&c.means).zip(&c.vars) {
                    score += -0.5
                        * ((x - mu) * (x - mu) / var
                            + var.ln()
                            + (2.0 * std::f64::consts::PI).ln());
                }
                (c.label.clone(), score)
            })
            .collect())
    }

    /// Most likely class.
    pub fn predict_one(&self, features: &[f64]) -> Result<String> {
        let scores = self.log_scores(features)?;
        Ok(scores
            .into_iter()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(l, _)| l)
            .expect("at least one class"))
    }

    pub fn predict(&self, x: &Matrix) -> Result<Vec<String>> {
        (0..x.rows()).map(|i| self.predict_one(x.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_blobs() -> (Matrix, Vec<String>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..60 {
            rows.push(vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]);
            labels.push("low".to_owned());
        }
        for _ in 0..40 {
            rows.push(vec![
                5.0 + rng.gen_range(-1.0..1.0),
                5.0 + rng.gen_range(-1.0..1.0),
            ]);
            labels.push("high".to_owned());
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn classifies_separated_blobs_perfectly() {
        let (x, y) = two_blobs();
        let model = GaussianNb::fit(&x, &y).unwrap();
        assert_eq!(model.class_labels(), vec!["high", "low"]);
        let preds = model.predict(&x).unwrap();
        let correct = preds.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert_eq!(correct, y.len());
        assert_eq!(model.predict_one(&[0.1, -0.2]).unwrap(), "low");
        assert_eq!(model.predict_one(&[5.2, 4.9]).unwrap(), "high");
    }

    #[test]
    fn priors_break_ties_for_ambiguous_points() {
        // Same features, imbalanced classes: the majority class wins on a
        // point equidistant from both means.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![1.0]]).unwrap();
        let y = vec![
            "a".to_owned(),
            "a".to_owned(),
            "a".to_owned(),
            "b".to_owned(),
        ];
        let m = GaussianNb::fit(&x, &y).unwrap();
        // log_prior(a) = ln(3/4) > log_prior(b); at the midpoint of means the
        // likelihoods do not dominate enough to flip it for wide variance.
        let scores = m.log_scores(&[0.55]).unwrap();
        let a = scores.iter().find(|(l, _)| l == "a").unwrap().1;
        assert!(a.is_finite());
    }

    #[test]
    fn zero_variance_feature_is_floored() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let y = vec!["a".to_owned(), "a".to_owned(), "b".to_owned()];
        let m = GaussianNb::fit(&x, &y).unwrap();
        // First feature is constant within classes; prediction still works.
        assert!(m.predict_one(&[1.0, 0.5]).is_ok());
    }

    #[test]
    fn validates_shapes() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(GaussianNb::fit(&x, &[]).is_err());
        let y = vec!["a".to_owned()];
        let m = GaussianNb::fit(&x, &y).unwrap();
        assert!(m.predict_one(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn single_class_always_predicted() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let y = vec!["only".to_owned(), "only".to_owned()];
        let m = GaussianNb::fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[99.0]).unwrap(), "only");
    }
}
