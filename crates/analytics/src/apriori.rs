//! Apriori frequent-itemset mining and association rules.

use std::collections::{BTreeSet, HashMap};

use crate::error::{AnalyticsError, Result};

/// A transaction is a set of item names.
pub type Transaction = BTreeSet<String>;

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Itemset {
    pub items: BTreeSet<String>,
    pub support_count: usize,
}

impl Itemset {
    /// Relative support given the transaction count.
    pub fn support(&self, n_transactions: usize) -> f64 {
        self.support_count as f64 / n_transactions as f64
    }
}

/// An association rule `antecedent => consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub antecedent: BTreeSet<String>,
    pub consequent: BTreeSet<String>,
    pub support: f64,
    pub confidence: f64,
    /// `confidence / support(consequent)` — > 1 means positive association.
    pub lift: f64,
}

/// Mine all itemsets with relative support >= `min_support`.
///
/// Classic levelwise Apriori: frequent k-itemsets generate (k+1)-candidates
/// by prefix join; candidates with any infrequent subset are pruned before
/// counting.
pub fn frequent_itemsets(transactions: &[Transaction], min_support: f64) -> Result<Vec<Itemset>> {
    if !(0.0..=1.0).contains(&min_support) || min_support == 0.0 {
        return Err(AnalyticsError::InvalidConfig(format!(
            "min_support {min_support} must be in (0, 1]"
        )));
    }
    if transactions.is_empty() {
        return Ok(Vec::new());
    }
    let n = transactions.len();
    let min_count = (min_support * n as f64).ceil() as usize;

    // L1.
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for t in transactions {
        for item in t {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<Itemset> = Vec::new();
    let mut level: Vec<BTreeSet<String>> = Vec::new();
    let mut l1: Vec<(&str, usize)> = counts
        .into_iter()
        .filter(|(_, c)| *c >= min_count)
        .collect();
    l1.sort();
    for (item, c) in l1 {
        let set: BTreeSet<String> = [item.to_owned()].into();
        frequent.push(Itemset {
            items: set.clone(),
            support_count: c,
        });
        level.push(set);
    }

    // Lk -> Lk+1.
    while !level.is_empty() {
        let mut candidates: Vec<BTreeSet<String>> = Vec::new();
        for i in 0..level.len() {
            for j in i + 1..level.len() {
                let a = &level[i];
                let b = &level[j];
                // Prefix join: all but the last element equal.
                let mut ita = a.iter().take(a.len() - 1);
                let mut itb = b.iter().take(b.len() - 1);
                if a.len() == b.len()
                    && std::iter::from_fn(|| match (ita.next(), itb.next()) {
                        (Some(x), Some(y)) => Some(x == y),
                        (None, None) => None,
                        _ => Some(false),
                    })
                    .all(|eq| eq)
                {
                    let mut cand = a.clone();
                    cand.extend(b.iter().cloned());
                    if cand.len() == a.len() + 1 {
                        // Subset pruning.
                        let all_subsets_frequent = cand.iter().all(|drop| {
                            let mut sub = cand.clone();
                            sub.remove(drop);
                            level.contains(&sub)
                        });
                        if all_subsets_frequent && !candidates.contains(&cand) {
                            candidates.push(cand);
                        }
                    }
                }
            }
        }
        let mut next_level = Vec::new();
        for cand in candidates {
            let count = transactions
                .iter()
                .filter(|t| cand.iter().all(|i| t.contains(i)))
                .count();
            if count >= min_count {
                frequent.push(Itemset {
                    items: cand.clone(),
                    support_count: count,
                });
                next_level.push(cand);
            }
        }
        level = next_level;
    }
    Ok(frequent)
}

/// Derive association rules from frequent itemsets.
///
/// For every frequent itemset of size >= 2, every non-empty proper subset is
/// tried as an antecedent; rules below `min_confidence` are dropped.
pub fn association_rules(
    itemsets: &[Itemset],
    n_transactions: usize,
    min_confidence: f64,
) -> Result<Vec<Rule>> {
    if !(0.0..=1.0).contains(&min_confidence) {
        return Err(AnalyticsError::InvalidConfig(format!(
            "min_confidence {min_confidence} outside [0,1]"
        )));
    }
    if n_transactions == 0 {
        return Ok(Vec::new());
    }
    let support_of: HashMap<&BTreeSet<String>, usize> = itemsets
        .iter()
        .map(|s| (&s.items, s.support_count))
        .collect();
    let mut rules = Vec::new();
    for set in itemsets.iter().filter(|s| s.items.len() >= 2) {
        let items: Vec<&String> = set.items.iter().collect();
        // Enumerate non-empty proper subsets via bitmask.
        for mask in 1..((1usize << items.len()) - 1) {
            let antecedent: BTreeSet<String> = items
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, s)| (*s).clone())
                .collect();
            let consequent: BTreeSet<String> = set.items.difference(&antecedent).cloned().collect();
            let Some(&ant_count) = support_of.get(&antecedent) else {
                continue; // antecedent not frequent (below threshold)
            };
            let Some(&cons_count) = support_of.get(&consequent) else {
                continue;
            };
            let confidence = set.support_count as f64 / ant_count as f64;
            if confidence + 1e-12 >= min_confidence {
                let support = set.support_count as f64 / n_transactions as f64;
                let cons_support = cons_count as f64 / n_transactions as f64;
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support,
                    confidence,
                    lift: confidence / cons_support,
                });
            }
        }
    }
    rules.sort_by(|a, b| b.confidence.total_cmp(&a.confidence));
    Ok(rules)
}

/// Convenience: build transactions from (transaction-id, item) pairs.
pub fn transactions_from_pairs(pairs: &[(i64, String)]) -> Vec<Transaction> {
    let mut by_tid: HashMap<i64, Transaction> = HashMap::new();
    for (tid, item) in pairs {
        by_tid.entry(*tid).or_default().insert(item.clone());
    }
    let mut tids: Vec<i64> = by_tid.keys().copied().collect();
    tids.sort_unstable();
    tids.into_iter()
        .map(|t| by_tid.remove(&t).expect("key exists"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[&str]) -> Transaction {
        items.iter().map(|s| s.to_string()).collect()
    }

    /// The canonical market-basket example.
    fn baskets() -> Vec<Transaction> {
        vec![
            tx(&["bread", "milk"]),
            tx(&["bread", "diapers", "beer", "eggs"]),
            tx(&["milk", "diapers", "beer", "cola"]),
            tx(&["bread", "milk", "diapers", "beer"]),
            tx(&["bread", "milk", "diapers", "cola"]),
        ]
    }

    #[test]
    fn finds_known_frequent_itemsets() {
        let sets = frequent_itemsets(&baskets(), 0.6).unwrap();
        let find = |items: &[&str]| {
            sets.iter()
                .find(|s| s.items == tx(items))
                .map(|s| s.support_count)
        };
        assert_eq!(find(&["bread"]), Some(4));
        assert_eq!(find(&["milk"]), Some(4));
        assert_eq!(find(&["diapers"]), Some(4));
        assert_eq!(find(&["beer"]), Some(3));
        assert_eq!(find(&["beer", "diapers"]), Some(3));
        assert_eq!(find(&["bread", "milk"]), Some(3));
        // cola appears twice: below 60%.
        assert_eq!(find(&["cola"]), None);
    }

    #[test]
    fn monotonicity_fewer_itemsets_at_higher_support() {
        let low = frequent_itemsets(&baskets(), 0.2).unwrap();
        let high = frequent_itemsets(&baskets(), 0.8).unwrap();
        assert!(low.len() > high.len());
        // Every high-support itemset also appears at the lower threshold.
        for s in &high {
            assert!(low.iter().any(|l| l.items == s.items));
        }
    }

    #[test]
    fn subsets_of_frequent_sets_are_frequent() {
        let sets = frequent_itemsets(&baskets(), 0.4).unwrap();
        for s in sets.iter().filter(|s| s.items.len() >= 2) {
            for drop in &s.items {
                let mut sub = s.items.clone();
                sub.remove(drop);
                let sub_support = sets
                    .iter()
                    .find(|c| c.items == sub)
                    .map(|c| c.support_count)
                    .unwrap_or(0);
                assert!(
                    sub_support >= s.support_count,
                    "subset {sub:?} support {sub_support} < {s:?}"
                );
            }
        }
    }

    #[test]
    fn beer_diapers_rule_emerges() {
        let sets = frequent_itemsets(&baskets(), 0.5).unwrap();
        let rules = association_rules(&sets, 5, 0.9).unwrap();
        let rule = rules
            .iter()
            .find(|r| r.antecedent == tx(&["beer"]) && r.consequent == tx(&["diapers"]))
            .expect("beer => diapers");
        assert!(
            (rule.confidence - 1.0).abs() < 1e-12,
            "3 of 3 beer baskets have diapers"
        );
        assert!((rule.lift - 1.25).abs() < 1e-12, "lift = 1.0 / 0.8");
        assert!((rule.support - 0.6).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters() {
        let sets = frequent_itemsets(&baskets(), 0.5).unwrap();
        let strict = association_rules(&sets, 5, 1.0).unwrap();
        let lax = association_rules(&sets, 5, 0.1).unwrap();
        assert!(strict.len() < lax.len());
        for r in &strict {
            assert!(r.confidence >= 1.0 - 1e-12);
        }
        // Sorted by confidence descending.
        for w in lax.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(frequent_itemsets(&baskets(), 0.0).is_err());
        assert!(frequent_itemsets(&baskets(), 1.5).is_err());
        assert!(association_rules(&[], 5, 2.0).is_err());
    }

    #[test]
    fn empty_inputs() {
        assert!(frequent_itemsets(&[], 0.5).unwrap().is_empty());
        assert!(association_rules(&[], 0, 0.5).unwrap().is_empty());
    }

    #[test]
    fn pairs_helper_groups_by_tid() {
        let pairs = vec![
            (2, "b".to_owned()),
            (1, "a".to_owned()),
            (2, "c".to_owned()),
            (2, "b".to_owned()),
        ];
        let txs = transactions_from_pairs(&pairs);
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0], tx(&["a"]));
        assert_eq!(txs[1], tx(&["b", "c"]));
    }
}
