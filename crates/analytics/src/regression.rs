//! Linear and logistic regression.
//!
//! Linear regression fits by ridge-regularised normal equations (exact, no
//! learning-rate tuning); logistic regression by batch gradient descent.

use crate::error::{AnalyticsError, Result};
use crate::matrix::{solve, Matrix};

/// A fitted linear model `y = intercept + coefficients · x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    pub intercept: f64,
    pub coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Fit by the normal equations with ridge term `l2` (0 for plain OLS;
    /// a small positive value guards against collinear features).
    pub fn fit(x: &Matrix, y: &[f64], l2: f64) -> Result<LinearRegression> {
        if x.rows() != y.len() {
            return Err(AnalyticsError::DimensionMismatch {
                expected: x.rows(),
                found: y.len(),
            });
        }
        if x.rows() == 0 {
            return Err(AnalyticsError::InvalidInput(
                "empty training set".to_owned(),
            ));
        }
        if l2 < 0.0 {
            return Err(AnalyticsError::InvalidConfig(
                "l2 must be non-negative".to_owned(),
            ));
        }
        // Augment with a bias column of ones.
        let d = x.cols() + 1;
        let mut aug = Matrix::zeros(x.rows(), d);
        for (i, row) in x.iter_rows().enumerate() {
            aug.set(i, 0, 1.0);
            for (j, &v) in row.iter().enumerate() {
                aug.set(i, j + 1, v);
            }
        }
        let mut gram = aug.gram();
        for j in 1..d {
            // Do not regularise the intercept.
            let v = gram.get(j, j) + l2;
            gram.set(j, j, v);
        }
        let rhs = aug.t_vec_mul(y)?;
        let beta = solve(gram, rhs)?;
        Ok(LinearRegression {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
        })
    }

    pub fn predict_one(&self, features: &[f64]) -> Result<f64> {
        if features.len() != self.coefficients.len() {
            return Err(AnalyticsError::DimensionMismatch {
                expected: self.coefficients.len(),
                found: features.len(),
            });
        }
        Ok(self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>())
    }

    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        (0..x.rows()).map(|i| self.predict_one(x.row(i))).collect()
    }
}

/// Hyper-parameters for [`LogisticRegression::fit`].
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    pub learning_rate: f64,
    pub max_iters: usize,
    /// L2 penalty on the weights (not the intercept).
    pub l2: f64,
    /// Stop when the gradient norm falls below this threshold.
    pub tolerance: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            learning_rate: 0.1,
            max_iters: 500,
            l2: 0.0,
            tolerance: 1e-6,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A fitted binary logistic model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    pub intercept: f64,
    pub coefficients: Vec<f64>,
    pub iterations: usize,
}

impl LogisticRegression {
    /// Fit with labels in {0, 1} by batch gradient descent.
    pub fn fit(x: &Matrix, y: &[f64], config: LogisticConfig) -> Result<LogisticRegression> {
        if x.rows() != y.len() {
            return Err(AnalyticsError::DimensionMismatch {
                expected: x.rows(),
                found: y.len(),
            });
        }
        if x.rows() == 0 {
            return Err(AnalyticsError::InvalidInput(
                "empty training set".to_owned(),
            ));
        }
        if y.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err(AnalyticsError::InvalidInput(
                "labels must be 0 or 1".to_owned(),
            ));
        }
        if config.learning_rate <= 0.0 {
            return Err(AnalyticsError::InvalidConfig(
                "learning rate must be positive".to_owned(),
            ));
        }
        let n = x.rows() as f64;
        let d = x.cols();
        let mut w = vec![0.0; d];
        let mut b = 0.0;
        let mut iterations = 0;
        for iter in 0..config.max_iters {
            iterations = iter + 1;
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &target) in x.iter_rows().zip(y) {
                let z = b + w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>();
                let err = sigmoid(z) - target;
                gb += err;
                for (g, &xi) in gw.iter_mut().zip(row) {
                    *g += err * xi;
                }
            }
            gb /= n;
            let mut norm = gb * gb;
            for (g, wi) in gw.iter_mut().zip(&w) {
                *g = *g / n + config.l2 * wi;
                norm += *g * *g;
            }
            b -= config.learning_rate * gb;
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= config.learning_rate * g;
            }
            if norm.sqrt() < config.tolerance {
                break;
            }
        }
        Ok(LogisticRegression {
            intercept: b,
            coefficients: w,
            iterations,
        })
    }

    /// P(y = 1 | x).
    pub fn predict_proba_one(&self, features: &[f64]) -> Result<f64> {
        if features.len() != self.coefficients.len() {
            return Err(AnalyticsError::DimensionMismatch {
                expected: self.coefficients.len(),
                found: features.len(),
            });
        }
        let z = self.intercept
            + self
                .coefficients
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>();
        Ok(sigmoid(z))
    }

    pub fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        (0..x.rows())
            .map(|i| self.predict_proba_one(x.row(i)))
            .collect()
    }

    /// Hard labels at threshold 0.5.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn linear_recovers_exact_coefficients() {
        // y = 3 + 2a - b, noiseless.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let a = rng.gen_range(-5.0..5.0);
            let b = rng.gen_range(-5.0..5.0);
            rows.push(vec![a, b]);
            ys.push(3.0 + 2.0 * a - b);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let m = LinearRegression::fit(&x, &ys, 0.0).unwrap();
        assert!((m.intercept - 3.0).abs() < 1e-8);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-8);
        assert!((m.coefficients[1] + 1.0).abs() < 1e-8);
        assert!((m.predict_one(&[1.0, 1.0]).unwrap() - 4.0).abs() < 1e-8);
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // Second feature is an exact copy of the first: OLS is singular.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 2.0 * i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        assert!(LinearRegression::fit(&x, &ys, 0.0).is_err());
        let m = LinearRegression::fit(&x, &ys, 1e-6).unwrap();
        // Combined effect still ~2.
        assert!((m.coefficients[0] + m.coefficients[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn linear_input_validation() {
        let x = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert!(LinearRegression::fit(&x, &[1.0, 2.0], 0.0).is_err());
        assert!(LinearRegression::fit(&x, &[1.0], -1.0).is_err());
        let m = LinearRegression {
            intercept: 0.0,
            coefficients: vec![1.0, 2.0],
        };
        assert!(m.predict_one(&[1.0]).is_err());
    }

    #[test]
    fn logistic_separates_linearly_separable_data() {
        // y = 1 iff a + b > 0.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            if (a + b).abs() < 0.2 {
                continue; // margin
            }
            rows.push(vec![a, b]);
            ys.push(if a + b > 0.0 { 1.0 } else { 0.0 });
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let m = LogisticRegression::fit(
            &x,
            &ys,
            LogisticConfig {
                learning_rate: 0.5,
                max_iters: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        let preds = m.predict(&x).unwrap();
        let correct = preds.iter().zip(&ys).filter(|(p, y)| p == y).count();
        let accuracy = correct as f64 / ys.len() as f64;
        assert!(accuracy > 0.97, "accuracy {accuracy}");
        // Probabilities are calibrated in direction.
        assert!(m.predict_proba_one(&[2.0, 2.0]).unwrap() > 0.9);
        assert!(m.predict_proba_one(&[-2.0, -2.0]).unwrap() < 0.1);
    }

    #[test]
    fn logistic_rejects_bad_labels_and_config() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(LogisticRegression::fit(&x, &[0.0, 2.0], LogisticConfig::default()).is_err());
        assert!(LogisticRegression::fit(
            &x,
            &[0.0, 1.0],
            LogisticConfig {
                learning_rate: 0.0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l2_shrinks_logistic_weights() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i as f64 - 20.0) / 5.0]).collect();
        let ys: Vec<f64> = (0..40).map(|i| if i >= 20 { 1.0 } else { 0.0 }).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let free = LogisticRegression::fit(
            &x,
            &ys,
            LogisticConfig {
                max_iters: 3000,
                ..Default::default()
            },
        )
        .unwrap();
        let penalised = LogisticRegression::fit(
            &x,
            &ys,
            LogisticConfig {
                max_iters: 3000,
                l2: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(penalised.coefficients[0].abs() < free.coefficients[0].abs());
    }
}
