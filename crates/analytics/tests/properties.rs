//! Property-based tests for analytics invariants.

use proptest::prelude::*;

use toreador_analytics::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 2..=2), 2..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kmeans_assignment_is_nearest_centroid(points in arb_points(40), k in 1usize..4, seed in 0u64..20) {
        prop_assume!(points.len() >= k);
        let data = Matrix::from_rows(&points).unwrap();
        let m = KMeans::fit(&data, KMeansConfig { k, seed, ..Default::default() }).unwrap();
        for p in &points {
            let c = m.predict(p).unwrap();
            let d = |cent: &[f64]| -> f64 {
                cent.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let assigned = d(&m.centroids()[c]);
            for cent in m.centroids() {
                prop_assert!(assigned <= d(cent) + 1e-9);
            }
        }
    }

    #[test]
    fn linear_regression_residuals_orthogonal_to_features(points in arb_points(40)) {
        // OLS property: sum of residuals = 0 (intercept column).
        let ys: Vec<f64> = points.iter().map(|p| p[0] * 1.5 - p[1] * 0.5 + 2.0).collect();
        let x = Matrix::from_rows(&points).unwrap();
        if let Ok(m) = LinearRegression::fit(&x, &ys, 0.0) {
            let preds = m.predict(&x).unwrap();
            let resid_sum: f64 = preds.iter().zip(&ys).map(|(p, y)| y - p).sum();
            prop_assert!(resid_sum.abs() < 1e-6 * ys.len() as f64, "residual sum {resid_sum}");
        }
    }

    #[test]
    fn scaler_round_trip_preserves_order(xs in prop::collection::vec(-1e4f64..1e4, 2..50)) {
        use toreador_data::prelude::*;
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]).unwrap();
        let t = Table::from_rows(schema, xs.iter().map(|&x| vec![Value::Float(x)])).unwrap();
        let s = Scaler::fit(&t, &["x"], ScalingKind::MinMax).unwrap();
        let out = s.apply(&t).unwrap();
        let scaled: Vec<f64> = out
            .column("x").unwrap()
            .iter_values()
            .map(|v| v.as_float().unwrap())
            .collect();
        for (a, b) in xs.iter().zip(xs.iter().skip(1)) {
            let (sa, sb) = (scaled[xs.iter().position(|x| x == a).unwrap()],
                            scaled[xs.iter().position(|x| x == b).unwrap()]);
            if a < b {
                prop_assert!(sa <= sb);
            }
        }
        for &v in &scaled {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn imputer_removes_all_nulls(n in 2usize..40, seed in 0u64..20) {
        let t = toreador_data::generate::random_table(n, 2, seed);
        // c1 is Float; random_table plants ~5% nulls.
        let imp = match Imputer::fit(&t, &["c1"], ImputeKind::Mean) {
            Ok(i) => i,
            Err(_) => return Ok(()), // all-null column: nothing to test
        };
        let out = imp.apply(&t).unwrap();
        prop_assert_eq!(out.column("c1").unwrap().null_count(), 0);
        // Non-null values unchanged.
        for (a, b) in t.column("c1").unwrap().iter_values().zip(out.column("c1").unwrap().iter_values()) {
            if !a.is_null() {
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn train_test_split_partitions_rows(n in 0usize..60, frac in 0.0f64..1.0, seed in 0u64..20) {
        let t = toreador_data::generate::random_table(n, 2, seed);
        let (train, test) = train_test_split(&t, frac, seed).unwrap();
        prop_assert_eq!(train.num_rows() + test.num_rows(), n);
    }

    #[test]
    fn rmse_at_least_mae(n in 1usize..50, seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let truth: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let pred: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let rm = rmse(&pred, &truth).unwrap();
        let ma = mae(&pred, &truth).unwrap();
        prop_assert!(rm + 1e-12 >= ma, "rmse {rm} < mae {ma}");
    }

    #[test]
    fn confusion_matrix_row_sums_equal_class_counts(n in 1usize..60, seed in 0u64..30) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let labels = ["x", "y", "z"];
        let truth: Vec<String> = (0..n).map(|_| labels[rng.gen_range(0..3)].to_owned()).collect();
        let pred: Vec<String> = (0..n).map(|_| labels[rng.gen_range(0..3)].to_owned()).collect();
        let cm = ConfusionMatrix::build(&pred, &truth).unwrap();
        let total: usize = cm.counts.iter().flatten().sum();
        prop_assert_eq!(total, n);
        for (i, label) in cm.labels.iter().enumerate() {
            let row_sum: usize = cm.counts[i].iter().sum();
            let actual = truth.iter().filter(|t| *t == label).count();
            prop_assert_eq!(row_sum, actual);
        }
    }

    #[test]
    fn tfidf_self_similarity_is_max(doc in "[a-z ]{5,40}") {
        prop_assume!(!tokenize(&doc).is_empty());
        let corpus = [doc.as_str(), "other words entirely", "unrelated text body"];
        let model = TfIdf::fit(&corpus).unwrap();
        let v = model.transform(&doc);
        prop_assume!(!v.is_empty());
        let self_sim = cosine(&v, &v);
        prop_assert!((self_sim - 1.0).abs() < 1e-9);
        for other in &corpus[1..] {
            let s = cosine(&v, &model.transform(other));
            prop_assert!(s <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn apriori_supports_are_true_counts(seed in 0u64..30) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let items = ["a", "b", "c", "d"];
        let txs: Vec<_> = (0..20)
            .map(|_| {
                items
                    .iter()
                    .filter(|_| rng.gen_bool(0.5))
                    .map(|s| s.to_string())
                    .collect::<std::collections::BTreeSet<_>>()
            })
            .collect();
        let sets = frequent_itemsets(&txs, 0.2).unwrap();
        for s in &sets {
            let true_count = txs.iter().filter(|t| s.items.iter().all(|i| t.contains(i))).count();
            prop_assert_eq!(s.support_count, true_count);
        }
    }
}
