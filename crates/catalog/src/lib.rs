//! # toreador-catalog
//!
//! The TOREADOR service catalogue: annotated descriptions of every service
//! the platform can compose into a pipeline, plus the goal-matching logic
//! that turns a declarative request into ranked candidates. This is the
//! first half of the paper's BDAaaS function (goals in → services out);
//! `toreador-core` composes the matched services and binds them to their
//! implementations.
//!
//! * [`descriptor`] — [`descriptor::ServiceDescriptor`] and its vocabulary
//!   (areas, capabilities, data kinds, latency classes, privacy techniques);
//! * [`registry`] — id-indexed storage with capability/area views;
//! * [`matching`] — two-phase matching: hard constraints filter, weighted
//!   preferences rank, *all* feasible candidates returned (they are the
//!   Labs' "alternative options");
//! * [`builtin`] — the standard catalogue (30 services over 5 areas).
//!
//! ## Example
//!
//! ```
//! use toreador_catalog::builtin::standard_catalog;
//! use toreador_catalog::descriptor::Capability;
//! use toreador_catalog::matching::{best, Preferences, ServiceGoal};
//!
//! let registry = standard_catalog();
//! let goal = ServiceGoal::capability(Capability::Classification);
//! let quality = best(&registry, &goal, &Preferences::quality_first()).unwrap();
//! let cheap = best(&registry, &goal, &Preferences::cost_first()).unwrap();
//! assert_ne!(quality.id, cheap.id, "preferences change the chosen service");
//! ```

pub mod builtin;
pub mod descriptor;
pub mod matching;
pub mod registry;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::builtin::standard_catalog;
    pub use crate::descriptor::{
        Area, Capability, DataKind, LatencyClass, ParamSpec, PrivacyTech, ServiceDescriptor,
    };
    pub use crate::matching::{best, rank, Candidate, Preferences, ServiceGoal};
    pub use crate::registry::{CatalogError, Registry, Result as CatalogResult};
}
