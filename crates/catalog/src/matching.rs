//! Goal → service matching.
//!
//! The BDAaaS function's first step: given a declarative goal ("cluster the
//! customers, streaming, cheap"), find and rank the catalogue services that
//! can fulfil it. Matching is two-phase — hard constraints filter, then a
//! weighted score ranks — and deliberately returns *all* feasible
//! candidates, because the Labs' "alternative options" are exactly the
//! non-winning candidates.

use serde::{Deserialize, Serialize};

use crate::descriptor::{Capability, PrivacyTech, ServiceDescriptor};
use crate::registry::{CatalogError, Registry, Result};

/// A declarative service request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceGoal {
    pub capability: Capability,
    /// Must run as a stream stage.
    pub require_stream: bool,
    /// Upper bound on abstract cost per 1k rows (None = unbounded).
    pub max_cost_per_k: Option<f64>,
    /// Lower bound on the quality annotation.
    pub min_quality: Option<f64>,
    /// The goal needs this specific privacy technique.
    pub require_privacy: Option<PrivacyTech>,
}

impl ServiceGoal {
    pub fn capability(capability: Capability) -> Self {
        ServiceGoal {
            capability,
            require_stream: false,
            max_cost_per_k: None,
            min_quality: None,
            require_privacy: None,
        }
    }

    pub fn streaming(mut self) -> Self {
        self.require_stream = true;
        self
    }

    pub fn max_cost(mut self, cost: f64) -> Self {
        self.max_cost_per_k = Some(cost);
        self
    }

    pub fn min_quality(mut self, q: f64) -> Self {
        self.min_quality = Some(q);
        self
    }

    pub fn with_privacy(mut self, tech: PrivacyTech) -> Self {
        self.require_privacy = Some(tech);
        self
    }
}

/// Preference weights used to rank feasible candidates.
///
/// Scores are `quality_weight * quality - cost_weight * normalised_cost`;
/// the trainee-visible trade-off in the Labs challenges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Preferences {
    pub quality_weight: f64,
    pub cost_weight: f64,
}

impl Default for Preferences {
    fn default() -> Self {
        Preferences {
            quality_weight: 1.0,
            cost_weight: 1.0,
        }
    }
}

impl Preferences {
    /// Prefer accuracy over spend.
    pub fn quality_first() -> Self {
        Preferences {
            quality_weight: 2.0,
            cost_weight: 0.5,
        }
    }

    /// Prefer spend over accuracy.
    pub fn cost_first() -> Self {
        Preferences {
            quality_weight: 0.5,
            cost_weight: 2.0,
        }
    }
}

/// One ranked candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate<'a> {
    pub service: &'a ServiceDescriptor,
    pub score: f64,
}

/// All feasible candidates for a goal, best first.
///
/// Cost is normalised by the maximum feasible candidate's cost so weights
/// are scale-free. Ties break on service id for determinism.
pub fn rank<'r>(
    registry: &'r Registry,
    goal: &ServiceGoal,
    preferences: &Preferences,
) -> Vec<Candidate<'r>> {
    let feasible: Vec<&ServiceDescriptor> = registry
        .by_capability(goal.capability)
        .into_iter()
        .filter(|s| !goal.require_stream || s.latency.supports_stream())
        .filter(|s| goal.max_cost_per_k.map_or(true, |m| s.cost_per_k_rows <= m))
        .filter(|s| goal.min_quality.map_or(true, |q| s.quality >= q))
        .filter(|s| goal.require_privacy.map_or(true, |p| s.privacy == Some(p)))
        .collect();
    let max_cost = feasible
        .iter()
        .map(|s| s.cost_per_k_rows)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let mut candidates: Vec<Candidate<'_>> = feasible
        .into_iter()
        .map(|service| Candidate {
            service,
            score: preferences.quality_weight * service.quality
                - preferences.cost_weight * (service.cost_per_k_rows / max_cost),
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.service.id.cmp(&b.service.id))
    });
    candidates
}

/// The single best candidate, or an error naming the unmet goal.
pub fn best<'r>(
    registry: &'r Registry,
    goal: &ServiceGoal,
    preferences: &Preferences,
) -> Result<&'r ServiceDescriptor> {
    rank(registry, goal, preferences)
        .first()
        .map(|c| c.service)
        .ok_or_else(|| CatalogError::NoCandidate(format!("{goal:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{Area, DataKind, LatencyClass};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(
            ServiceDescriptor::new(
                "c.fast",
                "Fast clustering",
                Area::Analytics,
                Capability::Clustering,
            )
            .cost(1.0)
            .quality(0.6)
            .latency(LatencyClass::Both),
        )
        .unwrap();
        r.register(
            ServiceDescriptor::new(
                "c.good",
                "Accurate clustering",
                Area::Analytics,
                Capability::Clustering,
            )
            .cost(8.0)
            .quality(0.95)
            .latency(LatencyClass::Batch),
        )
        .unwrap();
        r.register(
            ServiceDescriptor::new(
                "p.dp",
                "DP aggregate",
                Area::Processing,
                Capability::PrivateAggregation,
            )
            .privacy(PrivacyTech::DifferentialPrivacy)
            .io(DataKind::Tabular, DataKind::Report),
        )
        .unwrap();
        r
    }

    #[test]
    fn preferences_flip_the_winner() {
        let r = registry();
        let goal = ServiceGoal::capability(Capability::Clustering);
        let q = best(&r, &goal, &Preferences::quality_first()).unwrap();
        assert_eq!(q.id, "c.good");
        let c = best(&r, &goal, &Preferences::cost_first()).unwrap();
        assert_eq!(c.id, "c.fast");
    }

    #[test]
    fn rank_returns_all_feasible_alternatives() {
        let r = registry();
        let goal = ServiceGoal::capability(Capability::Clustering);
        let ranked = rank(&r, &goal, &Preferences::default());
        assert_eq!(ranked.len(), 2, "both clustering services are alternatives");
        assert!(ranked[0].score >= ranked[1].score);
    }

    #[test]
    fn hard_constraints_filter() {
        let r = registry();
        // Streaming requirement excludes the batch-only service.
        let goal = ServiceGoal::capability(Capability::Clustering).streaming();
        let ranked = rank(&r, &goal, &Preferences::default());
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].service.id, "c.fast");
        // Cost ceiling.
        let goal = ServiceGoal::capability(Capability::Clustering).max_cost(2.0);
        assert_eq!(rank(&r, &goal, &Preferences::default()).len(), 1);
        // Quality floor.
        let goal = ServiceGoal::capability(Capability::Clustering).min_quality(0.9);
        assert_eq!(
            rank(&r, &goal, &Preferences::default())[0].service.id,
            "c.good"
        );
        // Privacy technique.
        let goal = ServiceGoal::capability(Capability::PrivateAggregation)
            .with_privacy(PrivacyTech::DifferentialPrivacy);
        assert_eq!(rank(&r, &goal, &Preferences::default()).len(), 1);
    }

    #[test]
    fn unsatisfiable_goal_is_a_clean_error() {
        let r = registry();
        let goal = ServiceGoal::capability(Capability::Reporting);
        let err = best(&r, &goal, &Preferences::default()).unwrap_err();
        assert!(matches!(err, CatalogError::NoCandidate(_)));
        let goal = ServiceGoal::capability(Capability::Clustering).min_quality(0.99);
        assert!(best(&r, &goal, &Preferences::default()).is_err());
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let mut r = Registry::new();
        for id in ["z.twin", "a.twin"] {
            r.register(
                ServiceDescriptor::new(id, id, Area::Analytics, Capability::Clustering)
                    .cost(1.0)
                    .quality(0.5),
            )
            .unwrap();
        }
        let goal = ServiceGoal::capability(Capability::Clustering);
        let ranked = rank(&r, &goal, &Preferences::default());
        assert_eq!(ranked[0].service.id, "a.twin", "ties break on id");
    }
}
