//! The built-in TOREADOR service catalogue.
//!
//! These descriptors are the catalogue half of the services whose
//! implementations live in `toreador-analytics`, `toreador-privacy` and
//! `toreador-dataflow`; the binding happens in `toreador-core::service_impl`.
//! Cost and quality annotations are relative rankings among alternatives
//! with the same capability (the trade-offs the Labs challenges exercise),
//! not measured absolutes.

use crate::descriptor::{Area, Capability, DataKind, LatencyClass, PrivacyTech, ServiceDescriptor};
use crate::registry::Registry;

/// Build the standard registry.
pub fn standard_catalog() -> Registry {
    let mut r = Registry::new();
    let mut add = |d: ServiceDescriptor| {
        r.register(d).expect("built-in catalogue ids are unique");
    };

    // ---------------------------------------------------- preparation
    add(ServiceDescriptor::new(
        "prep.normalize.zscore",
        "Z-score normalisation",
        Area::Preparation,
        Capability::Normalization,
    )
    .describe("Centre and scale numeric columns to zero mean, unit variance")
    .latency(LatencyClass::Both)
    .cost(0.5)
    .quality(0.7)
    .param("columns", "", "comma-separated numeric columns"));

    add(ServiceDescriptor::new(
        "prep.normalize.minmax",
        "Min-max normalisation",
        Area::Preparation,
        Capability::Normalization,
    )
    .describe("Rescale numeric columns into [0, 1]")
    .latency(LatencyClass::Both)
    .cost(0.5)
    .quality(0.6)
    .param("columns", "", "comma-separated numeric columns"));

    add(ServiceDescriptor::new(
        "prep.impute.mean",
        "Mean imputation",
        Area::Preparation,
        Capability::Imputation,
    )
    .describe("Replace nulls with the column mean")
    .latency(LatencyClass::Both)
    .cost(0.4)
    .quality(0.5)
    .param("columns", "", "comma-separated columns"));

    add(ServiceDescriptor::new(
        "prep.impute.median",
        "Median imputation",
        Area::Preparation,
        Capability::Imputation,
    )
    .describe("Replace nulls with the column median (outlier-robust)")
    .cost(0.8)
    .quality(0.7)
    .param("columns", "", "comma-separated columns"));

    add(ServiceDescriptor::new(
        "prep.encode.onehot",
        "One-hot encoding",
        Area::Preparation,
        Capability::Encoding,
    )
    .describe("Expand a categorical column into indicator columns")
    .cost(1.0)
    .quality(0.7)
    .param("column", "", "categorical column"));

    add(ServiceDescriptor::new(
        "privacy.kanon",
        "k-anonymisation",
        Area::Preparation,
        Capability::Anonymization,
    )
    .describe("Generalise quasi-identifiers and suppress small groups")
    .cost(6.0)
    .quality(0.8)
    .privacy(PrivacyTech::KAnonymity)
    .param("k", "5", "minimum group size"));

    add(ServiceDescriptor::new(
        "privacy.ldiv",
        "l-diversity enforcement",
        Area::Preparation,
        Capability::Anonymization,
    )
    .describe("Suppress groups with fewer than l distinct sensitive values")
    .cost(4.0)
    .quality(0.6)
    .privacy(PrivacyTech::LDiversity)
    .param("l", "2", "minimum distinct sensitive values"));

    // -------------------------------------------------- representation
    add(ServiceDescriptor::new(
        "repr.features.numeric",
        "Numeric feature extraction",
        Area::Representation,
        Capability::FeatureExtraction,
    )
    .describe("Select numeric columns as a dense feature matrix")
    .latency(LatencyClass::Both)
    .cost(0.3)
    .quality(0.6)
    .io(DataKind::Tabular, DataKind::Tabular)
    .param("columns", "", "comma-separated feature columns"));

    add(ServiceDescriptor::new(
        "repr.text.tfidf",
        "TF-IDF vectorisation",
        Area::Representation,
        Capability::TextVectorization,
    )
    .describe("Vectorise a text column with smoothed TF-IDF")
    .cost(3.0)
    .quality(0.8)
    .io(DataKind::Text, DataKind::Tabular)
    .param("column", "", "text column"));

    add(ServiceDescriptor::new(
        "repr.transactions",
        "Transaction encoding",
        Area::Representation,
        Capability::TransactionEncoding,
    )
    .describe("Group (id, item) pairs into basket transactions")
    .cost(1.0)
    .quality(0.7)
    .io(DataKind::Tabular, DataKind::Transactions)
    .param("id", "", "transaction id column")
    .param("item", "", "item column"));

    // ------------------------------------------------------ analytics
    add(ServiceDescriptor::new(
        "analytics.kmeans",
        "K-Means clustering",
        Area::Analytics,
        Capability::Clustering,
    )
    .describe("k-means++ seeded Lloyd clustering")
    .cost(4.0)
    .quality(0.75)
    .io(DataKind::Tabular, DataKind::Model)
    .param("k", "3", "number of clusters")
    .param("features", "", "comma-separated feature columns"));

    add(ServiceDescriptor::new(
        "analytics.linreg",
        "Linear regression",
        Area::Analytics,
        Capability::Regression,
    )
    .describe("Ridge-regularised least squares")
    .cost(2.0)
    .quality(0.7)
    .io(DataKind::Tabular, DataKind::Model)
    .param("target", "", "target column")
    .param("features", "", "comma-separated feature columns"));

    add(ServiceDescriptor::new(
        "analytics.logreg",
        "Logistic regression",
        Area::Analytics,
        Capability::Classification,
    )
    .describe("Binary logistic regression by gradient descent")
    .cost(5.0)
    .quality(0.75)
    .io(DataKind::Tabular, DataKind::Model)
    .param("target", "", "binary target column")
    .param("features", "", "comma-separated feature columns"));

    add(ServiceDescriptor::new(
        "analytics.naivebayes",
        "Gaussian naive Bayes",
        Area::Analytics,
        Capability::Classification,
    )
    .describe("Per-class Gaussian likelihoods; fast, independence-assuming")
    .cost(1.5)
    .quality(0.6)
    .io(DataKind::Tabular, DataKind::Model)
    .param("target", "", "label column")
    .param("features", "", "comma-separated feature columns"));

    add(ServiceDescriptor::new(
        "analytics.tree",
        "Decision tree",
        Area::Analytics,
        Capability::Classification,
    )
    .describe("CART with Gini impurity; captures feature interactions")
    .cost(6.0)
    .quality(0.85)
    .io(DataKind::Tabular, DataKind::Model)
    .param("target", "", "label column")
    .param("features", "", "comma-separated feature columns")
    .param("max_depth", "6", "maximum tree depth"));

    add(ServiceDescriptor::new(
        "analytics.apriori",
        "Apriori association rules",
        Area::Analytics,
        Capability::AssociationRules,
    )
    .describe("Frequent itemsets + rules with support/confidence/lift")
    .cost(8.0)
    .quality(0.8)
    .io(DataKind::Transactions, DataKind::Report)
    .param("min_support", "0.1", "relative support threshold")
    .param("min_confidence", "0.5", "confidence threshold"));

    add(ServiceDescriptor::new(
        "analytics.anomaly.zscore",
        "Global z-score anomaly detection",
        Area::Analytics,
        Capability::AnomalyDetection,
    )
    .describe("Flag points far from the global mean; stationary series only")
    .latency(LatencyClass::Both)
    .cost(1.0)
    .quality(0.5)
    .param("column", "", "numeric series column")
    .param("threshold", "3.0", "standard deviations"));

    add(ServiceDescriptor::new(
        "analytics.anomaly.rolling",
        "Rolling-window anomaly detection",
        Area::Analytics,
        Capability::AnomalyDetection,
    )
    .describe("Flag points far from the preceding window; handles trend and seasonality")
    .latency(LatencyClass::Both)
    .cost(3.0)
    .quality(0.8)
    .param("column", "", "numeric series column")
    .param("window", "48", "window length")
    .param("threshold", "4.0", "standard deviations"));

    add(ServiceDescriptor::new(
        "analytics.forecast.seasonal",
        "Seasonal-naive forecast",
        Area::Analytics,
        Capability::Forecasting,
    )
    .describe("Repeat the last season; unbeatable on strongly periodic series")
    .latency(LatencyClass::Both)
    .cost(0.5)
    .quality(0.6)
    .io(DataKind::TimeSeries, DataKind::Report)
    .param("column", "", "numeric series column")
    .param("period", "96", "season length in samples")
    .param("horizon", "96", "samples to forecast"));

    add(ServiceDescriptor::new(
        "analytics.forecast.smoothing",
        "Holt exponential smoothing",
        Area::Analytics,
        Capability::Forecasting,
    )
    .describe("Level+trend exponential smoothing; handles drifting series")
    .latency(LatencyClass::Both)
    .cost(1.0)
    .quality(0.7)
    .io(DataKind::TimeSeries, DataKind::Report)
    .param("column", "", "numeric series column")
    .param("alpha", "0.3", "level smoothing factor")
    .param("beta", "0.1", "trend smoothing factor")
    .param("horizon", "96", "samples to forecast"));

    add(ServiceDescriptor::new(
        "analytics.similarity",
        "Cosine similarity search",
        Area::Analytics,
        Capability::SimilaritySearch,
    )
    .describe("Rank documents by cosine similarity to a query")
    .cost(2.0)
    .quality(0.7)
    .io(DataKind::Text, DataKind::Report)
    .param("query", "", "query text"));

    // ------------------------------------------------------ processing
    add(ServiceDescriptor::new(
        "processing.filter",
        "Filtering",
        Area::Processing,
        Capability::Filtering,
    )
    .describe("Keep rows matching a predicate")
    .latency(LatencyClass::Both)
    .cost(0.2)
    .quality(0.7)
    .param("predicate", "", "boolean expression"));

    add(ServiceDescriptor::new(
        "processing.aggregate",
        "Group-by aggregation",
        Area::Processing,
        Capability::Aggregation,
    )
    .describe("Hash aggregation with map-side combine")
    .latency(LatencyClass::Both)
    .cost(1.5)
    .quality(0.7)
    .param("group_by", "", "comma-separated key columns"));

    add(ServiceDescriptor::new(
        "processing.join",
        "Hash join",
        Area::Processing,
        Capability::Joining,
    )
    .describe("Shuffle hash equi-join")
    .cost(3.0)
    .quality(0.7)
    .param("keys", "", "comma-separated join keys"));

    add(ServiceDescriptor::new(
        "processing.sample",
        "Bernoulli sampling",
        Area::Processing,
        Capability::Sampling,
    )
    .describe("Row sampling; trades accuracy for cost")
    .latency(LatencyClass::Both)
    .cost(0.2)
    .quality(0.4)
    .param("fraction", "0.1", "sampling probability"));

    add(ServiceDescriptor::new(
        "processing.distinct",
        "Deduplication",
        Area::Processing,
        Capability::Deduplication,
    )
    .describe("Drop duplicate rows via hash shuffle")
    .cost(2.0)
    .quality(0.7));

    add(ServiceDescriptor::new(
        "processing.topk",
        "Top-k ranking",
        Area::Processing,
        Capability::Ranking,
    )
    .describe("Sort by a column and keep the first n rows (engine-fused top-k)")
    .latency(LatencyClass::Both)
    .cost(1.0)
    .quality(0.7)
    .param("by", "", "ranking column")
    .param("n", "10", "rows to keep")
    .param("order", "desc", "asc or desc"));

    add(ServiceDescriptor::new(
        "privacy.dp.aggregate",
        "DP aggregation",
        Area::Processing,
        Capability::PrivateAggregation,
    )
    .describe("Laplace-noised counts/sums under an ε budget")
    .cost(2.5)
    .quality(0.6)
    .privacy(PrivacyTech::DifferentialPrivacy)
    .io(DataKind::Tabular, DataKind::Report)
    .param("epsilon", "1.0", "privacy budget for this release"));

    // --------------------------------------------------- visualization
    add(ServiceDescriptor::new(
        "viz.report.table",
        "Tabular report",
        Area::Visualization,
        Capability::Reporting,
    )
    .describe("Render the result as an aligned text table")
    .latency(LatencyClass::Both)
    .cost(0.1)
    .quality(0.5)
    .io(DataKind::Tabular, DataKind::Report)
    .param("limit", "20", "rows to show"));

    add(ServiceDescriptor::new(
        "viz.report.summary",
        "Statistical summary report",
        Area::Visualization,
        Capability::Reporting,
    )
    .describe("Per-column descriptive statistics")
    .cost(0.5)
    .quality(0.7)
    .io(DataKind::Tabular, DataKind::Report));

    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::{rank, Preferences, ServiceGoal};

    #[test]
    fn catalogue_is_nonempty_and_unique() {
        let r = standard_catalog();
        assert!(r.len() >= 25, "expected a rich catalogue, got {}", r.len());
    }

    #[test]
    fn every_area_is_populated() {
        let r = standard_catalog();
        for area in Area::all() {
            assert!(!r.by_area(area).is_empty(), "area {area} has no services");
        }
    }

    #[test]
    fn key_capabilities_have_alternatives() {
        // The Labs need >= 2 options for the choice points the challenges
        // expose.
        let r = standard_catalog();
        for cap in [
            Capability::Normalization,
            Capability::Imputation,
            Capability::Classification,
            Capability::AnomalyDetection,
            Capability::Anonymization,
        ] {
            let n = r.by_capability(cap).len();
            assert!(n >= 2, "capability {cap:?} has only {n} option(s)");
        }
    }

    #[test]
    fn classification_tradeoff_is_planted() {
        // The tree is better but dearer than naive Bayes — a strict
        // trade-off, so neither dominates.
        let r = standard_catalog();
        let tree = r.get("analytics.tree").unwrap();
        let nb = r.get("analytics.naivebayes").unwrap();
        assert!(tree.quality > nb.quality);
        assert!(tree.cost_per_k_rows > nb.cost_per_k_rows);
        // And the matcher actually flips between them.
        let goal = ServiceGoal::capability(Capability::Classification);
        let q = rank(&r, &goal, &Preferences::quality_first());
        let c = rank(&r, &goal, &Preferences::cost_first());
        assert_eq!(q[0].service.id, "analytics.tree");
        assert_eq!(c[0].service.id, "analytics.naivebayes");
    }

    #[test]
    fn privacy_services_are_tagged() {
        let r = standard_catalog();
        assert_eq!(
            r.get("privacy.kanon").unwrap().privacy,
            Some(PrivacyTech::KAnonymity)
        );
        assert_eq!(
            r.get("privacy.dp.aggregate").unwrap().privacy,
            Some(PrivacyTech::DifferentialPrivacy)
        );
    }

    #[test]
    fn streaming_capable_services_exist() {
        let r = standard_catalog();
        let streaming: Vec<_> = r
            .all()
            .iter()
            .filter(|s| s.latency.supports_stream())
            .collect();
        assert!(streaming.len() >= 5, "got {}", streaming.len());
    }

    #[test]
    fn defaults_declared_for_parameterised_services() {
        let r = standard_catalog();
        assert_eq!(
            r.get("analytics.kmeans").unwrap().default_param("k"),
            Some("3")
        );
        assert_eq!(
            r.get("privacy.dp.aggregate")
                .unwrap()
                .default_param("epsilon"),
            Some("1.0")
        );
    }
}
