//! Service descriptors: the catalogue's vocabulary.
//!
//! TOREADOR's model-driven approach ([2] in the paper) describes every
//! available service with machine-readable annotations so the compiler can
//! match declarative goals to concrete services. A [`ServiceDescriptor`]
//! carries the service's functional capability, its data interface, its
//! quality-of-service annotations (cost, accuracy, latency class), and any
//! privacy technique it implements.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The five areas of a Big Data campaign in the TOREADOR methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Area {
    /// Cleaning, scaling, imputation, anonymisation.
    Preparation,
    /// How data is modelled/encoded (features, text vectors, transactions).
    Representation,
    /// The analytics proper (clustering, classification, mining).
    Analytics,
    /// The processing regime (batch vs stream, filtering, aggregation).
    Processing,
    /// Reporting and presentation of results.
    Visualization,
}

impl Area {
    pub fn all() -> [Area; 5] {
        [
            Area::Preparation,
            Area::Representation,
            Area::Analytics,
            Area::Processing,
            Area::Visualization,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            Area::Preparation => "preparation",
            Area::Representation => "representation",
            Area::Analytics => "analytics",
            Area::Processing => "processing",
            Area::Visualization => "visualization",
        }
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a service functionally does — the unit of goal matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capability {
    // Preparation.
    Normalization,
    Imputation,
    Encoding,
    Anonymization,
    // Representation.
    FeatureExtraction,
    TextVectorization,
    TransactionEncoding,
    // Analytics.
    Clustering,
    Classification,
    Regression,
    AssociationRules,
    AnomalyDetection,
    SimilaritySearch,
    Forecasting,
    // Processing.
    Filtering,
    Aggregation,
    Joining,
    Sampling,
    Deduplication,
    /// Sort by a column and keep the top n (fused top-k in the engine).
    Ranking,
    // Privacy-specific releases.
    PrivateAggregation,
    // Visualization.
    Reporting,
}

/// The kind of data flowing between services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataKind {
    Tabular,
    TimeSeries,
    Text,
    Transactions,
    Model,
    Report,
}

/// Batch/stream support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyClass {
    Batch,
    Stream,
    Both,
}

impl LatencyClass {
    /// Can this service run in the given mode?
    pub fn supports_stream(self) -> bool {
        matches!(self, LatencyClass::Stream | LatencyClass::Both)
    }

    pub fn supports_batch(self) -> bool {
        matches!(self, LatencyClass::Batch | LatencyClass::Both)
    }
}

/// Privacy technique implemented by a service, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrivacyTech {
    KAnonymity,
    LDiversity,
    DifferentialPrivacy,
}

/// A declared, typed parameter of a service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    pub name: String,
    pub default: String,
    pub description: String,
}

/// A fully annotated catalogue entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDescriptor {
    /// Unique, stable id, e.g. `analytics.kmeans`.
    pub id: String,
    pub name: String,
    pub description: String,
    pub area: Area,
    pub capability: Capability,
    pub input: DataKind,
    pub output: DataKind,
    pub latency: LatencyClass,
    /// Abstract cost units per 1 000 input rows (relative, not monetary).
    pub cost_per_k_rows: f64,
    /// Indicative quality in [0, 1] relative to alternatives with the same
    /// capability (e.g. a decision tree vs naive Bayes on tabular data).
    pub quality: f64,
    pub privacy: Option<PrivacyTech>,
    pub params: Vec<ParamSpec>,
}

impl ServiceDescriptor {
    /// Minimal constructor; annotations default to batch, unit cost,
    /// quality 0.5.
    pub fn new(
        id: impl Into<String>,
        name: impl Into<String>,
        area: Area,
        capability: Capability,
    ) -> Self {
        ServiceDescriptor {
            id: id.into(),
            name: name.into(),
            description: String::new(),
            area,
            capability,
            input: DataKind::Tabular,
            output: DataKind::Tabular,
            latency: LatencyClass::Batch,
            cost_per_k_rows: 1.0,
            quality: 0.5,
            privacy: None,
            params: Vec::new(),
        }
    }

    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }

    pub fn io(mut self, input: DataKind, output: DataKind) -> Self {
        self.input = input;
        self.output = output;
        self
    }

    pub fn latency(mut self, latency: LatencyClass) -> Self {
        self.latency = latency;
        self
    }

    pub fn cost(mut self, cost_per_k_rows: f64) -> Self {
        self.cost_per_k_rows = cost_per_k_rows;
        self
    }

    pub fn quality(mut self, quality: f64) -> Self {
        self.quality = quality.clamp(0.0, 1.0);
        self
    }

    pub fn privacy(mut self, tech: PrivacyTech) -> Self {
        self.privacy = Some(tech);
        self
    }

    pub fn param(
        mut self,
        name: impl Into<String>,
        default: impl Into<String>,
        description: impl Into<String>,
    ) -> Self {
        self.params.push(ParamSpec {
            name: name.into(),
            default: default.into(),
            description: description.into(),
        });
        self
    }

    /// Estimated abstract cost of processing `rows` input rows.
    pub fn estimate_cost(&self, rows: usize) -> f64 {
        self.cost_per_k_rows * (rows as f64 / 1000.0)
    }

    /// Default value of a named parameter, if declared.
    pub fn default_param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.default.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_annotations() {
        let d = ServiceDescriptor::new(
            "analytics.kmeans",
            "K-Means",
            Area::Analytics,
            Capability::Clustering,
        )
        .describe("Lloyd clustering")
        .io(DataKind::Tabular, DataKind::Model)
        .latency(LatencyClass::Batch)
        .cost(4.0)
        .quality(0.8)
        .param("k", "3", "number of clusters");
        assert_eq!(d.id, "analytics.kmeans");
        assert_eq!(d.output, DataKind::Model);
        assert_eq!(d.default_param("k"), Some("3"));
        assert_eq!(d.default_param("missing"), None);
        assert_eq!(d.estimate_cost(2_000), 8.0);
    }

    #[test]
    fn quality_is_clamped() {
        let d =
            ServiceDescriptor::new("x", "x", Area::Analytics, Capability::Clustering).quality(7.0);
        assert_eq!(d.quality, 1.0);
    }

    #[test]
    fn latency_class_queries() {
        assert!(LatencyClass::Both.supports_stream());
        assert!(LatencyClass::Both.supports_batch());
        assert!(!LatencyClass::Batch.supports_stream());
        assert!(!LatencyClass::Stream.supports_batch());
    }

    #[test]
    fn areas_enumerate() {
        assert_eq!(Area::all().len(), 5);
        assert_eq!(Area::Analytics.to_string(), "analytics");
    }

    #[test]
    fn descriptors_serialize() {
        let d = ServiceDescriptor::new("a.b", "AB", Area::Processing, Capability::Filtering)
            .privacy(PrivacyTech::DifferentialPrivacy);
        let j = serde_json::to_string(&d).unwrap();
        let back: ServiceDescriptor = serde_json::from_str(&j).unwrap();
        assert_eq!(d, back);
    }
}
