//! The service registry: the catalogue's storage and lookup layer.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::descriptor::{Area, Capability, ServiceDescriptor};

/// Errors raised by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    DuplicateService(String),
    UnknownService(String),
    /// Goal matching found no candidate at all.
    NoCandidate(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateService(id) => write!(f, "duplicate service id {id:?}"),
            CatalogError::UnknownService(id) => write!(f, "unknown service id {id:?}"),
            CatalogError::NoCandidate(goal) => {
                write!(f, "no catalogue service satisfies goal: {goal}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Result alias for the catalogue layer.
pub type Result<T> = std::result::Result<T, CatalogError>;

/// An id-indexed collection of service descriptors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Registry {
    services: Vec<ServiceDescriptor>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a descriptor; ids must be unique.
    pub fn register(&mut self, descriptor: ServiceDescriptor) -> Result<()> {
        if self.index.contains_key(&descriptor.id) {
            return Err(CatalogError::DuplicateService(descriptor.id));
        }
        self.index
            .insert(descriptor.id.clone(), self.services.len());
        self.services.push(descriptor);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.services.len()
    }

    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Look up a service by id.
    pub fn get(&self, id: &str) -> Result<&ServiceDescriptor> {
        self.index
            .get(id)
            .map(|&i| &self.services[i])
            .ok_or_else(|| CatalogError::UnknownService(id.to_owned()))
    }

    pub fn contains(&self, id: &str) -> bool {
        self.index.contains_key(id)
    }

    /// All services, in registration order.
    pub fn all(&self) -> &[ServiceDescriptor] {
        &self.services
    }

    /// All services with the given capability.
    pub fn by_capability(&self, capability: Capability) -> Vec<&ServiceDescriptor> {
        self.services
            .iter()
            .filter(|s| s.capability == capability)
            .collect()
    }

    /// All services in the given area.
    pub fn by_area(&self, area: Area) -> Vec<&ServiceDescriptor> {
        self.services.iter().filter(|s| s.area == area).collect()
    }

    /// Rebuild the id index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .services
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{Area, Capability};

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(ServiceDescriptor::new(
            "a.one",
            "One",
            Area::Analytics,
            Capability::Clustering,
        ))
        .unwrap();
        r.register(ServiceDescriptor::new(
            "a.two",
            "Two",
            Area::Analytics,
            Capability::Clustering,
        ))
        .unwrap();
        r.register(ServiceDescriptor::new(
            "p.flt",
            "Filter",
            Area::Processing,
            Capability::Filtering,
        ))
        .unwrap();
        r
    }

    #[test]
    fn register_and_lookup() {
        let r = registry();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get("a.one").unwrap().name, "One");
        assert!(r.contains("p.flt"));
        assert!(matches!(
            r.get("nope"),
            Err(CatalogError::UnknownService(_))
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut r = registry();
        let err = r
            .register(ServiceDescriptor::new(
                "a.one",
                "Again",
                Area::Analytics,
                Capability::Clustering,
            ))
            .unwrap_err();
        assert_eq!(err, CatalogError::DuplicateService("a.one".into()));
        assert_eq!(r.len(), 3, "failed insert must not grow the registry");
    }

    #[test]
    fn filtered_views() {
        let r = registry();
        assert_eq!(r.by_capability(Capability::Clustering).len(), 2);
        assert_eq!(r.by_capability(Capability::Reporting).len(), 0);
        assert_eq!(r.by_area(Area::Processing).len(), 1);
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let r = registry();
        let j = serde_json::to_string(&r).unwrap();
        let mut back: Registry = serde_json::from_str(&j).unwrap();
        back.rebuild_index();
        assert_eq!(back.len(), 3);
        assert!(back.get("a.two").is_ok());
    }
}
