//! Micro-batch streaming execution.
//!
//! TOREADOR campaigns choose between *batch* and *stream* processing as a
//! first-class design option. This module provides the streaming half: a
//! time-ordered source is cut into micro-batches by event-time window; each
//! batch runs through the same engine; stateful aggregates carry across
//! batches through a [`StreamState`]. The trade-off the Labs surface is
//! latency-per-result vs total throughput, measured by the run metrics.

use std::collections::HashMap;

use toreador_data::table::Table;
use toreador_data::value::Value;

use crate::error::{FlowError, Result};
use crate::logical::Dataflow;
use crate::metrics::RunMetrics;
use crate::session::{Engine, EngineConfig};
use crate::trace::RunTrace;

/// Splits a time-ordered table into event-time micro-batches.
#[derive(Debug)]
pub struct MicroBatcher {
    batches: Vec<Table>,
}

impl MicroBatcher {
    /// Cut `source` into tumbling windows of `window_ms` over `ts_column`.
    ///
    /// Rows are assigned by `floor(ts / window_ms)`; empty windows between
    /// the first and last event are preserved (a real stream ticks even when
    /// silent).
    pub fn tumbling(source: &Table, ts_column: &str, window_ms: i64) -> Result<Self> {
        if window_ms <= 0 {
            return Err(FlowError::Plan("window must be positive".to_owned()));
        }
        let ts = source.column(ts_column)?;
        if source.num_rows() == 0 {
            return Ok(MicroBatcher { batches: vec![] });
        }
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let mut stamps = Vec::with_capacity(source.num_rows());
        for v in ts.iter_values() {
            let t = match v {
                Value::Timestamp(t) => t,
                Value::Int(t) => t,
                other => {
                    return Err(FlowError::TypeCheck(format!(
                        "timestamp column contains {other:?}"
                    )))
                }
            };
            lo = lo.min(t);
            hi = hi.max(t);
            stamps.push(t);
        }
        let first = lo.div_euclid(window_ms);
        let last = hi.div_euclid(window_ms);
        let n = (last - first + 1) as usize;
        // Per-window row-index lists, built in one pass. Memory is
        // O(windows + rows), not O(windows × rows) — sparse timestamps over
        // a wide range only pay for the rows they actually hold.
        let mut windows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in stamps.iter().enumerate() {
            let w = (t.div_euclid(window_ms) - first) as usize;
            windows[w].push(i);
        }
        let batches = windows
            .into_iter()
            .map(|idx| source.take(&idx).map_err(FlowError::Data))
            .collect::<Result<Vec<_>>>()?;
        Ok(MicroBatcher { batches })
    }

    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    pub fn batches(&self) -> &[Table] {
        &self.batches
    }
}

/// Carry-over state for streaming aggregation: keyed running counts/sums.
///
/// Keys and fields are strings so state survives across batches regardless
/// of the pipeline's schema details.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StreamState {
    counts: HashMap<String, i64>,
    sums: HashMap<String, f64>,
}

impl StreamState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge a batch result into the state: `key_col` identifies the group,
    /// `count_col`/`sum_col` are merged additively when present.
    pub fn absorb(
        &mut self,
        batch_result: &Table,
        key_col: &str,
        count_col: Option<&str>,
        sum_col: Option<&str>,
    ) -> Result<()> {
        for row_idx in 0..batch_result.num_rows() {
            let key = batch_result.value(row_idx, key_col)?.to_string();
            if let Some(cc) = count_col {
                let v = batch_result.value(row_idx, cc)?;
                if !v.is_null() {
                    *self.counts.entry(key.clone()).or_insert(0) +=
                        v.as_int().map_err(FlowError::Data)?;
                }
            }
            if let Some(sc) = sum_col {
                let v = batch_result.value(row_idx, sc)?;
                if !v.is_null() {
                    *self.sums.entry(key.clone()).or_insert(0.0) +=
                        v.as_float().map_err(FlowError::Data)?;
                }
            }
        }
        Ok(())
    }

    pub fn count(&self, key: &str) -> i64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    pub fn sum(&self, key: &str) -> f64 {
        self.sums.get(key).copied().unwrap_or(0.0)
    }

    pub fn keys(&self) -> Vec<&str> {
        let mut ks: Vec<&str> = self
            .counts
            .keys()
            .chain(self.sums.keys())
            .map(String::as_str)
            .collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    /// Add `delta` to the running count for `key`. The continuous streaming
    /// loop applies batch deltas through this (live and WAL-replay paths
    /// share it, which is what makes resume byte-identical).
    pub fn add_count(&mut self, key: &str, delta: i64) {
        *self.counts.entry(key.to_owned()).or_insert(0) += delta;
    }

    /// Add `delta` to the running sum for `key`.
    pub fn add_sum(&mut self, key: &str, delta: f64) {
        *self.sums.entry(key.to_owned()).or_insert(0.0) += delta;
    }

    /// The counts, key-sorted — the canonical (deterministic) view used for
    /// snapshots and byte-identity comparison.
    pub fn counts_sorted(&self) -> std::collections::BTreeMap<String, i64> {
        self.counts.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// The sums, key-sorted — canonical view, see [`StreamState::counts_sorted`].
    pub fn sums_sorted(&self) -> std::collections::BTreeMap<String, f64> {
        self.sums.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }
}

/// Outcome of a streaming run.
#[derive(Debug)]
pub struct StreamRun {
    /// Final carried state.
    pub state: StreamState,
    /// Per-batch metrics in arrival order.
    pub batch_metrics: Vec<RunMetrics>,
    /// Per-batch flight-recorder journals, aligned with `batch_metrics`
    /// (empty trace for silent windows).
    pub batch_traces: Vec<RunTrace>,
    /// Rows emitted per batch.
    pub batch_rows: Vec<usize>,
}

impl StreamRun {
    /// Mean per-batch latency in microseconds — the streaming side of the
    /// latency/throughput trade-off. Silent windows (empty ticks that ran
    /// no engine) are excluded: averaging their 0 µs placeholders in would
    /// dilute the reported latency below what any executed batch paid.
    pub fn mean_batch_latency_us(&self) -> f64 {
        let executed: Vec<f64> = self
            .batch_metrics
            .iter()
            .zip(&self.batch_traces)
            .filter(|(_, trace)| !trace.events.is_empty())
            .map(|(m, _)| m.total_elapsed_us as f64)
            .collect();
        if executed.is_empty() {
            return 0.0;
        }
        executed.iter().sum::<f64>() / executed.len() as f64
    }

    pub fn total_rows(&self) -> usize {
        self.batch_rows.iter().sum()
    }
}

/// Execute `make_flow` once per micro-batch, absorbing each result into the
/// carried state. The flow factory receives the batch's registered dataset
/// name so the same pipeline definition is reused every tick.
pub fn run_stream(
    config: EngineConfig,
    batcher: &MicroBatcher,
    make_flow: impl Fn(&Engine, &str) -> Result<Dataflow>,
    key_col: &str,
    count_col: Option<&str>,
    sum_col: Option<&str>,
) -> Result<StreamRun> {
    let mut state = StreamState::new();
    let mut batch_metrics = Vec::with_capacity(batcher.num_batches());
    let mut batch_traces = Vec::with_capacity(batcher.num_batches());
    let mut batch_rows = Vec::with_capacity(batcher.num_batches());
    for batch in batcher.batches() {
        if batch.num_rows() == 0 {
            // Silent window: nothing to run, but the tick is still recorded.
            batch_metrics.push(RunMetrics::default());
            batch_traces.push(RunTrace::default());
            batch_rows.push(0);
            continue;
        }
        let mut engine = Engine::new(config.clone());
        engine.register("__batch", batch.clone())?;
        let flow = make_flow(&engine, "__batch")?;
        let result = engine.run(&flow)?;
        state.absorb(&result.table, key_col, count_col, sum_col)?;
        batch_rows.push(result.table.num_rows());
        batch_metrics.push(result.metrics);
        batch_traces.push(result.trace);
    }
    Ok(StreamRun {
        state,
        batch_metrics,
        batch_traces,
        batch_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggExpr, AggFunc};
    use toreador_data::generate::telemetry;
    use toreador_data::schema::{Field, Schema};
    use toreador_data::value::DataType;

    #[test]
    fn tumbling_windows_partition_by_time() {
        let schema = Schema::new(vec![
            Field::new("ts", DataType::Timestamp),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let t = Table::from_rows(
            schema,
            vec![
                vec![Value::Timestamp(0), Value::Int(1)],
                vec![Value::Timestamp(999), Value::Int(2)],
                vec![Value::Timestamp(1000), Value::Int(3)],
                vec![Value::Timestamp(3500), Value::Int(4)],
            ],
        )
        .unwrap();
        let b = MicroBatcher::tumbling(&t, "ts", 1000).unwrap();
        assert_eq!(b.num_batches(), 4); // windows 0,1,2(empty),3
        assert_eq!(b.batches()[0].num_rows(), 2);
        assert_eq!(b.batches()[1].num_rows(), 1);
        assert_eq!(b.batches()[2].num_rows(), 0);
        assert_eq!(b.batches()[3].num_rows(), 1);
    }

    #[test]
    fn tumbling_matches_mask_reference_and_stays_cheap_on_sparse_ranges() {
        // Two rows 100 000 windows apart: the old mask construction would
        // allocate 100 001 × 2 booleans; the index-list pass is O(n + rows).
        let schema = Schema::new(vec![
            Field::new("ts", DataType::Timestamp),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let t = Table::from_rows(
            schema.clone(),
            vec![
                vec![Value::Timestamp(0), Value::Int(1)],
                vec![Value::Timestamp(100_000_000), Value::Int(2)],
            ],
        )
        .unwrap();
        let b = MicroBatcher::tumbling(&t, "ts", 1000).unwrap();
        assert_eq!(b.num_batches(), 100_001);
        assert_eq!(b.batches()[0].num_rows(), 1);
        assert_eq!(b.batches()[100_000].num_rows(), 1);
        assert!(b.batches()[1..100_000].iter().all(|w| w.num_rows() == 0));

        // Dense case: row-for-row identical to the boolean-mask reference.
        let t = Table::from_rows(
            schema,
            vec![
                vec![Value::Timestamp(-2500), Value::Int(0)],
                vec![Value::Timestamp(10), Value::Int(1)],
                vec![Value::Timestamp(999), Value::Int(2)],
                vec![Value::Timestamp(15), Value::Int(3)],
                vec![Value::Timestamp(2001), Value::Int(4)],
            ],
        )
        .unwrap();
        let b = MicroBatcher::tumbling(&t, "ts", 1000).unwrap();
        let lo = -3i64; // floor(-2500 / 1000)
        for (w, batch) in b.batches().iter().enumerate() {
            let mask: Vec<bool> = (0..t.num_rows())
                .map(|i| {
                    let ts = match t.value(i, "ts").unwrap() {
                        Value::Timestamp(x) => x,
                        other => panic!("unexpected {other:?}"),
                    };
                    ts.div_euclid(1000) - lo == w as i64
                })
                .collect();
            assert_eq!(batch, &t.filter(&mask).unwrap(), "window {w}");
        }
    }

    #[test]
    fn mean_batch_latency_excludes_silent_windows() {
        use crate::trace::{TraceEvent, TraceEventKind};
        let executed = RunMetrics {
            total_elapsed_us: 900,
            ..RunMetrics::default()
        };
        let live_trace = RunTrace {
            events: vec![TraceEvent {
                seq: 0,
                at_us: 0,
                kind: TraceEventKind::RunStarted,
            }],
        };
        let run = StreamRun {
            state: StreamState::new(),
            batch_metrics: vec![
                executed.clone(),
                RunMetrics::default(),
                RunMetrics::default(),
            ],
            batch_traces: vec![live_trace, RunTrace::default(), RunTrace::default()],
            batch_rows: vec![5, 0, 0],
        };
        // Two silent ticks must not dilute the one executed batch's 900 µs.
        assert_eq!(run.mean_batch_latency_us(), 900.0);
        let empty = StreamRun {
            state: StreamState::new(),
            batch_metrics: vec![RunMetrics::default()],
            batch_traces: vec![RunTrace::default()],
            batch_rows: vec![0],
        };
        assert_eq!(empty.mean_batch_latency_us(), 0.0);
    }

    #[test]
    fn delta_application_matches_absorb() {
        let mut a = StreamState::new();
        a.add_count("x", 2);
        a.add_count("x", 3);
        a.add_sum("x", 1.5);
        assert_eq!(a.count("x"), 5);
        assert_eq!(a.sum("x"), 1.5);
        let counts = a.counts_sorted();
        assert_eq!(counts.get("x"), Some(&5));
        assert!(a.sums_sorted().contains_key("x"));
    }

    #[test]
    fn empty_source_gives_no_batches() {
        let schema = Schema::new(vec![Field::new("ts", DataType::Timestamp)]).unwrap();
        let t = Table::empty(schema);
        let b = MicroBatcher::tumbling(&t, "ts", 1000).unwrap();
        assert_eq!(b.num_batches(), 0);
    }

    #[test]
    fn invalid_window_rejected() {
        let schema = Schema::new(vec![Field::new("ts", DataType::Timestamp)]).unwrap();
        let t = Table::empty(schema);
        assert!(MicroBatcher::tumbling(&t, "ts", 0).is_err());
    }

    #[test]
    fn stream_state_accumulates() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("n", DataType::Int),
            Field::new("s", DataType::Float),
        ])
        .unwrap();
        let t1 = Table::from_rows(
            schema.clone(),
            vec![vec!["a".into(), Value::Int(2), Value::Float(1.5)]],
        )
        .unwrap();
        let t2 = Table::from_rows(
            schema,
            vec![
                vec!["a".into(), Value::Int(3), Value::Float(0.5)],
                vec!["b".into(), Value::Int(1), Value::Float(9.0)],
            ],
        )
        .unwrap();
        let mut st = StreamState::new();
        st.absorb(&t1, "k", Some("n"), Some("s")).unwrap();
        st.absorb(&t2, "k", Some("n"), Some("s")).unwrap();
        assert_eq!(st.count("a"), 5);
        assert_eq!(st.sum("a"), 2.0);
        assert_eq!(st.count("b"), 1);
        assert_eq!(st.keys(), vec!["a", "b"]);
        assert_eq!(st.count("missing"), 0);
    }

    #[test]
    fn streaming_equals_batch_for_additive_aggregates() {
        let t = telemetry(2_000, 8, 3);
        // Batch: total kwh per region.
        let mut engine = Engine::new(EngineConfig::default().with_threads(2));
        engine.register("tel", t.clone()).unwrap();
        let batch_flow = engine
            .flow("tel")
            .unwrap()
            .aggregate(
                &["region"],
                vec![AggExpr::new(AggFunc::Sum, "kwh", "total")],
            )
            .unwrap();
        let batch = engine.run(&batch_flow).unwrap();

        // Stream: same aggregate per hour-window, state carries the sum.
        let batcher = MicroBatcher::tumbling(&t, "ts", 3_600_000).unwrap();
        assert!(batcher.num_batches() > 1, "need multiple windows");
        let run = run_stream(
            EngineConfig::default().with_threads(2),
            &batcher,
            |e, ds| {
                e.flow(ds)?.aggregate(
                    &["region"],
                    vec![AggExpr::new(AggFunc::Sum, "kwh", "total")],
                )
            },
            "region",
            None,
            Some("total"),
        )
        .unwrap();
        for row in batch.table.iter_rows() {
            let region = row[0].to_string();
            let total = row[1].as_float().unwrap();
            assert!(
                (run.state.sum(&region) - total).abs() < 1e-6,
                "region {region}: stream {} vs batch {total}",
                run.state.sum(&region)
            );
        }
        assert!(run.total_rows() > 0);
        assert!(run.mean_batch_latency_us() >= 0.0);
        assert_eq!(run.batch_traces.len(), run.batch_metrics.len());
        // Silent windows carry an empty trace; real batches a recorded one.
        for (trace, rows) in run.batch_traces.iter().zip(&run.batch_rows) {
            assert_eq!(*rows > 0, !trace.events.is_empty());
        }
    }
}
