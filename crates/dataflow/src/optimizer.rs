//! Rule-based logical-plan optimiser.
//!
//! Four classic rewrites, each implemented as an independent rule so the
//! ablation benchmarks (DESIGN.md E2/E5) can toggle them:
//!
//! 1. **Constant folding** — evaluate literal-only sub-expressions.
//! 2. **Filter merging** — adjacent filters become one conjunction.
//! 3. **Predicate pushdown** — filters move below projections (when the
//!    projection is a pure rename/pass-through of the referenced columns)
//!    and below unions/sample-free nodes, shrinking data early.
//! 4. **Projection pruning** — scans followed by projections that ignore
//!    columns insert a narrowing projection right above the scan.
//!
//! Rules run to a fixpoint (bounded) and preserve plan semantics; the
//! equivalence is property-tested in `tests/engine.rs`.

use std::sync::Arc;

use toreador_data::schema::Schema;
use toreador_data::value::Value;

use crate::error::Result;
use crate::expr::{col, BinOp, Expr};
use crate::logical::LogicalPlan;

/// Which rules to apply. `Default` enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerConfig {
    pub constant_folding: bool,
    pub merge_filters: bool,
    pub predicate_pushdown: bool,
    pub projection_pruning: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            constant_folding: true,
            merge_filters: true,
            predicate_pushdown: true,
            projection_pruning: true,
        }
    }
}

impl OptimizerConfig {
    /// All rules disabled (the ablation baseline).
    pub fn disabled() -> Self {
        OptimizerConfig {
            constant_folding: false,
            merge_filters: false,
            predicate_pushdown: false,
            projection_pruning: false,
        }
    }
}

/// Optimise a plan under the given configuration.
pub fn optimize(plan: &Arc<LogicalPlan>, config: &OptimizerConfig) -> Result<Arc<LogicalPlan>> {
    let mut current = Arc::clone(plan);
    // Fixpoint with a small bound; each rule is individually terminating but
    // pushdown can expose new merge opportunities and vice versa.
    for _ in 0..8 {
        let mut next = Arc::clone(&current);
        if config.constant_folding {
            next = fold_constants(&next)?;
        }
        if config.merge_filters {
            next = merge_filters(&next)?;
        }
        if config.predicate_pushdown {
            next = push_down_filters(&next)?;
        }
        if config.projection_pruning {
            next = prune_projections(&next)?;
        }
        if next == current {
            break;
        }
        current = next;
    }
    Ok(current)
}

/// Rebuild a node with new children (children given in `children()` order).
fn with_children(plan: &LogicalPlan, new_children: Vec<Arc<LogicalPlan>>) -> LogicalPlan {
    let mut it = new_children.into_iter();
    match plan {
        LogicalPlan::Scan { .. } => plan.clone(),
        LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
            input: it.next().expect("filter has a child"),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { exprs, schema, .. } => LogicalPlan::Project {
            input: it.next().expect("project has a child"),
            exprs: exprs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Aggregate {
            group_by,
            aggs,
            schema,
            ..
        } => LogicalPlan::Aggregate {
            input: it.next().expect("aggregate has a child"),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
            schema: schema.clone(),
        },
        LogicalPlan::Join {
            left_keys,
            right_keys,
            join_type,
            schema,
            ..
        } => LogicalPlan::Join {
            left: it.next().expect("join has a left child"),
            right: it.next().expect("join has a right child"),
            left_keys: left_keys.clone(),
            right_keys: right_keys.clone(),
            join_type: *join_type,
            schema: schema.clone(),
        },
        LogicalPlan::Sort {
            keys, descending, ..
        } => LogicalPlan::Sort {
            input: it.next().expect("sort has a child"),
            keys: keys.clone(),
            descending: *descending,
        },
        LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
            input: it.next().expect("limit has a child"),
            n: *n,
        },
        LogicalPlan::Union { .. } => LogicalPlan::Union {
            inputs: it.collect(),
        },
        LogicalPlan::Sample { fraction, seed, .. } => LogicalPlan::Sample {
            input: it.next().expect("sample has a child"),
            fraction: *fraction,
            seed: *seed,
        },
        LogicalPlan::Distinct { .. } => LogicalPlan::Distinct {
            input: it.next().expect("distinct has a child"),
        },
    }
}

fn transform_up(
    plan: &Arc<LogicalPlan>,
    f: &impl Fn(Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>>,
) -> Result<Arc<LogicalPlan>> {
    let children = plan
        .children()
        .into_iter()
        .map(|c| transform_up(c, f))
        .collect::<Result<Vec<_>>>()?;
    let rebuilt = Arc::new(with_children(plan, children));
    f(rebuilt)
}

// ---------------------------------------------------------------- rule 1

/// Evaluate literal-only sub-expressions.
fn fold_expr(e: &Expr) -> Expr {
    // Fold children first.
    let folded = match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(fold_expr(left)),
            right: Box::new(fold_expr(right)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(fold_expr(operand)),
        },
        Expr::Call { func, args } => Expr::Call {
            func: *func,
            args: args.iter().map(fold_expr).collect(),
        },
        Expr::Coalesce(args) => Expr::Coalesce(args.iter().map(fold_expr).collect()),
        Expr::If {
            cond,
            then,
            otherwise,
        } => Expr::If {
            cond: Box::new(fold_expr(cond)),
            then: Box::new(fold_expr(then)),
            otherwise: Box::new(fold_expr(otherwise)),
        },
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(fold_expr(expr)),
            to: *to,
        },
        other => other.clone(),
    };
    // Identity simplifications on boolean connectives.
    if let Expr::Binary { op, left, right } = &folded {
        match (op, left.as_ref(), right.as_ref()) {
            (BinOp::And, Expr::Literal(Value::Bool(true)), r) => return r.clone(),
            (BinOp::And, l, Expr::Literal(Value::Bool(true))) => return l.clone(),
            (BinOp::And, Expr::Literal(Value::Bool(false)), _)
            | (BinOp::And, _, Expr::Literal(Value::Bool(false))) => {
                return Expr::Literal(Value::Bool(false))
            }
            (BinOp::Or, Expr::Literal(Value::Bool(false)), r) => return r.clone(),
            (BinOp::Or, l, Expr::Literal(Value::Bool(false))) => return l.clone(),
            (BinOp::Or, Expr::Literal(Value::Bool(true)), _)
            | (BinOp::Or, _, Expr::Literal(Value::Bool(true))) => {
                return Expr::Literal(Value::Bool(true))
            }
            _ => {}
        }
    }
    // Pure-literal subtree: evaluate against an empty schema/row.
    if folded.referenced_columns().is_empty() && !matches!(folded, Expr::Literal(_)) {
        let empty = Schema::empty();
        if let Ok(v) = folded.eval(&empty, &Vec::new()) {
            return Expr::Literal(v);
        }
    }
    folded
}

fn fold_constants(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    transform_up(plan, &|node: Arc<LogicalPlan>| {
        Ok(match node.as_ref() {
            LogicalPlan::Filter { input, predicate } => Arc::new(LogicalPlan::Filter {
                input: Arc::clone(input),
                predicate: fold_expr(predicate),
            }),
            LogicalPlan::Project {
                input,
                exprs,
                schema,
            } => Arc::new(LogicalPlan::Project {
                input: Arc::clone(input),
                exprs: exprs
                    .iter()
                    .map(|(n, e)| (n.clone(), fold_expr(e)))
                    .collect(),
                schema: schema.clone(),
            }),
            _ => node,
        })
    })
}

// ---------------------------------------------------------------- rule 2

fn merge_filters(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    transform_up(plan, &|node: Arc<LogicalPlan>| {
        if let LogicalPlan::Filter { input, predicate } = node.as_ref() {
            if let LogicalPlan::Filter {
                input: inner_input,
                predicate: inner_pred,
            } = input.as_ref()
            {
                return Ok(Arc::new(LogicalPlan::Filter {
                    input: Arc::clone(inner_input),
                    predicate: inner_pred.clone().and(predicate.clone()),
                }));
            }
        }
        Ok(node)
    })
}

// ---------------------------------------------------------------- rule 3

/// Rewrite a predicate over projection outputs into one over its inputs, if
/// every referenced output column maps to a plain column reference.
fn remap_through_project(predicate: &Expr, exprs: &[(String, Expr)]) -> Option<Expr> {
    let refs = predicate.referenced_columns();
    for r in &refs {
        match exprs.iter().find(|(n, _)| n == r) {
            Some((_, Expr::Column(_))) => {}
            _ => return None,
        }
    }
    Some(substitute(predicate, exprs))
}

fn substitute(e: &Expr, exprs: &[(String, Expr)]) -> Expr {
    match e {
        Expr::Column(name) => exprs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, inner)| inner.clone())
            .unwrap_or_else(|| col(name.clone())),
        Expr::Literal(_) => e.clone(),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, exprs)),
            right: Box::new(substitute(right, exprs)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(substitute(operand, exprs)),
        },
        Expr::Call { func, args } => Expr::Call {
            func: *func,
            args: args.iter().map(|a| substitute(a, exprs)).collect(),
        },
        Expr::Coalesce(args) => Expr::Coalesce(args.iter().map(|a| substitute(a, exprs)).collect()),
        Expr::If {
            cond,
            then,
            otherwise,
        } => Expr::If {
            cond: Box::new(substitute(cond, exprs)),
            then: Box::new(substitute(then, exprs)),
            otherwise: Box::new(substitute(otherwise, exprs)),
        },
        Expr::Cast { expr, to } => Expr::Cast {
            expr: Box::new(substitute(expr, exprs)),
            to: *to,
        },
    }
}

fn push_down_filters(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    transform_up(plan, &|node: Arc<LogicalPlan>| {
        let LogicalPlan::Filter { input, predicate } = node.as_ref() else {
            return Ok(node);
        };
        Ok(match input.as_ref() {
            // Filter(Project(x)) -> Project(Filter(x)) when remappable.
            LogicalPlan::Project {
                input: proj_in,
                exprs,
                schema,
            } => match remap_through_project(predicate, exprs) {
                Some(remapped) => Arc::new(LogicalPlan::Project {
                    input: Arc::new(LogicalPlan::Filter {
                        input: Arc::clone(proj_in),
                        predicate: remapped,
                    }),
                    exprs: exprs.clone(),
                    schema: schema.clone(),
                }),
                None => node,
            },
            // Filter(Union(xs)) -> Union(Filter(x) for x in xs).
            LogicalPlan::Union { inputs } => Arc::new(LogicalPlan::Union {
                inputs: inputs
                    .iter()
                    .map(|i| {
                        Arc::new(LogicalPlan::Filter {
                            input: Arc::clone(i),
                            predicate: predicate.clone(),
                        })
                    })
                    .collect(),
            }),
            // Filter(Sort(x)) -> Sort(Filter(x)): sorting fewer rows is cheaper.
            LogicalPlan::Sort {
                input: sort_in,
                keys,
                descending,
            } => Arc::new(LogicalPlan::Sort {
                input: Arc::new(LogicalPlan::Filter {
                    input: Arc::clone(sort_in),
                    predicate: predicate.clone(),
                }),
                keys: keys.clone(),
                descending: *descending,
            }),
            _ => node,
        })
    })
}

// ---------------------------------------------------------------- rule 4

/// Insert a narrowing projection between a wide scan and a projection that
/// uses only some of its columns. The narrowing node is itself a Project
/// containing plain column refs, so pushdown and execution stay unchanged.
fn prune_projections(plan: &Arc<LogicalPlan>) -> Result<Arc<LogicalPlan>> {
    transform_up(plan, &|node: Arc<LogicalPlan>| {
        let LogicalPlan::Project {
            input,
            exprs,
            schema,
        } = node.as_ref()
        else {
            return Ok(node);
        };
        let LogicalPlan::Scan {
            dataset,
            schema: scan_schema,
        } = input.as_ref()
        else {
            return Ok(node);
        };
        let mut needed: Vec<&str> = Vec::new();
        for (_, e) in exprs {
            needed.extend(e.referenced_columns());
        }
        needed.sort_unstable();
        needed.dedup();
        if needed.len() >= scan_schema.len() {
            return Ok(node); // nothing to prune
        }
        let narrow_schema = scan_schema
            .project(&needed)
            .map_err(crate::error::FlowError::Data)?;
        let narrow = Arc::new(LogicalPlan::Project {
            input: Arc::new(LogicalPlan::Scan {
                dataset: dataset.clone(),
                schema: scan_schema.clone(),
            }),
            exprs: needed.iter().map(|&n| (n.to_owned(), col(n))).collect(),
            schema: narrow_schema,
        });
        // Avoid re-inserting forever: if the projection is already the
        // narrowing shape, leave it alone.
        if exprs.len() == needed.len()
            && exprs
                .iter()
                .all(|(n, e)| matches!(e, Expr::Column(c) if c == n))
        {
            return Ok(node);
        }
        Ok(Arc::new(LogicalPlan::Project {
            input: narrow,
            exprs: exprs.clone(),
            schema: schema.clone(),
        }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use crate::logical::{AggExpr, AggFunc, Dataflow};
    use toreador_data::generate::clickstream_schema;

    fn scan() -> Dataflow {
        Dataflow::scan("clicks", clickstream_schema())
    }

    #[test]
    fn folds_constant_arithmetic() {
        let e = lit(2i64).add(lit(3i64)).mul(col("price"));
        let f = fold_expr(&e);
        assert_eq!(f, lit(5i64).mul(col("price")));
    }

    #[test]
    fn folds_boolean_identities() {
        let e = col("price").gt(lit(1.0)).and(lit(true));
        assert_eq!(fold_expr(&e), col("price").gt(lit(1.0)));
        let e = col("price").gt(lit(1.0)).and(lit(false));
        assert_eq!(fold_expr(&e), lit(false));
        let e = lit(false).or(col("price").is_null());
        assert_eq!(fold_expr(&e), col("price").is_null());
    }

    #[test]
    fn merges_adjacent_filters() {
        let f = scan()
            .filter(col("price").gt(lit(1.0)))
            .unwrap()
            .filter(col("country").eq(lit("IT")))
            .unwrap();
        let opt = optimize(f.plan(), &OptimizerConfig::default()).unwrap();
        // One filter remains, containing AND.
        let mut filters = 0;
        fn count_filters(p: &LogicalPlan, n: &mut usize) {
            if matches!(p, LogicalPlan::Filter { .. }) {
                *n += 1;
            }
            for c in p.children() {
                count_filters(c, n);
            }
        }
        count_filters(&opt, &mut filters);
        assert_eq!(filters, 1);
        assert!(opt.explain().contains("AND"));
    }

    #[test]
    fn pushes_filter_below_rename_projection() {
        let f = scan()
            .project(vec![("c", col("country")), ("p", col("price"))])
            .unwrap()
            .filter(col("c").eq(lit("IT")))
            .unwrap();
        let opt = optimize(f.plan(), &OptimizerConfig::default()).unwrap();
        // After pushdown the top node is the projection.
        assert!(
            matches!(opt.as_ref(), LogicalPlan::Project { .. }),
            "{}",
            opt.explain()
        );
        let e = opt.explain();
        let filter_line = e.lines().position(|l| l.contains("Filter")).unwrap();
        let project_line = e.lines().position(|l| l.contains("Project")).unwrap();
        assert!(filter_line > project_line, "filter below projection:\n{e}");
        // And the predicate now references the underlying column name.
        assert!(e.contains("country = \"IT\""), "{e}");
    }

    #[test]
    fn does_not_push_through_computed_projection() {
        let f = scan()
            .project(vec![("doubled", col("price").mul(lit(2.0)))])
            .unwrap()
            .filter(col("doubled").gt(lit(10.0)))
            .unwrap();
        let opt = optimize(f.plan(), &OptimizerConfig::default()).unwrap();
        assert!(
            matches!(opt.as_ref(), LogicalPlan::Filter { .. }),
            "filter must stay on top:\n{}",
            opt.explain()
        );
    }

    #[test]
    fn pushes_filter_into_union_branches() {
        let a = scan();
        let b = scan();
        let f = a
            .union(vec![b])
            .unwrap()
            .filter(col("price").gt(lit(5.0)))
            .unwrap();
        let opt = optimize(f.plan(), &OptimizerConfig::default()).unwrap();
        if let LogicalPlan::Union { inputs } = opt.as_ref() {
            for i in inputs {
                assert!(matches!(i.as_ref(), LogicalPlan::Filter { .. }));
            }
        } else {
            panic!("expected union on top:\n{}", opt.explain());
        }
    }

    #[test]
    fn prunes_unused_scan_columns() {
        let f = scan().project(vec![("p", col("price"))]).unwrap();
        let opt = optimize(f.plan(), &OptimizerConfig::default()).unwrap();
        // Inner narrowing projection reads only `price`.
        let e = opt.explain();
        assert!(e.matches("Project").count() >= 2, "{e}");
        assert!(e.contains("price AS price"), "{e}");
    }

    #[test]
    fn disabled_config_is_identity() {
        let f = scan()
            .filter(col("price").gt(lit(1.0).add(lit(2.0))))
            .unwrap()
            .filter(col("country").eq(lit("IT")))
            .unwrap();
        let opt = optimize(f.plan(), &OptimizerConfig::disabled()).unwrap();
        assert_eq!(&opt, f.plan());
    }

    #[test]
    fn optimizer_preserves_schema() {
        let f = scan()
            .project(vec![("c", col("country")), ("p", col("price"))])
            .unwrap()
            .filter(col("p").gt(lit(2.0)))
            .unwrap()
            .aggregate(&["c"], vec![AggExpr::new(AggFunc::Mean, "p", "avg")])
            .unwrap();
        let opt = optimize(f.plan(), &OptimizerConfig::default()).unwrap();
        assert_eq!(opt.schema(), f.schema());
    }

    #[test]
    fn fixpoint_terminates_on_pathological_chain() {
        let mut f = scan();
        for i in 0..20 {
            f = f.filter(col("price").gt(lit(i as f64))).unwrap();
        }
        let opt = optimize(f.plan(), &OptimizerConfig::default()).unwrap();
        assert!(opt.node_count() < f.plan().node_count());
    }
}
