//! Task scheduling: a resilient scoped thread pool.
//!
//! The executor turns each (stage, partition) pair into a task closure; the
//! scheduler fans tasks out over `threads` crossbeam scoped workers and a
//! coordinator thread drives the stage's resilience policy (see
//! [`crate::resilience`]):
//!
//! - every attempt runs under `catch_unwind`, so a panicking task becomes a
//!   classified [`FlowError::TaskPanicked`] instead of collapsing the pool;
//! - the [`ChaosPlan`] may crash, delay, or panic an attempt before the body
//!   runs — deterministically, from the plan's seed;
//! - transient failures (crashes, panics, timeouts) are retried under the
//!   [`RetryPolicy`]'s attempt and budget limits, with deterministic
//!   backoff; permanent failures (plan bugs) trip cooperative cancellation
//!   so in-flight workers stop claiming tasks instead of finishing the
//!   doomed stage;
//! - a per-task deadline watchdog declares overdue attempts
//!   [`FlowError::TaskTimedOut`] and cancels them cooperatively;
//! - straggling tasks may get one speculative backup attempt — first
//!   completion wins, the loser is cancelled and recorded.
//!
//! Cancellation is cooperative: injected delays wake promptly, but a task
//! *body* cannot be interrupted mid-flight (scoped threads borrow the task
//! closures, so workers must join before the stage returns). A timed-out
//! body therefore stops counting — its retry races ahead — but still
//! occupies a worker until it returns.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use toreador_data::table::Table;

use crate::error::{FlowError, Result};
use crate::fault::{ChaosPlan, FaultKind, FaultPlan};
use crate::metrics::MetricsCollector;
use crate::resilience::{
    classify, ErrorClass, ResilienceConfig, RetryPolicy, RunControl, SpeculationPolicy,
};

/// How many worker threads to use and how the stage behaves under faults.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    pub threads: usize,
    pub resilience: ResilienceConfig,
}

impl SchedulerConfig {
    /// `threads` workers, no retries, no chaos.
    pub fn new(threads: usize) -> Self {
        SchedulerConfig {
            threads,
            resilience: ResilienceConfig::none(),
        }
    }

    pub fn with_resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Legacy shim: crash faults at the plan's rate with immediate retries
    /// up to its attempt budget.
    pub fn with_faults(self, faults: FaultPlan) -> Self {
        self.with_resilience(ResilienceConfig::from_fault_plan(&faults))
    }
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig::new(default_threads())
    }
}

/// A sensible default: available parallelism, capped at 8 (the engine is
/// laptop-scale by design).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Granularity of cancellable sleeps, µs: the longest a cancelled delay
/// keeps its worker occupied.
const TICK_US: u64 = 200;

/// How often the coordinator re-checks stragglers for speculation, µs.
const SPECULATION_TICK_US: u64 = 500;

/// One dispatched attempt, as seen by a worker.
struct AttemptSpec {
    task: usize,
    attempt: u32,
    cancel: Arc<AtomicBool>,
}

/// What a worker reports back for one attempt.
enum AttemptOutcome {
    Success(Table),
    /// Chaos crashed the attempt before the body ran.
    Crashed,
    /// The body (or an injected panic) panicked; isolated via catch_unwind.
    Panicked(String),
    /// The body returned an error.
    Failed(FlowError),
    /// The attempt was cancelled (or never started) and did no work.
    Aborted,
}

enum WorkerMsg {
    Started {
        task: usize,
        attempt: u32,
    },
    Finished {
        task: usize,
        attempt: u32,
        outcome: AttemptOutcome,
    },
}

/// Blocking MPMC work queue: std Mutex + Condvar (the vendored parking_lot
/// has no Condvar, and the vendored crossbeam Receiver is single-consumer).
struct WorkQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

struct QueueInner {
    items: VecDeque<AttemptSpec>,
    closed: bool,
}

impl WorkQueue {
    fn new() -> Self {
        WorkQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, spec: AttemptSpec) {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(!q.closed, "dispatch after close");
        q.items.push_back(spec);
        drop(q);
        self.ready.notify_one();
    }

    /// Block until an item is available or the queue is closed.
    fn pop(&self) -> Option<AttemptSpec> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue, waking all workers; returns the items that were
    /// never claimed.
    fn close(&self) -> Vec<AttemptSpec> {
        let mut q = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        let drained: Vec<AttemptSpec> = q.items.drain(..).collect();
        drop(q);
        self.ready.notify_all();
        drained
    }
}

/// State shared (by reference) with every worker.
struct Shared<'a, F> {
    stage: usize,
    tasks: &'a [F],
    queue: &'a WorkQueue,
    halt: &'a AtomicBool,
    metrics: &'a MetricsCollector,
    chaos: &'a ChaosPlan,
}

pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

/// Sleep `micros` in [`TICK_US`] chunks; false if cancelled or halted.
fn cancellable_sleep(micros: u64, cancel: &AtomicBool, halt: &AtomicBool) -> bool {
    let mut remaining = micros;
    while remaining > 0 {
        if cancel.load(Ordering::SeqCst) || halt.load(Ordering::SeqCst) {
            return false;
        }
        let chunk = remaining.min(TICK_US);
        std::thread::sleep(Duration::from_micros(chunk));
        remaining -= chunk;
    }
    !(cancel.load(Ordering::SeqCst) || halt.load(Ordering::SeqCst))
}

/// Worker loop: claim attempts until the queue closes. Once the halt flag
/// is up (the stage is doomed), claimed attempts are aborted unexecuted —
/// this is the cooperative-cancellation fast path.
fn run_worker<F>(shared: &Shared<'_, F>, tx: mpsc::Sender<WorkerMsg>)
where
    F: Fn() -> Result<Table> + Send + Sync,
{
    while let Some(spec) = shared.queue.pop() {
        let (task, attempt) = (spec.task, spec.attempt);
        if shared.halt.load(Ordering::SeqCst) {
            let _ = tx.send(WorkerMsg::Finished {
                task,
                attempt,
                outcome: AttemptOutcome::Aborted,
            });
            continue;
        }
        let _ = tx.send(WorkerMsg::Started { task, attempt });
        shared.metrics.task_started(shared.stage, task, attempt);
        let outcome = execute_attempt(shared, &spec);
        let ok = matches!(outcome, AttemptOutcome::Success(_));
        // Every started attempt finishes exactly once — timed-out,
        // panicked, and losing speculative attempts included.
        shared
            .metrics
            .task_finished(shared.stage, task, attempt, ok);
        let _ = tx.send(WorkerMsg::Finished {
            task,
            attempt,
            outcome,
        });
    }
}

/// Run one attempt: apply chaos, then the body under panic isolation.
fn execute_attempt<F>(shared: &Shared<'_, F>, spec: &AttemptSpec) -> AttemptOutcome
where
    F: Fn() -> Result<Table> + Send + Sync,
{
    let (stage, task, attempt) = (shared.stage, spec.task, spec.attempt);
    let mut inject_panic = false;
    match shared.chaos.fault_for(stage, task, attempt) {
        Some(FaultKind::Crash) => {
            shared.metrics.fault_injected(stage, task, attempt);
            return AttemptOutcome::Crashed;
        }
        Some(FaultKind::Panic) => {
            shared.metrics.fault_injected(stage, task, attempt);
            inject_panic = true;
        }
        Some(FaultKind::Delay { micros }) => {
            shared.metrics.fault_injected(stage, task, attempt);
            if !cancellable_sleep(micros, &spec.cancel, shared.halt) {
                return AttemptOutcome::Aborted;
            }
        }
        None => {}
    }
    if spec.cancel.load(Ordering::SeqCst) || shared.halt.load(Ordering::SeqCst) {
        return AttemptOutcome::Aborted;
    }
    match catch_unwind(AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected panic (chaos plan)");
        }
        (shared.tasks[task])()
    })) {
        Ok(Ok(table)) => AttemptOutcome::Success(table),
        Ok(Err(e)) => AttemptOutcome::Failed(e),
        Err(payload) => {
            let message = panic_message(payload);
            shared.metrics.task_panicked(stage, task, attempt, &message);
            AttemptOutcome::Panicked(message)
        }
    }
}

/// Why an attempt did not produce a result.
enum Failure {
    Crashed,
    Panicked(String),
    TimedOut,
    Body(FlowError),
    Aborted,
}

struct RunningAttempt {
    attempt: u32,
    cancel: Arc<AtomicBool>,
    /// Set when the worker reports the attempt started.
    started_at: Option<Instant>,
    /// Timed out or lost a speculation race: its outcome is ignored (a late
    /// success is still accepted — same closure, same result).
    dead: bool,
    speculative: bool,
}

#[derive(Default)]
struct TaskState {
    /// Attempts dispatched so far (speculative included).
    attempts_used: u32,
    completed: bool,
    /// One backup per task.
    speculated: bool,
    /// A retry is queued or waiting out its backoff.
    retry_pending: bool,
    running: Vec<RunningAttempt>,
}

/// Coordinator: owns the stage's retry/deadline/speculation state machine.
/// Workers only execute; every decision lives here, on one thread.
struct Coordinator<'a> {
    stage: usize,
    policy: RetryPolicy,
    deadline_us: Option<u64>,
    speculation: Option<SpeculationPolicy>,
    metrics: &'a MetricsCollector,
    control: &'a RunControl,
    states: Vec<TaskState>,
    slots: Vec<Option<Table>>,
    /// Durations of completed attempts, for the speculation median.
    durations_us: Vec<u64>,
    /// Pending backoff releases: (due, task, attempt).
    backoff: BinaryHeap<Reverse<(Instant, usize, u32)>>,
    in_flight: usize,
    completed: usize,
    stage_retries_used: u32,
    error: Option<FlowError>,
}

impl<'a> Coordinator<'a> {
    fn new(
        stage: usize,
        resilience: &ResilienceConfig,
        n: usize,
        metrics: &'a MetricsCollector,
        control: &'a RunControl,
    ) -> Self {
        let mut states = Vec::with_capacity(n);
        states.resize_with(n, TaskState::default);
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        Coordinator {
            stage,
            policy: resilience.retry,
            deadline_us: resilience.deadline.map(|d| d.timeout_us),
            speculation: resilience.speculation,
            metrics,
            control,
            states,
            slots,
            durations_us: Vec::new(),
            backoff: BinaryHeap::new(),
            in_flight: 0,
            completed: 0,
            stage_retries_used: 0,
            error: None,
        }
    }

    fn done_issuing(&self) -> bool {
        self.completed == self.slots.len() || self.error.is_some()
    }

    fn dispatch(&mut self, queue: &WorkQueue, task: usize, attempt: u32, speculative: bool) {
        let cancel = Arc::new(AtomicBool::new(false));
        let st = &mut self.states[task];
        st.running.push(RunningAttempt {
            attempt,
            cancel: Arc::clone(&cancel),
            started_at: None,
            dead: false,
            speculative,
        });
        st.attempts_used = st.attempts_used.max(attempt + 1);
        self.in_flight += 1;
        queue.push(AttemptSpec {
            task,
            attempt,
            cancel,
        });
    }

    /// A backoff delay elapsed (or was zero): dispatch the retry now.
    fn release_retry(&mut self, queue: &WorkQueue, task: usize, attempt: u32) {
        self.states[task].retry_pending = false;
        if self.error.is_some() || self.states[task].completed {
            return;
        }
        self.metrics.task_retried(self.stage, task, attempt);
        self.dispatch(queue, task, attempt, false);
    }

    /// Latest possible instant to wake even if no worker reports anything.
    fn next_timeout(&self, now: Instant) -> Option<Duration> {
        // Once the stage has failed we are only draining in-flight attempts;
        // overdue timers would otherwise busy-spin the coordinator.
        if self.error.is_some() {
            return None;
        }
        let mut next: Option<Instant> = None;
        if let Some(Reverse((when, _, _))) = self.backoff.peek() {
            next = Some(*when);
        }
        if let Some(dl) = self.deadline_us {
            for st in &self.states {
                if st.completed {
                    continue;
                }
                for r in &st.running {
                    if r.dead {
                        continue;
                    }
                    if let Some(started) = r.started_at {
                        let expiry = started + Duration::from_micros(dl);
                        next = Some(next.map_or(expiry, |n| n.min(expiry)));
                    }
                }
            }
        }
        if let Some(spec) = self.speculation {
            if self.in_flight > 0 && self.durations_us.len() >= spec.min_samples {
                let tick = now + Duration::from_micros(SPECULATION_TICK_US);
                next = Some(next.map_or(tick, |n| n.min(tick)));
            }
        }
        // Floor the wait so an already-due timer cannot busy-spin recv.
        next.map(|n| {
            n.saturating_duration_since(now)
                .max(Duration::from_micros(50))
        })
    }

    fn handle(&mut self, msg: WorkerMsg, queue: &WorkQueue, halt: &AtomicBool) {
        match msg {
            WorkerMsg::Started { task, attempt } => {
                if let Some(r) = self.states[task]
                    .running
                    .iter_mut()
                    .find(|r| r.attempt == attempt)
                {
                    r.started_at = Some(Instant::now());
                }
            }
            WorkerMsg::Finished {
                task,
                attempt,
                outcome,
            } => {
                self.in_flight -= 1;
                let st = &mut self.states[task];
                let entry = match st.running.iter().position(|r| r.attempt == attempt) {
                    Some(pos) => st.running.remove(pos),
                    None => return,
                };
                match outcome {
                    AttemptOutcome::Success(table) => self.on_success(task, entry, table),
                    AttemptOutcome::Crashed => {
                        self.on_failure(task, entry, Failure::Crashed, queue, halt)
                    }
                    AttemptOutcome::Panicked(msg) => {
                        self.on_failure(task, entry, Failure::Panicked(msg), queue, halt)
                    }
                    AttemptOutcome::Failed(e) => {
                        self.on_failure(task, entry, Failure::Body(e), queue, halt)
                    }
                    AttemptOutcome::Aborted => {
                        self.on_failure(task, entry, Failure::Aborted, queue, halt)
                    }
                }
            }
        }
    }

    /// First completion wins — even a late success from an attempt the
    /// watchdog had written off (same closure, same result).
    fn on_success(&mut self, task: usize, entry: RunningAttempt, table: Table) {
        let st = &mut self.states[task];
        if self.error.is_some() || st.completed {
            return;
        }
        st.completed = true;
        st.retry_pending = false;
        self.completed += 1;
        self.slots[task] = Some(table);
        if let Some(started) = entry.started_at {
            self.durations_us.push(started.elapsed().as_micros() as u64);
        }
        // Settle any speculation race and cancel the other attempts.
        let raced = entry.speculative || st.running.iter().any(|r| r.speculative);
        if raced {
            self.metrics
                .speculative_won(self.stage, task, entry.attempt);
        }
        for r in &mut st.running {
            r.cancel.store(true, Ordering::SeqCst);
            if raced && !r.dead {
                self.metrics.speculative_lost(self.stage, task, r.attempt);
            }
            r.dead = true;
        }
    }

    fn on_failure(
        &mut self,
        task: usize,
        entry: RunningAttempt,
        failure: Failure,
        queue: &WorkQueue,
        halt: &AtomicBool,
    ) {
        if self.error.is_some() || self.states[task].completed || entry.dead {
            return;
        }
        self.resolve_failure(task, failure, queue, halt);
    }

    /// Decide whether a failed task gets another attempt or dooms the stage.
    fn resolve_failure(
        &mut self,
        task: usize,
        failure: Failure,
        queue: &WorkQueue,
        halt: &AtomicBool,
    ) {
        let transient = match &failure {
            Failure::Body(e) => classify(e) == ErrorClass::Transient,
            _ => true,
        };
        if transient {
            let st = &self.states[task];
            if st.retry_pending || st.running.iter().any(|r| !r.dead) {
                // A recovery path (retry or surviving attempt) is already
                // in motion for this task.
                return;
            }
            let within_attempts = st.attempts_used < self.policy.max_attempts;
            let within_stage = self
                .policy
                .stage_retry_budget
                .map_or(true, |b| self.stage_retries_used < b);
            if within_attempts
                && within_stage
                && self.control.try_reserve_retry(self.policy.run_retry_budget)
            {
                self.stage_retries_used += 1;
                let attempt = st.attempts_used;
                let delay = self.policy.delay_us(self.stage, task, attempt);
                self.states[task].retry_pending = true;
                if delay == 0 {
                    self.release_retry(queue, task, attempt);
                } else {
                    self.metrics
                        .backoff_scheduled(self.stage, task, attempt, delay);
                    self.backoff.push(Reverse((
                        Instant::now() + Duration::from_micros(delay),
                        task,
                        attempt,
                    )));
                }
                return;
            }
        }
        let err = self.final_error(task, failure);
        self.fail_stage(err, queue, halt);
    }

    fn final_error(&self, task: usize, failure: Failure) -> FlowError {
        let attempts = self.states[task].attempts_used;
        match failure {
            Failure::Crashed => FlowError::TaskFailed {
                stage: self.stage,
                partition: task,
                attempts,
                message: "injected fault".to_owned(),
            },
            Failure::Panicked(message) => FlowError::TaskPanicked {
                stage: self.stage,
                partition: task,
                attempts,
                message,
            },
            Failure::TimedOut => FlowError::TaskTimedOut {
                stage: self.stage,
                partition: task,
                attempts,
                deadline_us: self.deadline_us.unwrap_or(0),
            },
            Failure::Body(e) => e,
            Failure::Aborted => FlowError::Cancelled("task attempt aborted".to_owned()),
        }
    }

    /// The stage is doomed: record it, trip run-wide cancellation, raise the
    /// halt flag, cancel running attempts, and drop unclaimed work.
    fn fail_stage(&mut self, err: FlowError, queue: &WorkQueue, halt: &AtomicBool) {
        if self.error.is_some() {
            return;
        }
        self.metrics.run_cancelled(self.stage, &err.to_string());
        self.control.cancel(err.to_string());
        self.error = Some(err);
        halt.store(true, Ordering::SeqCst);
        self.backoff.clear();
        for st in &self.states {
            for r in &st.running {
                r.cancel.store(true, Ordering::SeqCst);
            }
        }
        // Unclaimed attempts never ran and never will: uncount them.
        let dropped = queue.close();
        self.in_flight -= dropped.len();
    }

    /// Periodic duties: expire deadlines, launch speculation.
    fn on_tick(&mut self, queue: &WorkQueue, halt: &AtomicBool) {
        if self.error.is_some() {
            return;
        }
        // An external cancel — operator interrupt, engine teardown, a
        // sibling stage's permanent failure — trips the shared RunControl
        // from outside this wave. Honour it cooperatively: stop claiming,
        // cancel running attempts, fail with the canceller's reason
        // (control.cancel is first-reason-wins, so re-raising keeps it).
        if self.control.is_cancelled() {
            let reason = self
                .control
                .reason()
                .unwrap_or_else(|| "run cancelled".to_owned());
            self.fail_stage(FlowError::Cancelled(reason), queue, halt);
            return;
        }
        if let Some(dl) = self.deadline_us {
            let mut expired: Vec<(usize, u32)> = Vec::new();
            for (task, st) in self.states.iter_mut().enumerate() {
                if st.completed {
                    continue;
                }
                for r in st.running.iter_mut() {
                    if r.dead {
                        continue;
                    }
                    if let Some(started) = r.started_at {
                        if started.elapsed().as_micros() as u64 >= dl {
                            r.dead = true;
                            r.cancel.store(true, Ordering::SeqCst);
                            expired.push((task, r.attempt));
                        }
                    }
                }
            }
            for (task, attempt) in expired {
                self.metrics.task_timed_out(self.stage, task, attempt, dl);
                self.resolve_failure(task, Failure::TimedOut, queue, halt);
                if self.error.is_some() {
                    return;
                }
            }
        }
        let Some(spec) = self.speculation else {
            return;
        };
        if self.durations_us.len() < spec.min_samples {
            return;
        }
        let mut sorted = self.durations_us.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let threshold = ((median as f64) * spec.factor).max(TICK_US as f64) as u64;
        let mut launches: Vec<(usize, u32)> = Vec::new();
        for (task, st) in self.states.iter_mut().enumerate() {
            if st.completed || st.speculated || st.retry_pending {
                continue;
            }
            let mut live = st.running.iter().filter(|r| !r.dead);
            let (Some(only), None) = (live.next(), live.next()) else {
                continue;
            };
            if only.speculative {
                continue;
            }
            if let Some(started) = only.started_at {
                if started.elapsed().as_micros() as u64 >= threshold {
                    st.speculated = true;
                    launches.push((task, st.attempts_used));
                }
            }
        }
        for (task, attempt) in launches {
            self.metrics.speculative_launched(self.stage, task, attempt);
            self.dispatch(queue, task, attempt, true);
        }
    }
}

/// Run `tasks` (one per partition of `stage`) across the pool, returning
/// outputs in task order. Standalone form: uses a run control local to this
/// stage. The engine threads one [`RunControl`] through all stages of a run
/// via [`run_stage_controlled`].
pub fn run_stage<F>(
    config: &SchedulerConfig,
    metrics: &MetricsCollector,
    stage: usize,
    tasks: Vec<F>,
) -> Result<Vec<Table>>
where
    F: Fn() -> Result<Table> + Send + Sync,
{
    let control = RunControl::new();
    run_stage_controlled(config, metrics, &control, stage, tasks)
}

/// [`run_stage`] with a shared, run-wide [`RunControl`]: a stage refuses to
/// start once the run is cancelled, and run-level retry budgets accumulate
/// across stages.
pub fn run_stage_controlled<F>(
    config: &SchedulerConfig,
    metrics: &MetricsCollector,
    control: &RunControl,
    stage: usize,
    tasks: Vec<F>,
) -> Result<Vec<Table>>
where
    F: Fn() -> Result<Table> + Send + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if control.is_cancelled() {
        return Err(FlowError::Cancelled(
            control
                .reason()
                .unwrap_or_else(|| "run cancelled".to_owned()),
        ));
    }
    // Deadlines and speculation need spare workers: a hung body cannot be
    // interrupted, so its replacement attempt must run on another thread.
    // Skipping the task-count cap is not enough — with every configured
    // worker pinned under a hung attempt (n >= threads), a wave that has
    // both features enabled used to drop the sizing hint entirely and the
    // replacement attempt queued behind the very straggler it was meant to
    // rescue. Add the hint on top of the pool instead.
    let spare = config.resilience.spare_worker_hint();
    let mut threads = config.threads.max(1);
    if spare == 0 {
        threads = threads.min(n);
    } else {
        threads += spare;
    }
    let queue = WorkQueue::new();
    let halt = AtomicBool::new(false);
    let (done_tx, done_rx) = mpsc::channel::<WorkerMsg>();
    let shared = Shared {
        stage,
        tasks: &tasks,
        queue: &queue,
        halt: &halt,
        metrics,
        chaos: &config.resilience.chaos,
    };
    let scope_result = crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = done_tx.clone();
            let shared = &shared;
            scope.spawn(move |_| run_worker(shared, tx));
        }
        drop(done_tx);
        let mut co = Coordinator::new(stage, &config.resilience, n, metrics, control);
        for task in 0..n {
            co.dispatch(&queue, task, 0, false);
        }
        loop {
            // Release retries whose backoff has elapsed.
            let now = Instant::now();
            while let Some(&Reverse((when, task, attempt))) = co.backoff.peek() {
                if when > now {
                    break;
                }
                co.backoff.pop();
                co.release_retry(&queue, task, attempt);
            }
            if co.done_issuing() && co.in_flight == 0 {
                break;
            }
            if co.in_flight == 0 && co.backoff.is_empty() {
                // Nothing running, nothing scheduled, not done: a logic bug
                // must fail loudly rather than hang the run.
                co.fail_stage(
                    FlowError::Cancelled("scheduler stalled with no work in flight".to_owned()),
                    &queue,
                    &halt,
                );
                continue;
            }
            let msg = match co.next_timeout(now) {
                None => match done_rx.recv() {
                    Ok(m) => m,
                    Err(_) => {
                        co.fail_stage(
                            FlowError::Cancelled("worker pool disconnected".to_owned()),
                            &queue,
                            &halt,
                        );
                        continue;
                    }
                },
                Some(wait) => match done_rx.recv_timeout(wait) {
                    Ok(m) => m,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        co.on_tick(&queue, &halt);
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        co.fail_stage(
                            FlowError::Cancelled("worker pool disconnected".to_owned()),
                            &queue,
                            &halt,
                        );
                        continue;
                    }
                },
            };
            co.handle(msg, &queue, &halt);
            co.on_tick(&queue, &halt);
        }
        queue.close();
        co
    });
    let co = match scope_result {
        Ok(co) => co,
        Err(_) => {
            return Err(FlowError::Cancelled("worker thread panicked".to_owned()));
        }
    };
    if let Some(err) = co.error {
        return Err(err);
    }
    let mut out = Vec::with_capacity(n);
    for slot in co.slots {
        match slot {
            Some(table) => out.push(table),
            None => return Err(FlowError::Cancelled("task result missing".to_owned())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use toreador_data::generate::random_table;

    use crate::fault::TargetedFault;
    use crate::resilience::TaskDeadline;
    use crate::trace::TraceEventKind;

    fn make_tasks(n: usize) -> Vec<impl Fn() -> Result<Table> + Send + Sync> {
        (0..n)
            .map(|i| move || Ok(random_table(10 + i, 2, i as u64)))
            .collect()
    }

    #[test]
    fn results_arrive_in_task_order() {
        let config = SchedulerConfig::new(4);
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, make_tasks(9)).unwrap();
        assert_eq!(out.len(), 9);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.num_rows(), 10 + i);
        }
    }

    #[test]
    fn empty_task_list_is_fine() {
        let config = SchedulerConfig::default();
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, Vec::<fn() -> Result<Table>>::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_still_completes() {
        let config = SchedulerConfig::new(1);
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, make_tasks(5)).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn injected_faults_are_retried_and_counted() {
        // 50% failure rate with a generous budget: all tasks eventually pass.
        let config = SchedulerConfig::new(4).with_faults(FaultPlan::with_rate(0.5, 9, 20));
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 3, make_tasks(16)).unwrap();
        assert_eq!(out.len(), 16);
        let m = metrics.finish(std::time::Duration::ZERO, 0, 0);
        assert!(m.task_retries > 0, "some retries expected at 50% rate");
        assert!(m.tasks_run >= 16 + m.task_retries);
    }

    #[test]
    fn exhausted_retry_budget_fails_the_stage() {
        let config = SchedulerConfig::new(2).with_faults(FaultPlan::with_rate(1.0, 0, 3));
        let metrics = MetricsCollector::new();
        let err = run_stage(&config, &metrics, 1, make_tasks(4)).unwrap_err();
        match err {
            FlowError::TaskFailed {
                stage, attempts, ..
            } => {
                assert_eq!(stage, 1);
                assert_eq!(attempts, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn task_errors_propagate_without_retry() {
        let config = SchedulerConfig::new(2).with_faults(FaultPlan::with_rate(0.0, 0, 5));
        let metrics = MetricsCollector::new();
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = vec![
            Box::new(|| Ok(random_table(5, 2, 0))),
            Box::new(|| Err(FlowError::Plan("deliberate".to_owned()))),
        ];
        let err = run_stage(&config, &metrics, 0, tasks).unwrap_err();
        assert!(matches!(err, FlowError::Plan(_)));
        let m = metrics.finish(std::time::Duration::ZERO, 0, 0);
        assert_eq!(m.task_retries, 0);
    }

    #[test]
    fn more_threads_than_tasks_is_safe() {
        let config = SchedulerConfig::new(16);
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, make_tasks(2)).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn permanent_failure_stops_workers_claiming_tasks() {
        // Task 0 fails permanently at once; the other 63 sleep 1ms each. If
        // cancellation is cooperative, workers stop claiming long before all
        // 63 sleepers execute.
        let config = SchedulerConfig::new(4);
        let metrics = MetricsCollector::new();
        let executed = AtomicUsize::new(0);
        let executed_ref = &executed;
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = (0..64)
            .map(|i| -> Box<dyn Fn() -> Result<Table> + Send + Sync> {
                if i == 0 {
                    Box::new(|| Err(FlowError::Plan("doomed".to_owned())))
                } else {
                    Box::new(move || {
                        executed_ref.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(1));
                        Ok(random_table(3, 1, i as u64))
                    })
                }
            })
            .collect();
        let err = run_stage(&config, &metrics, 0, tasks).unwrap_err();
        assert!(matches!(err, FlowError::Plan(_)));
        let ran = executed.load(Ordering::SeqCst);
        assert!(
            ran < 63,
            "cancellation must prevent the doomed stage from running all tasks (ran {ran})"
        );
        // The journal records the cancellation and stays well formed.
        let trace = metrics.trace().snapshot();
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::RunCancelled { .. })));
        let spans = trace.task_spans();
        let starts = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::TaskStarted { .. }))
            .count();
        assert_eq!(spans.len(), starts, "every started attempt finished");
    }

    #[test]
    fn panicking_task_fails_run_with_classified_error() {
        let config = SchedulerConfig::new(4);
        let metrics = MetricsCollector::new();
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = vec![
            Box::new(|| Ok(random_table(5, 1, 0))),
            Box::new(|| panic!("task bug")),
        ];
        let err = run_stage(&config, &metrics, 2, tasks).unwrap_err();
        match err {
            FlowError::TaskPanicked {
                stage,
                partition,
                message,
                ..
            } => {
                assert_eq!(stage, 2);
                assert_eq!(partition, 1);
                assert!(message.contains("task bug"));
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        // The pool is not poisoned: the same scheduler config runs again.
        let out = run_stage(&config, &metrics, 3, make_tasks(4)).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn panicking_once_task_succeeds_on_retry() {
        let config = SchedulerConfig::new(2)
            .with_resilience(ResilienceConfig::none().with_retry(RetryPolicy::immediate(3)));
        let metrics = MetricsCollector::new();
        let calls = AtomicUsize::new(0);
        let calls_ref = &calls;
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = vec![Box::new(move || {
            if calls_ref.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky once");
            }
            Ok(random_table(7, 1, 1))
        })];
        let out = run_stage(&config, &metrics, 0, tasks).unwrap();
        assert_eq!(out[0].num_rows(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let trace = metrics.trace().snapshot();
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::TaskPanicked { .. })));
        assert_eq!(trace.resilience_totals().retries, 1);
    }

    #[test]
    fn backoff_delays_retries_and_is_recorded() {
        let config = SchedulerConfig::new(1).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::fixed(2, 30_000))
                .with_chaos(ChaosPlan::none().with_targeted(TargetedFault {
                    stage: 0,
                    partition: 0,
                    attempt: 0,
                    kind: FaultKind::Crash,
                })),
        );
        let metrics = MetricsCollector::new();
        let start = Instant::now();
        let out = run_stage(&config, &metrics, 0, make_tasks(1)).unwrap();
        assert_eq!(out.len(), 1);
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "the retry must wait out its backoff"
        );
        let trace = metrics.trace().snapshot();
        let scheduled: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::BackoffScheduled { delay_us, .. } => Some(delay_us),
                _ => None,
            })
            .collect();
        assert_eq!(scheduled, vec![30_000]);
        assert_eq!(trace.resilience_totals().backoff_us, 30_000);
    }

    #[test]
    fn stage_retry_budget_caps_total_retries() {
        // Every attempt crashes; per-task budget allows 10 attempts but the
        // stage only funds 2 retries, so the stage fails after 3 attempts.
        let config = SchedulerConfig::new(1).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(10).with_stage_budget(2))
                .with_chaos(ChaosPlan::crashes(1.0, 0)),
        );
        let metrics = MetricsCollector::new();
        let err = run_stage(&config, &metrics, 0, make_tasks(1)).unwrap_err();
        match err {
            FlowError::TaskFailed { attempts, .. } => assert_eq!(attempts, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn run_budget_accumulates_across_stages_and_cancellation_sticks() {
        let config = SchedulerConfig::new(2).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(10).with_run_budget(2))
                .with_chaos(ChaosPlan::crashes(1.0, 0)),
        );
        let metrics = MetricsCollector::new();
        let control = RunControl::new();
        let err = run_stage_controlled(&config, &metrics, &control, 0, make_tasks(1)).unwrap_err();
        assert!(matches!(err, FlowError::TaskFailed { attempts: 3, .. }));
        assert_eq!(control.run_retries_used(), 2);
        assert!(control.is_cancelled());
        // A later stage on the same run refuses to start.
        let err = run_stage_controlled(&config, &metrics, &control, 1, make_tasks(4)).unwrap_err();
        assert!(matches!(err, FlowError::Cancelled(_)));
    }

    #[test]
    fn deadline_turns_hung_attempt_into_timeout_and_retry_succeeds() {
        // First invocation stalls well past the deadline; the retry is
        // instant. The stage completes and records exactly one timeout.
        let config = SchedulerConfig::new(2).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(3))
                .with_deadline(TaskDeadline::from_millis(20)),
        );
        let metrics = MetricsCollector::new();
        let calls = AtomicUsize::new(0);
        let calls_ref = &calls;
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = vec![Box::new(move || {
            if calls_ref.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(120));
            }
            Ok(random_table(4, 1, 9))
        })];
        let out = run_stage(&config, &metrics, 0, tasks).unwrap();
        assert_eq!(out.len(), 1);
        let trace = metrics.trace().snapshot();
        let totals = trace.resilience_totals();
        assert_eq!(totals.timeouts, 1, "the stalled attempt timed out");
        assert!(totals.retries >= 1);
        // The timed-out attempt still closed its span.
        let starts = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::TaskStarted { .. }))
            .count();
        assert_eq!(trace.task_spans().len(), starts);
    }

    #[test]
    fn deadline_exhaustion_fails_cleanly_with_timeout_error() {
        let config = SchedulerConfig::new(2).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(2))
                .with_deadline(TaskDeadline::from_millis(10)),
        );
        let metrics = MetricsCollector::new();
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = vec![Box::new(move || {
            std::thread::sleep(Duration::from_millis(80));
            Ok(random_table(4, 1, 9))
        })];
        let err = run_stage(&config, &metrics, 5, tasks).unwrap_err();
        match err {
            FlowError::TaskTimedOut {
                stage, deadline_us, ..
            } => {
                assert_eq!(stage, 5);
                assert_eq!(deadline_us, 10_000);
            }
            other => panic!("expected TaskTimedOut, got {other:?}"),
        }
    }

    #[test]
    fn speculation_rescues_a_delayed_straggler() {
        // Chaos delays partition 7's first attempt by 400ms; everything
        // else is instant. Speculation launches a backup (attempt 1, which
        // the targeted fault does not hit) that wins, and the cancelled
        // original wakes promptly — the stage must finish far sooner than
        // the injected delay.
        let config = SchedulerConfig::new(4).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(2))
                .with_speculation(SpeculationPolicy::new(3.0).with_min_samples(4))
                .with_chaos(ChaosPlan::none().with_targeted(TargetedFault {
                    stage: 0,
                    partition: 7,
                    attempt: 0,
                    kind: FaultKind::Delay { micros: 400_000 },
                })),
        );
        let metrics = MetricsCollector::new();
        let start = Instant::now();
        let out = run_stage(&config, &metrics, 0, make_tasks(16)).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(out.len(), 16);
        assert!(
            elapsed < Duration::from_millis(300),
            "speculation must beat the 400ms straggler (took {elapsed:?})"
        );
        let totals = metrics.trace().snapshot().resilience_totals();
        assert_eq!(totals.speculative_launched, 1);
        assert_eq!(totals.speculative_won, 1);
    }

    #[test]
    fn spare_workers_survive_deadline_plus_speculation() {
        // Regression: with deadline AND speculation enabled and every
        // configured worker pinned under a hung first attempt (n == threads),
        // the coordinator used to drop the spare-worker sizing hint, so the
        // timeout-replacement attempts queued behind the very stragglers
        // they were meant to rescue. The fix adds the hint on top of the
        // pool; the retries must start long before the 300ms hangs clear.
        let config = SchedulerConfig::new(4).with_resilience(
            ResilienceConfig::none()
                .with_retry(RetryPolicy::immediate(3))
                .with_deadline(TaskDeadline::from_millis(25))
                // Enabled (that is the regression trigger) but effectively
                // inert: the median is never trusted with min_samples 100.
                .with_speculation(SpeculationPolicy::new(10.0).with_min_samples(100)),
        );
        let metrics = MetricsCollector::new();
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = (0..4)
            .map(|_| {
                let calls = AtomicUsize::new(0);
                Box::new(move || {
                    if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                        std::thread::sleep(Duration::from_millis(300));
                    }
                    Ok(random_table(4, 1, 9))
                }) as Box<dyn Fn() -> Result<Table> + Send + Sync>
            })
            .collect();
        let out = run_stage(&config, &metrics, 0, tasks).unwrap();
        assert_eq!(out.len(), 4);
        let trace = metrics.trace().snapshot();
        assert_eq!(trace.resilience_totals().timeouts, 4);
        // Elapsed time cannot show the fix (the scope join still waits out
        // the hung sleeps), so assert on journal timestamps: every retry
        // attempt must have STARTED while the first attempts were still
        // hung, which is only possible on the spare workers.
        for p in 0..4usize {
            let retry_start = trace
                .events
                .iter()
                .find_map(|e| match e.kind {
                    TraceEventKind::TaskStarted {
                        partition, attempt, ..
                    } if partition == p && attempt >= 1 => Some(e.at_us),
                    _ => None,
                })
                .expect("each timed-out task must get a replacement attempt");
            assert!(
                retry_start < 150_000,
                "partition {p} retry started at {retry_start}us — it queued behind the hung workers"
            );
        }
    }
}
