//! Task scheduling: a scoped thread pool with retry-on-injected-fault.
//!
//! The executor turns each (stage, partition) pair into a [`Task`] closure;
//! the scheduler fans tasks out over `threads` crossbeam scoped threads,
//! applying the [`FaultPlan`] before every attempt and retrying failed
//! attempts up to the plan's budget — the same at-least-once task semantics
//! Spark's DAG scheduler provides.

use std::sync::atomic::{AtomicUsize, Ordering};

use toreador_data::table::Table;

use crate::error::{FlowError, Result};
use crate::fault::FaultPlan;
use crate::metrics::MetricsCollector;

/// How many worker threads to use and how tasks behave under faults.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    pub threads: usize,
    pub faults: FaultPlan,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: default_threads(),
            faults: FaultPlan::none(),
        }
    }
}

/// A sensible default: available parallelism, capped at 8 (the engine is
/// laptop-scale by design).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// Run `tasks` (one per partition of `stage`) across the pool, returning
/// outputs in task order.
///
/// Each task is attempted up to `faults.max_attempts` times; an injected
/// fault *before* the attempt models a lost executor. Real errors from the
/// task body are not retried — they are deterministic plan bugs, and
/// retrying them would just waste the budget.
pub fn run_stage<F>(
    config: &SchedulerConfig,
    metrics: &MetricsCollector,
    stage: usize,
    tasks: Vec<F>,
) -> Result<Vec<Table>>
where
    F: Fn() -> Result<Table> + Send + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = config.threads.max(1).min(n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<Table>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // Hand each worker a disjoint view of the result slots through a raw
    // region? No — keep it simple and safe: workers send (index, result)
    // over a channel and the main thread places them.
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Result<Table>)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let tasks = &tasks;
            let faults = config.faults;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut attempt = 0u32;
                let outcome = loop {
                    metrics.task_started(stage, i, attempt);
                    if faults.should_fail(stage, i, attempt) {
                        metrics.fault_injected(stage, i, attempt);
                        metrics.task_finished(stage, i, attempt, false);
                        attempt += 1;
                        if attempt >= faults.max_attempts {
                            break Err(FlowError::TaskFailed {
                                stage,
                                partition: i,
                                attempts: attempt,
                                message: "injected fault".to_owned(),
                            });
                        }
                        metrics.task_retried(stage, i, attempt);
                        continue;
                    }
                    let result = tasks[i]();
                    metrics.task_finished(stage, i, attempt, result.is_ok());
                    break result;
                };
                // Receiver only disconnects after an early error; stop then.
                if tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut received = 0;
        while received < n {
            match rx.recv() {
                Ok((i, result)) => {
                    slots[i] = Some(result);
                    received += 1;
                }
                Err(_) => break, // all workers exited
            }
        }
    })
    .map_err(|_| FlowError::Cancelled("worker thread panicked".to_owned()))?;

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot {
            Some(Ok(t)) => out.push(t),
            Some(Err(e)) => return Err(e),
            None => return Err(FlowError::Cancelled("task result missing".to_owned())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use toreador_data::generate::random_table;

    fn make_tasks(n: usize) -> Vec<impl Fn() -> Result<Table> + Send + Sync> {
        (0..n)
            .map(|i| move || Ok(random_table(10 + i, 2, i as u64)))
            .collect()
    }

    #[test]
    fn results_arrive_in_task_order() {
        let config = SchedulerConfig {
            threads: 4,
            faults: FaultPlan::none(),
        };
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, make_tasks(9)).unwrap();
        assert_eq!(out.len(), 9);
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.num_rows(), 10 + i);
        }
    }

    #[test]
    fn empty_task_list_is_fine() {
        let config = SchedulerConfig::default();
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, Vec::<fn() -> Result<Table>>::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_still_completes() {
        let config = SchedulerConfig {
            threads: 1,
            faults: FaultPlan::none(),
        };
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, make_tasks(5)).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn injected_faults_are_retried_and_counted() {
        // 50% failure rate with a generous budget: all tasks eventually pass.
        let config = SchedulerConfig {
            threads: 4,
            faults: FaultPlan::with_rate(0.5, 9, 20),
        };
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 3, make_tasks(16)).unwrap();
        assert_eq!(out.len(), 16);
        let m = metrics.finish(std::time::Duration::ZERO, 0, 0);
        assert!(m.task_retries > 0, "some retries expected at 50% rate");
        assert!(m.tasks_run >= 16 + m.task_retries);
    }

    #[test]
    fn exhausted_retry_budget_fails_the_stage() {
        let config = SchedulerConfig {
            threads: 2,
            faults: FaultPlan::with_rate(1.0, 0, 3),
        };
        let metrics = MetricsCollector::new();
        let err = run_stage(&config, &metrics, 1, make_tasks(4)).unwrap_err();
        match err {
            FlowError::TaskFailed {
                stage, attempts, ..
            } => {
                assert_eq!(stage, 1);
                assert_eq!(attempts, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn task_errors_propagate_without_retry() {
        let config = SchedulerConfig {
            threads: 2,
            faults: FaultPlan::with_rate(0.0, 0, 5),
        };
        let metrics = MetricsCollector::new();
        let tasks: Vec<Box<dyn Fn() -> Result<Table> + Send + Sync>> = vec![
            Box::new(|| Ok(random_table(5, 2, 0))),
            Box::new(|| Err(FlowError::Plan("deliberate".to_owned()))),
        ];
        let err = run_stage(&config, &metrics, 0, tasks).unwrap_err();
        assert!(matches!(err, FlowError::Plan(_)));
        let m = metrics.finish(std::time::Duration::ZERO, 0, 0);
        assert_eq!(m.task_retries, 0);
    }

    #[test]
    fn more_threads_than_tasks_is_safe() {
        let config = SchedulerConfig {
            threads: 16,
            faults: FaultPlan::none(),
        };
        let metrics = MetricsCollector::new();
        let out = run_stage(&config, &metrics, 0, make_tasks(2)).unwrap();
        assert_eq!(out.len(), 2);
    }
}
