//! Execution metrics.
//!
//! Every run of the engine produces a [`RunMetrics`] record. The Labs crate
//! persists these in run provenance records and diffs them across runs —
//! the paper's "compare different runs of a composite BDA".

use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::trace::{TraceEventKind, TraceJournal};

/// Metrics for one plan node (operator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// One-line operator description (`Filter (price > 10)` etc.).
    pub operator: String,
    /// Stage index the operator executed in.
    pub stage: usize,
    /// Rows produced by the operator (across all partitions).
    pub rows_out: u64,
    /// Wall-clock time attributed to the operator, in microseconds.
    pub elapsed_us: u64,
    /// Bytes moved through the shuffle, if the operator required one.
    pub shuffle_bytes: u64,
}

/// Metrics for one complete run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    pub nodes: Vec<NodeMetrics>,
    /// Total wall-clock, in microseconds.
    pub total_elapsed_us: u64,
    /// Tasks executed (including retried attempts).
    pub tasks_run: u64,
    /// Tasks that failed and were retried.
    pub task_retries: u64,
    /// Rows in the final result.
    pub result_rows: u64,
    /// Partitions in the final result.
    pub result_partitions: u64,
}

impl RunMetrics {
    /// Sum of shuffle traffic over all operators.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.shuffle_bytes).sum()
    }

    /// Number of distinct stages observed.
    pub fn stage_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.stage)
            .max()
            .map_or(0, |m| m + 1)
    }

    /// Rows processed per second over the whole run (based on result rows).
    pub fn throughput_rows_per_sec(&self) -> f64 {
        if self.total_elapsed_us == 0 {
            0.0
        } else {
            self.result_rows as f64 / (self.total_elapsed_us as f64 / 1e6)
        }
    }
}

/// Thread-safe collector the executor threads write into.
///
/// Since the flight-recorder refactor this keeps *two* books: the legacy
/// tallies (`CollectorInner`) and the structured [`TraceJournal`]. The
/// metrics a run reports are derived from the journal ([`Self::finish`]);
/// the legacy path survives as [`Self::finish_legacy`] so tests can prove
/// the derivation is lossless, field for field.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    inner: Mutex<CollectorInner>,
    journal: TraceJournal,
}

#[derive(Debug, Default)]
struct CollectorInner {
    nodes: Vec<NodeMetrics>,
    tasks_run: u64,
    task_retries: u64,
}

impl MetricsCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying event journal (for shuffle waves and snapshots).
    pub fn trace(&self) -> &TraceJournal {
        &self.journal
    }

    /// Record a completed operator.
    pub fn record_node(
        &self,
        operator: impl Into<String>,
        stage: usize,
        rows_out: u64,
        elapsed: Duration,
        shuffle_bytes: u64,
    ) {
        let operator = operator.into();
        let elapsed_us = elapsed.as_micros() as u64;
        self.journal.record(TraceEventKind::OperatorFinished {
            operator: operator.clone(),
            stage,
            rows_out,
            elapsed_us,
            shuffle_bytes,
        });
        self.inner.lock().nodes.push(NodeMetrics {
            operator,
            stage,
            rows_out,
            elapsed_us,
            shuffle_bytes,
        });
    }

    /// Record batches evaluated by a narrow operator. Journal-only: the
    /// derived [`RunMetrics`] ignore it, so runs under different engine
    /// modes stay metrics-compatible while their traces diff the counts.
    pub fn record_operator_batches(
        &self,
        operator: impl Into<String>,
        stage: usize,
        batches: u64,
        fused: bool,
    ) {
        self.journal.record(TraceEventKind::OperatorBatches {
            operator: operator.into(),
            stage,
            batches,
            fused,
        });
    }

    /// Record that a chain of narrow operators fused into one pass.
    /// Journal-only, like [`Self::record_operator_batches`].
    pub fn record_fused_chain(&self, stage: usize, operators: Vec<String>) {
        self.journal
            .record(TraceEventKind::NarrowChainFused { stage, operators });
    }

    /// A task attempt began on a worker.
    pub fn task_started(&self, stage: usize, partition: usize, attempt: u32) {
        self.journal.record(TraceEventKind::TaskStarted {
            stage,
            partition,
            attempt,
        });
        self.inner.lock().tasks_run += 1;
    }

    /// The matching end of a started attempt.
    pub fn task_finished(&self, stage: usize, partition: usize, attempt: u32, ok: bool) {
        self.journal.record(TraceEventKind::TaskFinished {
            stage,
            partition,
            attempt,
            ok,
        });
    }

    /// The fault plan killed this attempt.
    pub fn fault_injected(&self, stage: usize, partition: usize, attempt: u32) {
        self.journal.record(TraceEventKind::FaultInjected {
            stage,
            partition,
            attempt,
        });
    }

    /// A failed attempt was rescheduled as `attempt`.
    pub fn task_retried(&self, stage: usize, partition: usize, attempt: u32) {
        self.journal.record(TraceEventKind::TaskRetried {
            stage,
            partition,
            attempt,
        });
        self.inner.lock().task_retries += 1;
    }

    /// A retry was scheduled behind a backoff delay (journal-only: the
    /// retry itself is counted when it dispatches).
    pub fn backoff_scheduled(&self, stage: usize, partition: usize, attempt: u32, delay_us: u64) {
        self.journal.record(TraceEventKind::BackoffScheduled {
            stage,
            partition,
            attempt,
            delay_us,
        });
    }

    /// The watchdog declared a running attempt dead past its deadline.
    pub fn task_timed_out(&self, stage: usize, partition: usize, attempt: u32, deadline_us: u64) {
        self.journal.record(TraceEventKind::TaskTimedOut {
            stage,
            partition,
            attempt,
            deadline_us,
        });
    }

    /// A task body panicked and the panic was isolated.
    pub fn task_panicked(&self, stage: usize, partition: usize, attempt: u32, message: &str) {
        self.journal.record(TraceEventKind::TaskPanicked {
            stage,
            partition,
            attempt,
            message: message.to_owned(),
        });
    }

    /// A speculative backup attempt was launched for a straggler.
    pub fn speculative_launched(&self, stage: usize, partition: usize, attempt: u32) {
        self.journal.record(TraceEventKind::SpeculativeLaunched {
            stage,
            partition,
            attempt,
        });
    }

    /// This attempt won its speculation race.
    pub fn speculative_won(&self, stage: usize, partition: usize, attempt: u32) {
        self.journal.record(TraceEventKind::SpeculativeWon {
            stage,
            partition,
            attempt,
        });
    }

    /// This attempt lost its speculation race and was cancelled.
    pub fn speculative_lost(&self, stage: usize, partition: usize, attempt: u32) {
        self.journal.record(TraceEventKind::SpeculativeLost {
            stage,
            partition,
            attempt,
        });
    }

    /// A completed shuffle wave's output was durably checkpointed.
    /// Journal-only, like [`Self::record_operator_batches`]: checkpointed
    /// and checkpoint-off runs stay metrics-compatible.
    pub fn stage_checkpointed(&self, stage: usize, wave: usize, partitions: usize, bytes: u64) {
        self.journal.record(TraceEventKind::StageCheckpointed {
            stage,
            wave,
            partitions,
            bytes,
        });
    }

    /// A wave's output was restored from its checkpoint instead of being
    /// recomputed. Journal-only.
    pub fn stage_restored(&self, stage: usize, wave: usize, partitions: usize, rows: u64) {
        self.journal.record(TraceEventKind::StageRestored {
            stage,
            wave,
            partitions,
            rows,
        });
    }

    /// A morsel was claimed by a pipeline worker. Journal-only, like
    /// [`Self::record_operator_batches`]: pipelined and stage-barrier runs
    /// stay metrics-compatible.
    pub fn morsel_dispatched(
        &self,
        stage: usize,
        partition: usize,
        morsel: usize,
        rows: u64,
        worker: usize,
    ) {
        self.journal.record(TraceEventKind::MorselDispatched {
            stage,
            partition,
            morsel,
            rows,
            worker,
        });
    }

    /// A morsel was executed by a worker other than its home worker.
    /// Journal-only.
    pub fn morsel_stolen(
        &self,
        stage: usize,
        partition: usize,
        morsel: usize,
        home: usize,
        worker: usize,
    ) {
        self.journal.record(TraceEventKind::MorselStolen {
            stage,
            partition,
            morsel,
            home,
            worker,
        });
    }

    /// The matching end of a dispatched morsel. Journal-only.
    pub fn morsel_completed(&self, stage: usize, partition: usize, morsel: usize) {
        self.journal.record(TraceEventKind::MorselCompleted {
            stage,
            partition,
            morsel,
        });
    }

    /// A fused pipeline wave finished all its morsels. Journal-only.
    #[allow(clippy::too_many_arguments)]
    pub fn pipeline_completed(
        &self,
        stage: usize,
        partitions: usize,
        morsels: u64,
        stolen: u64,
        workers: usize,
        slowest_worker_us: u64,
        mean_worker_us: f64,
    ) {
        self.journal.record(TraceEventKind::PipelineCompleted {
            stage,
            partitions,
            morsels,
            stolen,
            workers,
            slowest_worker_us,
            mean_worker_us,
        });
    }

    /// The run tripped cooperative cancellation.
    pub fn run_cancelled(&self, stage: usize, reason: &str) {
        self.journal.record(TraceEventKind::RunCancelled {
            stage,
            reason: reason.to_owned(),
        });
    }

    /// Legacy span-less shim: counts a task with no placement info.
    pub fn record_task(&self) {
        self.task_started(0, 0, 0);
        self.task_finished(0, 0, 0, true);
    }

    /// Legacy span-less shim: counts a retry with no placement info.
    pub fn record_retry(&self) {
        self.task_retried(0, 0, 0);
    }

    /// Finalise into a [`RunMetrics`], derived entirely from the journal.
    pub fn finish(
        &self,
        total_elapsed: Duration,
        result_rows: u64,
        result_partitions: u64,
    ) -> RunMetrics {
        self.journal.record(TraceEventKind::RunFinished {
            total_elapsed_us: total_elapsed.as_micros() as u64,
            result_rows,
            result_partitions,
        });
        self.journal.snapshot().derive_metrics(
            total_elapsed.as_micros() as u64,
            result_rows,
            result_partitions,
        )
    }

    /// Finalise from the legacy tallies, bypassing the journal. Kept so the
    /// observability suite can assert journal-derived metrics match the old
    /// bookkeeping byte for byte.
    pub fn finish_legacy(
        &self,
        total_elapsed: Duration,
        result_rows: u64,
        result_partitions: u64,
    ) -> RunMetrics {
        let inner = self.inner.lock();
        RunMetrics {
            nodes: inner.nodes.clone(),
            total_elapsed_us: total_elapsed.as_micros() as u64,
            tasks_run: inner.tasks_run,
            task_retries: inner.task_retries,
            result_rows,
            result_partitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_across_calls() {
        let c = MetricsCollector::new();
        c.record_node("Scan", 0, 100, Duration::from_micros(50), 0);
        c.record_node("Shuffle", 1, 100, Duration::from_micros(70), 4096);
        c.record_task();
        c.record_task();
        c.record_retry();
        let m = c.finish(Duration::from_millis(1), 100, 4);
        assert_eq!(m.nodes.len(), 2);
        assert_eq!(m.tasks_run, 2);
        assert_eq!(m.task_retries, 1);
        assert_eq!(m.total_shuffle_bytes(), 4096);
        assert_eq!(m.stage_count(), 2);
        assert_eq!(m.result_rows, 100);
    }

    #[test]
    fn journal_derivation_matches_legacy_tallies() {
        let c = MetricsCollector::new();
        c.record_node("Scan", 0, 100, Duration::from_micros(50), 0);
        c.task_started(1, 0, 0);
        c.fault_injected(1, 0, 0);
        c.task_finished(1, 0, 0, false);
        c.task_retried(1, 0, 1);
        c.task_started(1, 0, 1);
        c.task_finished(1, 0, 1, true);
        c.record_node("Aggregate", 1, 5, Duration::from_micros(90), 512);
        let derived = c.finish(Duration::from_millis(2), 5, 4);
        let legacy = c.finish_legacy(Duration::from_millis(2), 5, 4);
        assert_eq!(derived, legacy);
        assert_eq!(
            serde_json::to_string(&derived).unwrap(),
            serde_json::to_string(&legacy).unwrap()
        );
    }

    #[test]
    fn resilience_events_are_journal_only_and_keep_parity() {
        let c = MetricsCollector::new();
        c.task_started(0, 0, 0);
        c.task_timed_out(0, 0, 0, 500);
        c.task_finished(0, 0, 0, false);
        c.backoff_scheduled(0, 0, 1, 250);
        c.task_retried(0, 0, 1);
        c.task_started(0, 0, 1);
        c.task_panicked(0, 0, 1, "boom");
        c.task_finished(0, 0, 1, false);
        c.speculative_launched(0, 1, 1);
        c.speculative_won(0, 1, 1);
        c.speculative_lost(0, 1, 0);
        c.run_cancelled(0, "doomed");
        let derived = c.finish(Duration::from_millis(1), 0, 0);
        let legacy = c.finish_legacy(Duration::from_millis(1), 0, 0);
        assert_eq!(derived, legacy, "new events must not skew the metrics");
        let totals = c.trace().snapshot().resilience_totals();
        assert_eq!(totals.timeouts, 1);
        assert_eq!(totals.panics, 1);
        assert_eq!(totals.backoff_us, 250);
        assert_eq!(totals.speculative_launched, 1);
        assert_eq!(totals.cancellations, 1);
    }

    #[test]
    fn checkpoint_events_are_journal_only_and_keep_parity() {
        let c = MetricsCollector::new();
        c.task_started(0, 0, 0);
        c.task_finished(0, 0, 0, true);
        c.stage_checkpointed(0, 0, 4, 2_048);
        c.stage_restored(1, 1, 4, 100);
        let derived = c.finish(Duration::from_millis(1), 100, 4);
        let legacy = c.finish_legacy(Duration::from_millis(1), 100, 4);
        assert_eq!(derived, legacy, "checkpoint events must not skew metrics");
        let trace = c.trace().snapshot();
        assert!(trace.events.iter().any(|e| matches!(
            e.kind,
            TraceEventKind::StageCheckpointed { bytes: 2_048, .. }
        )));
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::StageRestored { rows: 100, .. })));
    }

    #[test]
    fn spill_events_are_journal_only_and_keep_parity() {
        // The pager writes spill events straight to the journal (pinning a
        // resident page is memory-speed work; it must not take the metrics
        // lock). They carry no metric weight: derived metrics stay equal to
        // the legacy tallies event-for-event.
        let c = MetricsCollector::new();
        c.task_started(0, 0, 0);
        c.task_finished(0, 0, 0, true);
        c.trace().record(TraceEventKind::SpillStarted {
            op: "shuffle".to_owned(),
            target: 3,
            rows: 1_024,
            bytes: 80_000,
        });
        c.trace().record(TraceEventKind::PageFaulted {
            file: 0,
            page: 2,
            bytes: 32 << 10,
            pool_bytes: 32 << 10,
        });
        c.trace().record(TraceEventKind::PageEvicted {
            file: 0,
            page: 2,
            bytes: 32 << 10,
            dirty: false,
            pool_bytes: 0,
        });
        c.trace().record(TraceEventKind::SpillMerged {
            op: "shuffle".to_owned(),
            target: 3,
            runs: 1,
            rows: 1_024,
            bytes: 80_000,
        });
        let derived = c.finish(Duration::from_millis(1), 64, 1);
        let legacy = c.finish_legacy(Duration::from_millis(1), 64, 1);
        assert_eq!(derived, legacy, "spill events must not skew the metrics");
        let totals = c.trace().snapshot().spill_totals();
        assert_eq!((totals.spills, totals.merges), (1, 1));
        assert_eq!(totals.page_faults, 1);
        assert_eq!(totals.page_evictions, 1);
        assert_eq!(totals.peak_pool_bytes, 32 << 10);
    }

    #[test]
    fn morsel_events_are_journal_only_and_keep_parity() {
        let c = MetricsCollector::new();
        c.task_started(0, 0, 0);
        c.morsel_dispatched(0, 0, 0, 64, 0);
        c.morsel_completed(0, 0, 0);
        c.morsel_dispatched(0, 0, 1, 64, 1);
        c.morsel_stolen(0, 0, 1, 0, 1);
        c.morsel_completed(0, 0, 1);
        c.task_finished(0, 0, 0, true);
        c.pipeline_completed(0, 1, 2, 1, 2, 120, 100.0);
        let derived = c.finish(Duration::from_millis(1), 128, 1);
        let legacy = c.finish_legacy(Duration::from_millis(1), 128, 1);
        assert_eq!(derived, legacy, "morsel events must not skew the metrics");
        let totals = c.trace().snapshot().pipeline_totals();
        assert_eq!(totals.pipelines, 1);
        assert_eq!(totals.morsels, 2);
        assert_eq!(totals.stolen, 1);
        assert!((totals.worker_skew - 1.2).abs() < 1e-9);
    }

    #[test]
    fn throughput_handles_zero_elapsed() {
        let m = RunMetrics::default();
        assert_eq!(m.throughput_rows_per_sec(), 0.0);
        let m = RunMetrics {
            total_elapsed_us: 2_000_000,
            result_rows: 10,
            ..Default::default()
        };
        assert_eq!(m.throughput_rows_per_sec(), 5.0);
    }

    #[test]
    fn metrics_serialize() {
        let m = RunMetrics {
            total_elapsed_us: 7,
            ..Default::default()
        };
        let j = serde_json::to_string(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&j).unwrap();
        assert_eq!(m, back);
    }
}
