//! # toreador-dataflow
//!
//! A parallel dataflow execution engine — the reproduction's substitute for
//! the Spark/Hadoop backend the TOREADOR platform deployed onto (DESIGN.md
//! §2). The layering mirrors DataFusion/Spark:
//!
//! 1. [`expr`] — typed scalar expressions; [`vexpr`] — the same
//!    expressions bound against a schema at plan time and evaluated in
//!    batches over columns with selection vectors;
//! 2. [`logical`] — the `Dataflow` builder and `LogicalPlan` tree;
//! 3. [`optimizer`] — rule-based rewrites (constant folding, filter merging,
//!    predicate pushdown, projection pruning), individually toggleable for
//!    the ablation benchmarks;
//! 4. [`physical`] — stage-cut execution with per-partition tasks; fused
//!    chains of narrow operators run through [`morsel`], the morsel-driven
//!    pipelined path with work-stealing deques (the stage-barrier path
//!    stays selectable as the differential oracle);
//! 5. [`shuffle`] — hash shuffles through a binary row codec ([`codec`],
//!    shared with checkpointing and the pager), so shuffle byte counts are
//!    real; [`pager`] — paged on-disk columnar files and a pinning buffer
//!    pool that shuffle and aggregation spill to under a memory budget;
//! 6. [`scheduler`] — a resilient scoped thread pool: deterministic chaos
//!    injection ([`fault`]), retry backoff, task deadlines, speculative
//!    attempts, panic isolation, and cooperative cancellation
//!    ([`resilience`]);
//! 7. [`session`] — the `Engine` facade (register datasets, run flows);
//! 8. [`stream`] — micro-batch streaming with carried state; [`streaming`]
//!    — the continuous topology around it: bounded in-flight buffers with
//!    backpressure, event-time watermarks with a late-data policy, and
//!    durable end-to-end acks with crash-resume (the pre-materialised
//!    [`stream`] path stays selectable as the differential oracle);
//! 9. [`metrics`] — per-operator and per-run metrics, the raw material for
//!    the Labs' run comparison;
//! 10. [`trace`] — the flight-recorder journal: structured span events for
//!     every task attempt, operator and shuffle wave, from which the run's
//!     [`metrics`] are derived.
//!
//! ## Example
//!
//! ```
//! use toreador_dataflow::prelude::*;
//!
//! let mut engine = Engine::new(EngineConfig::default().with_threads(2));
//! engine.register("clicks", toreador_data::generate::clickstream(500, 7)).unwrap();
//! let flow = engine
//!     .flow("clicks").unwrap()
//!     .filter(col("action").eq(lit("purchase"))).unwrap()
//!     .aggregate(&["country"], vec![AggExpr::new(AggFunc::Sum, "price", "revenue")]).unwrap()
//!     .sort(&["revenue"], true).unwrap()
//!     .limit(3);
//! let result = engine.run(&flow).unwrap();
//! assert!(result.table.num_rows() <= 3);
//! assert!(result.metrics.total_shuffle_bytes() > 0);
//! ```

pub mod checkpoint;
pub mod codec;
pub mod error;
pub mod expr;
pub mod fault;
pub mod fsck;
pub mod logical;
pub mod metrics;
pub mod morsel;
pub mod optimizer;
pub mod pager;
pub mod physical;
pub mod resilience;
pub mod scheduler;
pub mod session;
pub mod shuffle;
pub mod stream;
pub mod streaming;
pub mod trace;
pub mod vexpr;

/// Convenient glob import of the engine's public surface.
pub mod prelude {
    pub use crate::checkpoint::{CheckpointManifest, CheckpointSpec};
    pub use crate::error::{FlowError, Result as FlowResult};
    pub use crate::expr::{col, lit, Expr, Func};
    pub use crate::fault::{
        BoundaryKill, ChaosPlan, FaultKind, FaultPlan, KillMode, TargetedFault,
    };
    pub use crate::logical::{AggExpr, AggFunc, Dataflow, JoinType, LogicalPlan};
    pub use crate::metrics::{NodeMetrics, RunMetrics};
    pub use crate::optimizer::OptimizerConfig;
    pub use crate::resilience::{
        Backoff, ResilienceConfig, RetryPolicy, RunControl, SpeculationPolicy, TaskDeadline,
    };
    pub use crate::session::{Engine, EngineConfig, RunResult};
    pub use crate::stream::{run_stream, MicroBatcher, StreamRun, StreamState};
    pub use crate::streaming::{
        canonical_state_json, run_continuous, run_continuous_with, AckRecord, AckSummary,
        ArrivalSource, BatchOutput, ContinuousRun, DurableSpec, LatePolicy, Source, SourceBatch,
        StateColumns, StateDelta, StreamConfig, StreamRecovery, WindowSource,
    };
    pub use crate::trace::{
        PipelineTotals, ResilienceTotals, RunTrace, SpillTotals, StreamTotals, TraceEvent,
        TraceEventKind, TraceSummary,
    };
    pub use crate::vexpr::BoundExpr;
}
